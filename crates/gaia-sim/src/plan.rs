//! The [`Decision`] vocabulary policies use to answer "when and where
//! should this job run?".

use std::fmt;

use gaia_time::{Minutes, SimTime};
use serde::{Deserialize, Serialize};

/// Which cloud purchase option a segment of execution ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PurchaseOption {
    /// Prepaid reserved capacity (zero marginal cost).
    Reserved,
    /// Pay-as-you-go on-demand capacity.
    OnDemand,
    /// Discounted, evictable spot capacity.
    Spot,
}

impl fmt::Display for PurchaseOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PurchaseOption::Reserved => f.write_str("reserved"),
            PurchaseOption::OnDemand => f.write_str("on-demand"),
            PurchaseOption::Spot => f.write_str("spot"),
        }
    }
}

/// A suspend-resume execution plan: ordered, non-overlapping segments
/// whose lengths sum to the job's full length.
///
/// Produced by the interruptible baselines (Wait Awhile, Ecovisor). The
/// engine validates the plan against the job at submission time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentPlan {
    /// `(start, run_length)` pairs, in increasing start order.
    pub segments: Vec<(SimTime, Minutes)>,
}

impl SegmentPlan {
    /// Creates a plan from `(start, run_length)` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, contains a zero-length segment,
    /// is unordered, or overlaps.
    pub fn new(segments: Vec<(SimTime, Minutes)>) -> Self {
        assert!(!segments.is_empty(), "segment plan cannot be empty");
        for (start, len) in &segments {
            assert!(!len.is_zero(), "zero-length segment at {start}");
        }
        for pair in segments.windows(2) {
            let (s0, l0) = pair[0];
            let (s1, _) = pair[1];
            assert!(s0 + l0 <= s1, "segments overlap or are unordered at {s1}");
        }
        SegmentPlan { segments }
    }

    /// Total planned execution time.
    pub fn total(&self) -> Minutes {
        self.segments.iter().map(|(_, l)| *l).sum()
    }

    /// Start of the first segment.
    pub fn first_start(&self) -> SimTime {
        self.segments[0].0
    }

    /// End of the last segment.
    pub fn finish(&self) -> SimTime {
        let (start, len) = *self.segments.last().expect("non-empty");
        start + len
    }
}

/// One slice of an elastic execution plan: a time window, the worker
/// width to run at, and the serial-equivalent work it completes.
///
/// `work_milli` is in **milli-minutes of serial work** — the planner
/// computes it as `len × speedup_milli(width)` from the job's
/// [`gaia_workload::elastic::SpeedupLadder`], and the engine validates
/// that a plan's total work covers the job's serial length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElasticSegment {
    /// Wall-clock start of the slice.
    pub start: SimTime,
    /// Wall-clock length of the slice.
    pub len: Minutes,
    /// Worker width (parallelism multiplier on the job's base CPUs).
    pub width: u32,
    /// Serial-equivalent work completed, in milli-minutes.
    pub work_milli: u64,
}

impl ElasticSegment {
    /// Wall-clock end of the slice.
    pub fn end(&self) -> SimTime {
        self.start + self.len
    }
}

/// An elastic execution plan: ordered, non-overlapping slices that each
/// run the job at a chosen width, produced by the `CarbonScale` policy
/// family (scale up in green hours, down or pause in dirty ones).
///
/// Unlike a [`SegmentPlan`] — whose segment lengths must sum to the
/// job's length exactly — an elastic plan is validated by *work*: the
/// engine accepts it if the summed `work_milli` covers the job's serial
/// length (`Σ work_milli ≥ length × 1000`).
///
/// # Examples
///
/// ```
/// use gaia_sim::{Decision, ElasticPlan, ElasticSegment};
/// use gaia_time::{Minutes, SimTime};
///
/// // One green hour at width 4 (speedup 3.478×), then a width-1 hour.
/// let plan = ElasticPlan::new(vec![
///     ElasticSegment { start: SimTime::from_hours(2), len: Minutes::new(60), width: 4, work_milli: 60 * 3478 },
///     ElasticSegment { start: SimTime::from_hours(7), len: Minutes::new(60), width: 1, work_milli: 60 * 1000 },
/// ]);
/// assert_eq!(plan.total_work_milli(), 60 * 3478 + 60 * 1000);
/// let d = Decision::run_elastic(plan);
/// assert_eq!(d.planned_start(), SimTime::from_hours(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElasticPlan {
    segments: Vec<ElasticSegment>,
}

impl ElasticPlan {
    /// Creates a plan from ordered slices.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, contains a zero-length or
    /// zero-width or zero-work slice, is unordered, or overlaps.
    pub fn new(segments: Vec<ElasticSegment>) -> Self {
        assert!(!segments.is_empty(), "elastic plan cannot be empty");
        for seg in &segments {
            assert!(!seg.len.is_zero(), "zero-length slice at {}", seg.start);
            assert!(seg.width >= 1, "zero-width slice at {}", seg.start);
            assert!(seg.work_milli > 0, "zero-work slice at {}", seg.start);
        }
        for pair in segments.windows(2) {
            assert!(
                pair[0].end() <= pair[1].start,
                "slices overlap or are unordered at {}",
                pair[1].start
            );
        }
        ElasticPlan { segments }
    }

    /// The plan's slices, in start order.
    pub fn segments(&self) -> &[ElasticSegment] {
        &self.segments
    }

    /// Total serial-equivalent work, in milli-minutes.
    pub fn total_work_milli(&self) -> u64 {
        self.segments.iter().map(|s| s.work_milli).sum()
    }

    /// Start of the first slice.
    pub fn first_start(&self) -> SimTime {
        self.segments[0].start
    }

    /// End of the last slice.
    pub fn finish(&self) -> SimTime {
        self.segments.last().expect("non-empty").end()
    }
}

/// A policy's scheduling decision for one job.
///
/// # Examples
///
/// ```
/// use gaia_sim::Decision;
/// use gaia_time::SimTime;
///
/// // Run uninterruptibly at hour 6, starting earlier if a reserved
/// // instance frees up (the paper's work-conserving RES-First behaviour).
/// let d = Decision::run_at(SimTime::from_hours(6)).opportunistic();
/// assert!(d.is_opportunistic());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    pub(crate) kind: DecisionKind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum DecisionKind {
    Once {
        planned_start: SimTime,
        opportunistic_reserved: bool,
        use_spot: bool,
    },
    Segments {
        plan: SegmentPlan,
        use_spot: bool,
    },
    Elastic {
        plan: ElasticPlan,
        use_spot: bool,
    },
}

impl Decision {
    /// Run the job uninterruptibly, starting at `planned_start`. At that
    /// instant the resource manager prefers an idle reserved instance and
    /// falls back to on-demand (§4.1).
    pub fn run_at(planned_start: SimTime) -> Decision {
        Decision {
            kind: DecisionKind::Once {
                planned_start,
                opportunistic_reserved: false,
                use_spot: false,
            },
        }
    }

    /// Run the job according to a suspend-resume plan. Each segment
    /// independently prefers reserved capacity and falls back to
    /// on-demand.
    pub fn run_segments(plan: SegmentPlan) -> Decision {
        Decision {
            kind: DecisionKind::Segments {
                plan,
                use_spot: false,
            },
        }
    }

    /// Run the job according to an elastic (variable-width) plan. Each
    /// slice runs at its own worker width, occupying
    /// `width × job.cpus` CPUs; slices independently prefer reserved
    /// capacity and fall back to on-demand.
    pub fn run_elastic(plan: ElasticPlan) -> Decision {
        Decision {
            kind: DecisionKind::Elastic {
                plan,
                use_spot: false,
            },
        }
    }

    /// Enable work conservation: if reserved capacity frees up before the
    /// planned start, begin immediately on it (RES-First, §4.2.3).
    ///
    /// Only meaningful for uninterruptible decisions; segment plans
    /// ignore it.
    pub fn opportunistic(mut self) -> Decision {
        if let DecisionKind::Once {
            opportunistic_reserved,
            ..
        } = &mut self.kind
        {
            *opportunistic_reserved = true;
        }
        self
    }

    /// Execute on a spot instance (Spot-First, §4.2.4). For
    /// uninterruptible decisions the initial run uses spot; if evicted,
    /// the job restarts from scratch preferring reserved, then on-demand.
    /// For segment and elastic plans each slice runs on spot, and an
    /// eviction abandons the plan and restarts the whole job
    /// uninterruptibly.
    pub fn on_spot(mut self) -> Decision {
        match &mut self.kind {
            DecisionKind::Once { use_spot, .. } => *use_spot = true,
            DecisionKind::Segments { use_spot, .. } => *use_spot = true,
            DecisionKind::Elastic { use_spot, .. } => *use_spot = true,
        }
        self
    }

    /// The planned (latest) start for uninterruptible decisions, or the
    /// first segment start for plans.
    pub fn planned_start(&self) -> SimTime {
        match &self.kind {
            DecisionKind::Once { planned_start, .. } => *planned_start,
            DecisionKind::Segments { plan, .. } => plan.first_start(),
            DecisionKind::Elastic { plan, .. } => plan.first_start(),
        }
    }

    /// Whether the decision allows an early start on freed reserved
    /// capacity.
    pub fn is_opportunistic(&self) -> bool {
        matches!(
            self.kind,
            DecisionKind::Once {
                opportunistic_reserved: true,
                ..
            }
        )
    }

    /// Whether the decision requests spot execution.
    pub fn uses_spot(&self) -> bool {
        match &self.kind {
            DecisionKind::Once { use_spot, .. } => *use_spot,
            DecisionKind::Segments { use_spot, .. } => *use_spot,
            DecisionKind::Elastic { use_spot, .. } => *use_spot,
        }
    }

    /// The segment plan, if this is a suspend-resume decision.
    pub fn segments(&self) -> Option<&SegmentPlan> {
        match &self.kind {
            DecisionKind::Segments { plan, .. } => Some(plan),
            _ => None,
        }
    }

    /// The elastic plan, if this is a variable-width decision.
    pub fn elastic(&self) -> Option<&ElasticPlan> {
        match &self.kind {
            DecisionKind::Elastic { plan, .. } => Some(plan),
            _ => None,
        }
    }
}

/// Decision kind tags for [`PackedDecision`].
pub(crate) const DK_NONE: u8 = 0;
pub(crate) const DK_ONCE: u8 = 1;
pub(crate) const DK_SEGMENTS: u8 = 2;
pub(crate) const DK_ELASTIC: u8 = 3;

/// Decision flag bits for [`PackedDecision`].
pub(crate) const DF_OPPORTUNISTIC: u8 = 1;
pub(crate) const DF_SPOT: u8 = 2;

/// A [`Decision`] flattened to fixed width for columnar storage.
///
/// Segment spans live in a shared [`PlanArena`]; the packed form carries
/// only the arena range. `planned` is always the decision's
/// [`Decision::planned_start`] (the first segment start for plans), so
/// status queries never chase the arena. `kind == DK_NONE` means "no
/// decision stored" — the columnar replacement for `Option<Decision>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PackedDecision {
    pub(crate) kind: u8,
    pub(crate) flags: u8,
    pub(crate) planned: SimTime,
    pub(crate) seg_start: u32,
    pub(crate) seg_len: u32,
}

impl Default for PackedDecision {
    fn default() -> Self {
        PackedDecision {
            kind: DK_NONE,
            flags: 0,
            planned: SimTime::ORIGIN,
            seg_start: 0,
            seg_len: 0,
        }
    }
}

impl PackedDecision {
    pub(crate) fn is_some(self) -> bool {
        self.kind != DK_NONE
    }

    /// Whether this decision carries arena spans (segment or elastic).
    pub(crate) fn is_plan(self) -> bool {
        self.kind == DK_SEGMENTS || self.kind == DK_ELASTIC
    }

    pub(crate) fn is_opportunistic(self) -> bool {
        self.kind == DK_ONCE && self.flags & DF_OPPORTUNISTIC != 0
    }

    pub(crate) fn uses_spot(self) -> bool {
        self.flags & DF_SPOT != 0
    }
}

/// Arena of segment spans shared by every stored decision.
///
/// Plans are interned append-only: the arena never shrinks or reorders,
/// so a `(seg_start, seg_len)` range stays valid for the lifetime of the
/// engine — exactly the lifetime of the stored decisions that point into
/// it. Jobs without segment plans (the overwhelming majority) intern
/// nothing.
#[derive(Debug, Default)]
pub(crate) struct PlanArena {
    pub(crate) spans: Vec<(SimTime, Minutes)>,
    /// Per-span worker width, aligned with `spans` (1 for plain
    /// suspend-resume segments).
    pub(crate) widths: Vec<u32>,
    /// Per-span serial-equivalent work in milli-minutes, aligned with
    /// `spans` (0 for plain segments: their work IS their wall length).
    pub(crate) works: Vec<u64>,
}

impl PlanArena {
    /// Flattens `decision` into the arena, returning its packed form.
    pub(crate) fn intern(&mut self, decision: &Decision) -> PackedDecision {
        match &decision.kind {
            DecisionKind::Once {
                planned_start,
                opportunistic_reserved,
                use_spot,
            } => PackedDecision {
                kind: DK_ONCE,
                flags: u8::from(*opportunistic_reserved) * DF_OPPORTUNISTIC
                    + u8::from(*use_spot) * DF_SPOT,
                planned: *planned_start,
                seg_start: 0,
                seg_len: 0,
            },
            DecisionKind::Segments { plan, use_spot } => {
                let seg_start = self.spans.len() as u32;
                self.spans.extend_from_slice(&plan.segments);
                self.widths.resize(self.spans.len(), 1);
                self.works.resize(self.spans.len(), 0);
                PackedDecision {
                    kind: DK_SEGMENTS,
                    flags: u8::from(*use_spot) * DF_SPOT,
                    planned: plan.first_start(),
                    seg_start,
                    seg_len: plan.segments.len() as u32,
                }
            }
            DecisionKind::Elastic { plan, use_spot } => {
                let seg_start = self.spans.len() as u32;
                for seg in plan.segments() {
                    self.spans.push((seg.start, seg.len));
                    self.widths.push(seg.width);
                    self.works.push(seg.work_milli);
                }
                PackedDecision {
                    kind: DK_ELASTIC,
                    flags: u8::from(*use_spot) * DF_SPOT,
                    planned: plan.first_start(),
                    seg_start,
                    seg_len: plan.segments().len() as u32,
                }
            }
        }
    }

    /// The segment spans of a packed plan decision (empty for `Once`).
    pub(crate) fn spans_of(&self, packed: PackedDecision) -> &[(SimTime, Minutes)] {
        if !packed.is_plan() {
            return &[];
        }
        &self.spans[packed.seg_start as usize..(packed.seg_start + packed.seg_len) as usize]
    }

    /// The worker width of span `seg_idx` of a packed decision (1 for
    /// anything that is not an elastic plan).
    pub(crate) fn width_of(&self, packed: PackedDecision, seg_idx: usize) -> u32 {
        if packed.kind != DK_ELASTIC {
            return 1;
        }
        self.widths[packed.seg_start as usize + seg_idx]
    }

    /// The serial-equivalent work (milli-minutes) of span `seg_idx` of a
    /// packed decision (0 for plain segments: work equals wall length).
    pub(crate) fn work_of(&self, packed: PackedDecision, seg_idx: usize) -> u64 {
        if packed.kind != DK_ELASTIC {
            return 0;
        }
        self.works[packed.seg_start as usize + seg_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_round_trip_preserves_decision_shape() {
        let mut arena = PlanArena::default();
        let once = Decision::run_at(SimTime::from_hours(2)).opportunistic();
        let p = arena.intern(&once);
        assert!(p.is_some() && p.is_opportunistic() && !p.uses_spot());
        assert_eq!(p.planned, SimTime::from_hours(2));
        assert!(arena.spans_of(p).is_empty());

        let plan = SegmentPlan::new(vec![
            (SimTime::from_hours(1), Minutes::new(30)),
            (SimTime::from_hours(3), Minutes::new(60)),
        ]);
        let seg = Decision::run_segments(plan.clone()).on_spot();
        let p = arena.intern(&seg);
        assert!(p.is_some() && !p.is_opportunistic() && p.uses_spot());
        assert_eq!(p.planned, SimTime::from_hours(1));
        assert_eq!(arena.spans_of(p), plan.segments.as_slice());
        // A second intern lands after the first without disturbing it.
        let p2 = arena.intern(&seg);
        assert_eq!(arena.spans_of(p2), plan.segments.as_slice());
        assert_eq!(p2.seg_start, 2);
    }

    #[test]
    fn once_decision_accessors() {
        let d = Decision::run_at(SimTime::from_hours(3));
        assert_eq!(d.planned_start(), SimTime::from_hours(3));
        assert!(!d.is_opportunistic());
        assert!(!d.uses_spot());
        assert!(d.segments().is_none());
        let d = d.opportunistic().on_spot();
        assert!(d.is_opportunistic());
        assert!(d.uses_spot());
    }

    #[test]
    fn segment_plan_accessors() {
        let plan = SegmentPlan::new(vec![
            (SimTime::from_hours(1), Minutes::new(30)),
            (SimTime::from_hours(3), Minutes::new(60)),
        ]);
        assert_eq!(plan.total(), Minutes::new(90));
        assert_eq!(plan.first_start(), SimTime::from_hours(1));
        assert_eq!(plan.finish(), SimTime::from_hours(4));
        let d = Decision::run_segments(plan.clone());
        assert_eq!(d.planned_start(), SimTime::from_hours(1));
        assert_eq!(d.segments(), Some(&plan));
        // opportunistic() is a no-op for plans.
        assert!(!d.opportunistic().is_opportunistic());
    }

    #[test]
    fn adjacent_segments_allowed() {
        let plan = SegmentPlan::new(vec![
            (SimTime::from_hours(1), Minutes::new(60)),
            (SimTime::from_hours(2), Minutes::new(60)),
        ]);
        assert_eq!(plan.total(), Minutes::new(120));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_overlapping_segments() {
        let _ = SegmentPlan::new(vec![
            (SimTime::from_hours(1), Minutes::new(90)),
            (SimTime::from_hours(2), Minutes::new(60)),
        ]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn rejects_empty_plan() {
        let _ = SegmentPlan::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn rejects_zero_length_segment() {
        let _ = SegmentPlan::new(vec![(SimTime::ORIGIN, Minutes::ZERO)]);
    }

    #[test]
    fn purchase_option_display() {
        assert_eq!(PurchaseOption::Reserved.to_string(), "reserved");
        assert_eq!(PurchaseOption::OnDemand.to_string(), "on-demand");
        assert_eq!(PurchaseOption::Spot.to_string(), "spot");
    }
}
