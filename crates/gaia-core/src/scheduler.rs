//! [`GaiaScheduler`]: purchase-option composition over base policies.

use gaia_sim::{Decision, Scheduler, SchedulerContext};
use gaia_time::Minutes;
use gaia_workload::Job;
use serde::{Deserialize, Serialize};

use crate::policies::BatchPolicy;

/// Configuration of the Spot-First behaviour (§4.2.4).
///
/// Jobs whose length does not exceed `j_max` run on spot instances at
/// their carbon-aware start time; if evicted, the engine restarts them on
/// reserved/on-demand capacity with all progress lost. The paper defaults
/// `j_max` to the short-queue bound (2 h) and sweeps it up to 24 h in
/// Figures 18 and 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpotConfig {
    /// Maximum job length admitted to spot execution (`J^max`).
    pub j_max: Minutes,
}

impl Default for SpotConfig {
    /// The paper's default: only short-queue jobs (≤ 2 h) use spot.
    fn default() -> Self {
        SpotConfig {
            j_max: Minutes::from_hours(2),
        }
    }
}

/// The GAIA scheduler: a base (carbon/performance) policy plus the
/// purchase-option wrappers of §4.2.3–§4.2.4.
///
/// * plain — the base policy on whatever capacity the resource manager
///   picks at start time (reserved if idle, else on-demand);
/// * [`res_first`](GaiaScheduler::res_first) — **RES-First**: jobs
///   arriving while reserved capacity is idle start immediately
///   (work conservation); others wait for their carbon-aware start but
///   are picked up early if reserved capacity frees;
/// * [`spot_first`](GaiaScheduler::spot_first) — **Spot-First**: jobs no
///   longer than `J^max` run on spot at their carbon-aware start;
/// * both — **Spot-RES**: short jobs follow Spot-First, long jobs follow
///   RES-First.
///
/// # Examples
///
/// ```
/// use gaia_core::{CarbonTime, GaiaScheduler, SpotConfig};
/// use gaia_workload::QueueSet;
///
/// let queues = QueueSet::paper_defaults();
/// let spot_res = GaiaScheduler::new(CarbonTime::new(queues))
///     .res_first()
///     .spot_first(SpotConfig::default());
/// assert_eq!(spot_res.name(), "Spot-RES-Carbon-Time");
/// ```
pub struct GaiaScheduler<P> {
    base: P,
    res_first: bool,
    spot: Option<SpotConfig>,
    name: String,
}

impl<P: std::fmt::Debug> std::fmt::Debug for GaiaScheduler<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaiaScheduler")
            .field("base", &self.base)
            .field("res_first", &self.res_first)
            .field("spot", &self.spot)
            .finish()
    }
}

impl<P: BatchPolicy> GaiaScheduler<P> {
    /// Wraps a base policy with no purchase-option awareness.
    pub fn new(base: P) -> Self {
        let name = base.name().to_owned();
        GaiaScheduler {
            base,
            res_first: false,
            spot: None,
            name,
        }
    }

    /// Enables the work-conserving RES-First wrapper (§4.2.3).
    pub fn res_first(mut self) -> Self {
        self.res_first = true;
        self.rename();
        self
    }

    /// Enables the Spot-First wrapper (§4.2.4).
    pub fn spot_first(mut self, config: SpotConfig) -> Self {
        self.spot = Some(config);
        self.rename();
        self
    }

    /// The composed policy name in the paper's nomenclature, e.g.
    /// `"RES-First-Carbon-Time"` or `"Spot-RES-Carbon-Time"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped base policy.
    pub fn base(&self) -> &P {
        &self.base
    }

    fn rename(&mut self) {
        let base = self.base.name();
        self.name = match (self.res_first, self.spot.is_some()) {
            (false, false) => base.to_owned(),
            (true, false) => format!("RES-First-{base}"),
            (false, true) => format!("Spot-First-{base}"),
            (true, true) => format!("Spot-RES-{base}"),
        };
    }
}

impl<P: BatchPolicy> Scheduler for GaiaScheduler<P> {
    fn on_arrival(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        // Spot-First path: short-enough jobs run on spot at their
        // carbon-aware start time regardless of reserved state.
        if let Some(spot) = self.spot {
            if job.length <= spot.j_max {
                return self.base.decide(job, ctx).on_spot();
            }
        }
        if self.res_first {
            // Work conservation: idle prepaid capacity is never left idle
            // while work is available (§4.2.3).
            if ctx.reserved_free >= job.cpus {
                return Decision::run_at(ctx.now);
            }
            let decision = self.base.decide(job, ctx);
            // Suspend-resume plans cannot start early; leave them as-is.
            if decision.segments().is_some() {
                return decision;
            }
            return decision.opportunistic();
        }
        self.base.decide(job, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::{job, CtxFactory};
    use crate::policies::{CarbonTime, Ecovisor, LowestWindow, NoWait};
    use crate::JobLengthKnowledge;
    use gaia_time::SimTime;
    use gaia_workload::QueueSet;

    fn valley_factory() -> CtxFactory {
        // Deep valley at hour 2.
        CtxFactory::new(&[500.0, 400.0, 10.0, 450.0, 500.0, 500.0, 500.0, 500.0])
    }

    fn exact_carbon_time() -> CarbonTime {
        CarbonTime::new(QueueSet::paper_defaults()).with_knowledge(JobLengthKnowledge::Exact)
    }

    #[test]
    fn names_follow_paper_nomenclature() {
        let q = QueueSet::paper_defaults;
        assert_eq!(GaiaScheduler::new(NoWait::new()).name(), "NoWait");
        assert_eq!(
            GaiaScheduler::new(CarbonTime::new(q())).res_first().name(),
            "RES-First-Carbon-Time"
        );
        assert_eq!(
            GaiaScheduler::new(Ecovisor::new(q()))
                .spot_first(SpotConfig::default())
                .name(),
            "Spot-First-Ecovisor"
        );
        assert_eq!(
            GaiaScheduler::new(LowestWindow::new(q()))
                .res_first()
                .spot_first(SpotConfig::default())
                .name(),
            "Spot-RES-Lowest-Window"
        );
    }

    #[test]
    fn res_first_starts_immediately_on_idle_reserved() {
        let factory = valley_factory();
        let mut sched = GaiaScheduler::new(exact_carbon_time()).res_first();
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 2, 2, |ctx| sched.on_arrival(&j, ctx));
        // Despite the hour-2 valley, idle reserved capacity wins.
        assert_eq!(d.planned_start(), SimTime::ORIGIN);
    }

    #[test]
    fn res_first_defers_carbon_aware_when_reserved_busy() {
        let factory = valley_factory();
        let mut sched = GaiaScheduler::new(exact_carbon_time()).res_first();
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 2, |ctx| sched.on_arrival(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(2));
        assert!(d.is_opportunistic(), "must start early if reserved frees");
    }

    #[test]
    fn plain_policy_is_not_opportunistic() {
        let factory = valley_factory();
        let mut sched = GaiaScheduler::new(exact_carbon_time());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 2, |ctx| sched.on_arrival(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(2));
        assert!(!d.is_opportunistic());
    }

    #[test]
    fn spot_first_routes_short_jobs_to_spot() {
        let factory = valley_factory();
        let mut sched = GaiaScheduler::new(exact_carbon_time()).spot_first(SpotConfig::default());
        let short = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| sched.on_arrival(&short, ctx));
        assert!(d.uses_spot());
        assert_eq!(
            d.planned_start(),
            SimTime::from_hours(2),
            "still carbon-aware"
        );
        // Long jobs stay off spot.
        let long = job(0, 300, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| sched.on_arrival(&long, ctx));
        assert!(!d.uses_spot());
    }

    #[test]
    fn spot_res_combines_both() {
        let factory = valley_factory();
        let mut sched = GaiaScheduler::new(exact_carbon_time())
            .res_first()
            .spot_first(SpotConfig::default());
        // Short job: spot, even though reserved is idle.
        let short = job(0, 90, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 2, 2, |ctx| sched.on_arrival(&short, ctx));
        assert!(d.uses_spot());
        // Long job with idle reserved: immediate start, no spot.
        let long = job(0, 300, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 2, 2, |ctx| sched.on_arrival(&long, ctx));
        assert!(!d.uses_spot());
        assert_eq!(d.planned_start(), SimTime::ORIGIN);
        // Long job with busy reserved: carbon-aware opportunistic wait.
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 2, |ctx| sched.on_arrival(&long, ctx));
        assert!(d.is_opportunistic());
    }

    #[test]
    fn j_max_bounds_spot_eligibility() {
        let factory = valley_factory();
        let mut sched = GaiaScheduler::new(exact_carbon_time()).spot_first(SpotConfig {
            j_max: Minutes::from_hours(6),
        });
        let medium = job(0, 300, 1); // 5 h <= 6 h
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| sched.on_arrival(&medium, ctx));
        assert!(d.uses_spot());
    }

    #[test]
    fn res_first_leaves_segment_plans_untouched() {
        let factory = valley_factory();
        let mut sched = GaiaScheduler::new(Ecovisor::new(QueueSet::paper_defaults())).res_first();
        let j = job(0, 60, 1);
        // Reserved busy: Ecovisor's segment plan passes through.
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 2, |ctx| sched.on_arrival(&j, ctx));
        assert!(d.segments().is_some());
        assert!(!d.is_opportunistic());
    }
}
