//! Spatial placement: choosing *where* a job runs, across the six
//! studied regions, with data-transfer penalties.
//!
//! The temporal policies (Carbon-Time, Carbon-Scale, and the rest of
//! the catalog) decide *when* — and, for [`crate::CarbonScale`], *how
//! wide* — a job runs inside one region. This module
//! adds the spatial axis: a job's input data lives in a **home** region,
//! and shipping it elsewhere costs egress dollars, network carbon, and
//! start latency proportional to great-circle distance
//! ([`gaia_carbon::Region::distance_km`]). The placed runner in
//! `gaia-metrics` scores candidate regions against their forecasts and
//! partitions the workload; this module owns the data model: the
//! transfer economics ([`TransferModel`]), the candidate set
//! ([`PlacementSpec`]), and the resulting assignment ([`Placement`]).

use gaia_carbon::Region;
use gaia_time::Minutes;
use gaia_workload::Job;

/// The cost of moving one job's input data between two regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPenalty {
    /// Data shipped, in gigabytes (zero within the home region).
    pub gigabytes: f64,
    /// Egress dollars.
    pub cost: f64,
    /// Network carbon, in grams CO₂.
    pub carbon_g: f64,
    /// Added start latency.
    pub latency: Minutes,
}

impl TransferPenalty {
    /// The zero penalty (job stays home).
    pub const NONE: TransferPenalty = TransferPenalty {
        gigabytes: 0.0,
        cost: 0.0,
        carbon_g: 0.0,
        latency: Minutes::ZERO,
    };
}

/// Economics of inter-region data movement.
///
/// The defaults are deliberately round, paper-scale numbers: cloud
/// egress near $0.02/GB, network-transit carbon near 10 g CO₂/GB, and
/// bulk-transfer latency that grows with distance (a job's input must
/// arrive before it can start). All four knobs are public so sweeps can
/// ablate them.
///
/// # Examples
///
/// ```
/// use gaia_carbon::Region;
/// use gaia_core::placement::TransferModel;
/// use gaia_time::{Minutes, SimTime};
/// use gaia_workload::{Job, JobId};
///
/// let model = TransferModel::default();
/// let job = Job::new(JobId(0), SimTime::ORIGIN, Minutes::from_hours(2), 4);
/// let p = model.penalty(&job, Region::California, Region::Ontario);
/// assert_eq!(p.gigabytes, 8.0); // 2 GB per requested CPU
/// assert!(p.latency > Minutes::ZERO);
/// let home = model.penalty(&job, Region::California, Region::California);
/// assert_eq!(home.gigabytes, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Input data per requested CPU, in gigabytes.
    pub gb_per_cpu: f64,
    /// Egress price, dollars per gigabyte.
    pub cost_per_gb: f64,
    /// Network carbon, grams CO₂ per gigabyte.
    pub carbon_g_per_gb: f64,
    /// Transfer latency per 1000 km of great-circle distance, in
    /// minutes (rounded up to whole minutes per hop).
    pub minutes_per_1000km: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel {
            gb_per_cpu: 2.0,
            cost_per_gb: 0.02,
            carbon_g_per_gb: 10.0,
            minutes_per_1000km: 2.0,
        }
    }
}

impl TransferModel {
    /// Input-data volume for `job`, in gigabytes.
    pub fn data_gb(&self, job: &Job) -> f64 {
        self.gb_per_cpu * f64::from(job.cpus)
    }

    /// Start latency for shipping data from `from` to `to` (zero when
    /// they are the same region).
    pub fn latency(&self, from: Region, to: Region) -> Minutes {
        if from == to {
            return Minutes::ZERO;
        }
        let minutes = (from.distance_km(to) / 1000.0 * self.minutes_per_1000km).ceil();
        Minutes::new(minutes as u64)
    }

    /// Full penalty for running `job` (whose data lives in `from`) in
    /// region `to`. [`TransferPenalty::NONE`] when `from == to`.
    pub fn penalty(&self, job: &Job, from: Region, to: Region) -> TransferPenalty {
        if from == to {
            return TransferPenalty::NONE;
        }
        let gigabytes = self.data_gb(job);
        TransferPenalty {
            gigabytes,
            cost: gigabytes * self.cost_per_gb,
            carbon_g: gigabytes * self.carbon_g_per_gb,
            latency: self.latency(from, to),
        }
    }
}

/// A spatial scheduling configuration: where data lives, which regions
/// may run work, and what movement costs.
///
/// # Examples
///
/// ```
/// use gaia_carbon::Region;
/// use gaia_core::placement::PlacementSpec;
///
/// let spec = PlacementSpec::federated(Region::California);
/// assert_eq!(spec.candidates.len(), 6);
/// let pinned = PlacementSpec::single(Region::California);
/// assert_eq!(pinned.candidates, vec![Region::California]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSpec {
    /// The region holding every job's input data.
    pub home: Region,
    /// Regions allowed to run work, in preference (tie-break) order.
    pub candidates: Vec<Region>,
    /// Transfer economics.
    pub model: TransferModel,
}

impl PlacementSpec {
    /// Single-region placement: every job runs at home, no transfers.
    /// A placed run under this spec is identical to a plain run.
    pub fn single(home: Region) -> PlacementSpec {
        PlacementSpec {
            home,
            candidates: vec![home],
            model: TransferModel::default(),
        }
    }

    /// Federated placement over all six studied regions, home first (so
    /// ties stay home and a flat score surface degenerates to
    /// single-region behaviour).
    pub fn federated(home: Region) -> PlacementSpec {
        let mut candidates = vec![home];
        candidates.extend(Region::ALL.into_iter().filter(|&r| r != home));
        PlacementSpec {
            home,
            candidates,
            model: TransferModel::default(),
        }
    }

    /// Restricts the candidate set (home is prepended if absent).
    pub fn with_candidates(mut self, regions: &[Region]) -> PlacementSpec {
        let mut candidates = Vec::with_capacity(regions.len() + 1);
        if !regions.contains(&self.home) {
            candidates.push(self.home);
        }
        candidates.extend_from_slice(regions);
        self.candidates = candidates;
        self
    }

    /// Overrides the transfer economics.
    pub fn with_model(mut self, model: TransferModel) -> PlacementSpec {
        self.model = model;
        self
    }
}

/// The result of placing a workload: one region per job, in job order.
///
/// Produced by the placed runner in `gaia-metrics`; consumed by its
/// merge/audit stage to recompute transfer totals independently.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The region each job was assigned, indexed by dense job id.
    pub regions: Vec<Region>,
    /// The home region the assignment was made against.
    pub home: Region,
}

impl Placement {
    /// Number of jobs assigned away from home.
    pub fn moved(&self) -> usize {
        self.regions.iter().filter(|&&r| r != self.home).count()
    }

    /// Jobs assigned to `region`, as dense job-id indexes.
    pub fn jobs_in(&self, region: Region) -> Vec<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == region)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_time::SimTime;
    use gaia_workload::JobId;

    fn job(cpus: u32) -> Job {
        Job::new(JobId(0), SimTime::ORIGIN, Minutes::from_hours(1), cpus)
    }

    #[test]
    fn home_placement_is_free() {
        let model = TransferModel::default();
        for region in Region::ALL {
            assert_eq!(
                model.penalty(&job(8), region, region),
                TransferPenalty::NONE
            );
        }
    }

    #[test]
    fn penalties_scale_with_data_and_distance() {
        let model = TransferModel::default();
        let near = model.penalty(&job(4), Region::Sweden, Region::Netherlands);
        let far = model.penalty(&job(4), Region::Sweden, Region::SouthAustralia);
        assert_eq!(near.gigabytes, far.gigabytes);
        assert_eq!(near.cost, far.cost);
        assert!(far.latency > near.latency, "distance drives latency");
        let big = model.penalty(&job(8), Region::Sweden, Region::Netherlands);
        assert_eq!(big.gigabytes, 2.0 * near.gigabytes);
        assert_eq!(big.latency, near.latency, "latency is data-independent");
    }

    #[test]
    fn federated_spec_puts_home_first_without_duplicates() {
        for home in Region::ALL {
            let spec = PlacementSpec::federated(home);
            assert_eq!(spec.candidates[0], home);
            assert_eq!(spec.candidates.len(), 6);
            let mut sorted = spec.candidates.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 6);
        }
    }

    #[test]
    fn with_candidates_prepends_home() {
        let spec = PlacementSpec::single(Region::Kentucky)
            .with_candidates(&[Region::Sweden, Region::Ontario]);
        assert_eq!(
            spec.candidates,
            vec![Region::Kentucky, Region::Sweden, Region::Ontario]
        );
        let kept = PlacementSpec::single(Region::Kentucky)
            .with_candidates(&[Region::Kentucky, Region::Sweden]);
        assert_eq!(kept.candidates, vec![Region::Kentucky, Region::Sweden]);
    }

    #[test]
    fn placement_counts_moves() {
        let p = Placement {
            regions: vec![Region::Sweden, Region::Ontario, Region::Sweden],
            home: Region::Sweden,
        };
        assert_eq!(p.moved(), 1);
        assert_eq!(p.jobs_in(Region::Sweden), vec![0, 2]);
        assert_eq!(p.jobs_in(Region::Ontario), vec![1]);
        assert_eq!(p.jobs_in(Region::Kentucky), Vec::<usize>::new());
    }
}
