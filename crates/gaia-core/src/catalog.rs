//! Named constructors for every policy configuration the paper
//! evaluates, plus the Table 1 capability matrix.

use gaia_workload::QueueSet;
use serde::{Deserialize, Serialize};

use crate::policies::{
    AllWaitThreshold, BadPlan, BatchPolicy, CarbonScale, CarbonTime, Ecovisor, LowestSlot,
    LowestWindow, NoWait, WaitAwhile,
};
use crate::scheduler::{GaiaScheduler, SpotConfig};

/// A [`GaiaScheduler`] over a type-erased base policy — the uniform type
/// the experiment harness iterates over.
pub type DynScheduler = GaiaScheduler<Box<dyn BatchPolicy>>;

/// The base policies of Table 1, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BasePolicyKind {
    /// Carbon- and cost-agnostic FCFS.
    NoWait,
    /// Cost-aware waiting for reserved capacity.
    AllWaitThreshold,
    /// Suspend-resume over the greenest slots; knows exact job lengths.
    WaitAwhile,
    /// Greedy carbon-threshold suspend-resume.
    Ecovisor,
    /// Start at the greenest single slot.
    LowestSlot,
    /// Start at the greenest `J_avg`-long window.
    LowestWindow,
    /// Maximize carbon saving per completion time (the paper's proposal).
    CarbonTime,
    /// Elastic scaling against the forecast (CarbonScaler-style): widen
    /// in green hours, narrow or pause in dirty ones. Knows exact job
    /// lengths. Not part of Table 1 and excluded from
    /// [`BasePolicyKind::ALL`] so the paper-faithful sweeps and their
    /// committed goldens are unchanged; the policy-space study opts in
    /// explicitly.
    CarbonScale,
    /// Fault injection: always returns an over-long segment plan the
    /// engine must reject with a typed error. Not part of Table 1 and
    /// excluded from [`BasePolicyKind::ALL`]; used to test the
    /// audit/error path end to end.
    BadPlan,
}

impl BasePolicyKind {
    /// All *paper* base policies, in Table 1 order ([`BadPlan`] is
    /// fault-injection tooling, not a policy, and is excluded).
    ///
    /// [`BadPlan`]: BasePolicyKind::BadPlan
    pub const ALL: [BasePolicyKind; 7] = [
        BasePolicyKind::NoWait,
        BasePolicyKind::AllWaitThreshold,
        BasePolicyKind::WaitAwhile,
        BasePolicyKind::Ecovisor,
        BasePolicyKind::LowestSlot,
        BasePolicyKind::LowestWindow,
        BasePolicyKind::CarbonTime,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            BasePolicyKind::NoWait => "NoWait",
            BasePolicyKind::AllWaitThreshold => "AllWait-Threshold",
            BasePolicyKind::WaitAwhile => "Wait Awhile",
            BasePolicyKind::Ecovisor => "Ecovisor",
            BasePolicyKind::LowestSlot => "Lowest-Slot",
            BasePolicyKind::LowestWindow => "Lowest-Window",
            BasePolicyKind::CarbonTime => "Carbon-Time",
            BasePolicyKind::CarbonScale => "Carbon-Scale",
            BasePolicyKind::BadPlan => "Bad-Plan",
        }
    }

    /// Parses a policy from its display name or a CLI-friendly slug
    /// (`"carbon-time"`, `"waitawhile"`, ...).
    pub fn parse(s: &str) -> Option<BasePolicyKind> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        Some(match norm.as_str() {
            "nowait" => BasePolicyKind::NoWait,
            "allwait" | "allwaitthreshold" => BasePolicyKind::AllWaitThreshold,
            "waitawhile" => BasePolicyKind::WaitAwhile,
            "ecovisor" => BasePolicyKind::Ecovisor,
            "lowestslot" => BasePolicyKind::LowestSlot,
            "lowestwindow" => BasePolicyKind::LowestWindow,
            "carbontime" => BasePolicyKind::CarbonTime,
            "carbonscale" => BasePolicyKind::CarbonScale,
            "badplan" => BasePolicyKind::BadPlan,
            _ => return None,
        })
    }

    /// Table 1: the job-length knowledge the policy assumes.
    pub fn job_length_knowledge(self) -> &'static str {
        match self {
            BasePolicyKind::WaitAwhile | BasePolicyKind::CarbonScale => "exact J",
            BasePolicyKind::LowestWindow | BasePolicyKind::CarbonTime => "J_avg",
            _ => "-",
        }
    }

    /// Table 1: whether the policy is carbon-aware.
    pub fn carbon_aware(self) -> bool {
        !matches!(
            self,
            BasePolicyKind::NoWait | BasePolicyKind::AllWaitThreshold | BasePolicyKind::BadPlan
        )
    }

    /// Table 1: whether the policy is performance-aware.
    pub fn performance_aware(self) -> bool {
        matches!(
            self,
            BasePolicyKind::CarbonTime | BasePolicyKind::CarbonScale
        )
    }

    /// Whether the policy executes jobs elastically (variable width).
    pub fn elastic(self) -> bool {
        matches!(self, BasePolicyKind::CarbonScale)
    }

    /// Whether the policy executes jobs in suspend-resume fashion.
    pub fn suspend_resume(self) -> bool {
        matches!(self, BasePolicyKind::WaitAwhile | BasePolicyKind::Ecovisor)
    }

    /// Builds the boxed base policy.
    pub fn build(self, queues: QueueSet) -> Box<dyn BatchPolicy> {
        match self {
            BasePolicyKind::NoWait => Box::new(NoWait::new()),
            BasePolicyKind::AllWaitThreshold => Box::new(AllWaitThreshold::new(queues)),
            BasePolicyKind::WaitAwhile => Box::new(WaitAwhile::new(queues)),
            BasePolicyKind::Ecovisor => Box::new(Ecovisor::new(queues)),
            BasePolicyKind::LowestSlot => Box::new(LowestSlot::new(queues)),
            BasePolicyKind::LowestWindow => Box::new(LowestWindow::new(queues)),
            BasePolicyKind::CarbonTime => Box::new(CarbonTime::new(queues)),
            BasePolicyKind::CarbonScale => Box::new(CarbonScale::new(queues)),
            BasePolicyKind::BadPlan => Box::new(BadPlan::new()),
        }
    }
}

impl std::fmt::Display for BasePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A full policy configuration: base policy plus purchase-option
/// wrappers. This is the unit the figure harnesses sweep over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// The base policy.
    pub base: BasePolicyKind,
    /// Apply the work-conserving RES-First wrapper.
    pub res_first: bool,
    /// Apply the Spot-First wrapper with this configuration.
    pub spot: Option<SpotConfig>,
}

impl PolicySpec {
    /// A plain base policy.
    pub fn plain(base: BasePolicyKind) -> Self {
        PolicySpec {
            base,
            res_first: false,
            spot: None,
        }
    }

    /// The RES-First variant.
    pub fn res_first(base: BasePolicyKind) -> Self {
        PolicySpec {
            base,
            res_first: true,
            spot: None,
        }
    }

    /// The Spot-First variant with the paper's default `J^max`.
    pub fn spot_first(base: BasePolicyKind) -> Self {
        PolicySpec {
            base,
            res_first: false,
            spot: Some(SpotConfig::default()),
        }
    }

    /// The combined Spot-RES variant with the paper's default `J^max`.
    pub fn spot_res(base: BasePolicyKind) -> Self {
        PolicySpec {
            base,
            res_first: true,
            spot: Some(SpotConfig::default()),
        }
    }

    /// Builds the runnable scheduler for a cluster with the given queues.
    pub fn build(self, queues: QueueSet) -> DynScheduler {
        let mut scheduler = GaiaScheduler::new(self.base.build(queues));
        if self.res_first {
            scheduler = scheduler.res_first();
        }
        if let Some(spot) = self.spot {
            scheduler = scheduler.spot_first(spot);
        }
        scheduler
    }

    /// The composed display name (e.g. `"Spot-RES-Carbon-Time"`).
    pub fn name(self) -> String {
        let base = self.base.name();
        match (self.res_first, self.spot.is_some()) {
            (false, false) => base.to_owned(),
            (true, false) => format!("RES-First-{base}"),
            (false, true) => format!("Spot-First-{base}"),
            (true, true) => format!("Spot-RES-{base}"),
        }
    }
}

impl BatchPolicy for Box<dyn BatchPolicy> {
    fn decide(
        &mut self,
        job: &gaia_workload::Job,
        ctx: &gaia_sim::SchedulerContext<'_>,
    ) -> gaia_sim::Decision {
        (**self).decide(job, ctx)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The six policies of Figure 8, in the figure's x-axis order.
pub fn figure8_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::plain(BasePolicyKind::NoWait),
        PolicySpec::plain(BasePolicyKind::LowestSlot),
        PolicySpec::plain(BasePolicyKind::LowestWindow),
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        PolicySpec::plain(BasePolicyKind::Ecovisor),
        PolicySpec::plain(BasePolicyKind::WaitAwhile),
    ]
}

/// The six policies of Figure 10, in the figure's x-axis order.
pub fn figure10_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::plain(BasePolicyKind::NoWait),
        PolicySpec::plain(BasePolicyKind::AllWaitThreshold),
        PolicySpec::plain(BasePolicyKind::WaitAwhile),
        PolicySpec::plain(BasePolicyKind::Ecovisor),
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        PolicySpec::res_first(BasePolicyKind::CarbonTime),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capability_matrix() {
        use BasePolicyKind as K;
        assert_eq!(K::NoWait.job_length_knowledge(), "-");
        assert!(!K::NoWait.carbon_aware());
        assert!(!K::NoWait.performance_aware());
        assert_eq!(K::WaitAwhile.job_length_knowledge(), "exact J");
        assert!(K::WaitAwhile.carbon_aware());
        assert!(K::WaitAwhile.suspend_resume());
        assert_eq!(K::LowestWindow.job_length_knowledge(), "J_avg");
        assert!(K::CarbonTime.carbon_aware());
        assert!(K::CarbonTime.performance_aware());
        assert!(!K::CarbonTime.suspend_resume());
        assert!(K::Ecovisor.carbon_aware());
        assert!(!K::Ecovisor.performance_aware());
        assert!(!K::AllWaitThreshold.carbon_aware());
    }

    #[test]
    fn parse_round_trips() {
        for kind in BasePolicyKind::ALL {
            assert_eq!(BasePolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            BasePolicyKind::parse("carbon-time"),
            Some(BasePolicyKind::CarbonTime)
        );
        assert_eq!(
            BasePolicyKind::parse("ALLWAIT"),
            Some(BasePolicyKind::AllWaitThreshold)
        );
        assert_eq!(BasePolicyKind::parse("unknown"), None);
    }

    #[test]
    fn spec_names() {
        assert_eq!(
            PolicySpec::plain(BasePolicyKind::CarbonTime).name(),
            "Carbon-Time"
        );
        assert_eq!(
            PolicySpec::res_first(BasePolicyKind::CarbonTime).name(),
            "RES-First-Carbon-Time"
        );
        assert_eq!(
            PolicySpec::spot_first(BasePolicyKind::Ecovisor).name(),
            "Spot-First-Ecovisor"
        );
        assert_eq!(
            PolicySpec::spot_res(BasePolicyKind::CarbonTime).name(),
            "Spot-RES-Carbon-Time"
        );
    }

    #[test]
    fn built_scheduler_names_agree_with_spec() {
        let queues = QueueSet::paper_defaults();
        for spec in [
            PolicySpec::plain(BasePolicyKind::LowestWindow),
            PolicySpec::res_first(BasePolicyKind::CarbonTime),
            PolicySpec::spot_first(BasePolicyKind::CarbonTime),
            PolicySpec::spot_res(BasePolicyKind::CarbonTime),
        ] {
            assert_eq!(spec.build(queues).name(), spec.name());
        }
    }

    #[test]
    fn figure_policy_lists() {
        assert_eq!(figure8_policies().len(), 6);
        assert_eq!(figure10_policies().len(), 6);
        assert_eq!(figure10_policies()[5].name(), "RES-First-Carbon-Time");
    }
}
