//! Suspend-resume Carbon-Time — the extension the paper defers to future
//! work (§4.1: "Adding suspend-resume capability to the scheduler is
//! part of future work. Such a capability can further increase carbon
//! savings ... albeit at the expense of increasing completion times").

use gaia_sim::{Decision, SchedulerContext, SegmentPlan};
use gaia_time::Minutes;
use gaia_workload::{Job, QueueSet};

use super::{greenest_slots, BatchPolicy};

/// Carbon-Time generalized to suspend-resume execution.
///
/// Wait Awhile always uses its full deadline `t + J + W`, even when the
/// marginal slot it unlocks is barely greener; Carbon-Time refuses to
/// suspend at all. This policy interpolates: for each candidate deadline
/// `D ∈ [J, J + W]` (hourly steps) it builds the greenest suspend-resume
/// plan within `[t, t + D)` and picks the deadline maximizing the CST
/// ratio
///
/// ```text
/// CST(D) = (C(t) − C_plan(D)) / completion(D)
/// ```
///
/// where `completion(D)` is when the plan actually finishes (its last
/// slot's end, not `D` itself). Like Wait Awhile — and unlike the
/// uninterruptible Carbon-Time — it requires exact job lengths, since a
/// segment plan must cover the job precisely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonTimeSuspend {
    queues: QueueSet,
}

impl CarbonTimeSuspend {
    /// Creates the policy with the given queue configuration.
    pub fn new(queues: QueueSet) -> Self {
        CarbonTimeSuspend { queues }
    }
}

impl BatchPolicy for CarbonTimeSuspend {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let wait = self.queues.max_wait_for(job);
        let immediate = ctx.forecast.integral(ctx.now, job.length);
        let mut best: Option<(f64, SegmentPlan)> = None;
        let mut deadline = job.length;
        while deadline <= job.length + wait {
            let segments = greenest_slots(ctx, deadline, job.length);
            let plan = SegmentPlan::new(segments);
            let footprint: f64 = plan
                .segments
                .iter()
                .map(|&(start, len)| ctx.forecast.integral(start, len))
                .sum();
            let completion_hours = (plan.finish() - ctx.now).as_hours_f64();
            let cst = (immediate - footprint) / completion_hours;
            // Strictly-better keeps the earliest (shortest) deadline on
            // ties, bounding completion time.
            if best
                .as_ref()
                .is_none_or(|(best_cst, _)| cst > best_cst + 1e-12)
            {
                best = Some((cst, plan));
            }
            deadline += Minutes::from_hours(1);
        }
        let (_, plan) = best.expect("deadline J is always evaluated");
        Decision::run_segments(plan)
    }

    fn name(&self) -> &'static str {
        "Carbon-Time-SR"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::SimTime;

    #[test]
    fn flat_trace_runs_immediately_without_suspension() {
        let factory = CtxFactory::new(&[200.0; 48]);
        let mut policy = CarbonTimeSuspend::new(QueueSet::paper_defaults());
        let j = job(30, 90, 1);
        let d = factory.with_ctx(SimTime::from_minutes(30), 0, 0, |ctx| {
            policy.decide(&j, ctx)
        });
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![(SimTime::from_minutes(30), Minutes::new(90))]
        );
    }

    #[test]
    fn splits_around_a_peak_when_saving_justifies_it() {
        // Cheap hours 0 and 2 around an enormous hour-1 peak: suspending
        // one hour halves the footprint for a modest completion increase.
        let factory =
            CtxFactory::new(&[100.0, 5000.0, 100.0, 5000.0, 5000.0, 5000.0, 5000.0, 5000.0]);
        let mut policy = CarbonTimeSuspend::new(QueueSet::paper_defaults());
        let j = job(0, 120, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![
                (SimTime::ORIGIN, Minutes::from_hours(1)),
                (SimTime::from_hours(2), Minutes::from_hours(1)),
            ]
        );
    }

    #[test]
    fn refuses_marginal_savings_far_away() {
        // A slightly cheaper hour far in the future: Wait Awhile would
        // chase it; CST says the wait is not worth it.
        let mut hourly = vec![100.0; 12];
        hourly[7] = 98.0;
        let factory = CtxFactory::new(&hourly);
        let mut policy = CarbonTimeSuspend::new(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![(SimTime::ORIGIN, Minutes::from_hours(1))]
        );
    }

    #[test]
    fn saves_at_least_as_much_as_uninterruptible_carbon_time() {
        use crate::policies::CarbonTime;
        use crate::JobLengthKnowledge;
        // A jagged trace where interruption helps.
        let hourly = [300.0, 80.0, 400.0, 90.0, 500.0, 70.0, 600.0, 310.0, 320.0];
        let factory = CtxFactory::new(&hourly);
        let j = job(0, 180, 1);
        let footprint = |segments: &[(SimTime, Minutes)]| -> f64 {
            segments
                .iter()
                .map(|&(s, l)| factory.trace().window_integral(s, l))
                .sum()
        };
        let sr_plan = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| {
            CarbonTimeSuspend::new(QueueSet::paper_defaults()).decide(&j, ctx)
        });
        let ct_start = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| {
            CarbonTime::new(QueueSet::paper_defaults())
                .with_knowledge(JobLengthKnowledge::Exact)
                .decide(&j, ctx)
        });
        let sr_carbon = footprint(&sr_plan.segments().expect("plan").segments);
        let ct_carbon = footprint(&[(ct_start.planned_start(), j.length)]);
        assert!(
            sr_carbon <= ct_carbon + 1e-9,
            "suspend-resume {sr_carbon} must not exceed uninterruptible {ct_carbon}"
        );
    }

    #[test]
    fn plan_always_covers_exact_length() {
        let factory =
            CtxFactory::new(&[300.0, 100.0, 200.0, 50.0, 400.0, 120.0, 80.0, 90.0, 500.0]);
        let mut policy = CarbonTimeSuspend::new(QueueSet::paper_defaults());
        for len in [25u64, 60, 95, 240] {
            let j = job(10, len, 1);
            let d = factory.with_ctx(SimTime::from_minutes(10), 0, 0, |ctx| {
                policy.decide(&j, ctx)
            });
            assert_eq!(d.segments().expect("plan").total(), Minutes::new(len));
        }
    }
}
