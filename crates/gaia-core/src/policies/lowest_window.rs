//! The Lowest Carbon Window policy (§4.2.1).

use gaia_sim::{Decision, SchedulerContext};
use gaia_time::Minutes;
use gaia_workload::{Job, QueueSet};

use super::{best_start_by, effective_scan_step, BatchPolicy, DEFAULT_SCAN_STEP};
use crate::JobLengthKnowledge;

/// Starts each job at the beginning of the `J`-long window with the
/// lowest total carbon footprint inside the waiting window (§4.2.1,
/// "Lowest-Window"):
///
/// ```text
/// t_start = argmin_{t_s in [t, t+W)}  Σ_{u=t_s}^{t_s+J} c(u) · e
/// ```
///
/// Since real schedulers rarely know `J`, the policy estimates it with
/// the historical queue-wide average `J_avg` by default
/// ([`JobLengthKnowledge::QueueAverage`]); pass
/// [`JobLengthKnowledge::Exact`] to ablate the knowledge assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowestWindow {
    queues: QueueSet,
    knowledge: JobLengthKnowledge,
    step: Minutes,
}

impl LowestWindow {
    /// Creates the policy with the paper's defaults (queue-average
    /// length knowledge).
    pub fn new(queues: QueueSet) -> Self {
        LowestWindow {
            queues,
            knowledge: JobLengthKnowledge::QueueAverage,
            step: DEFAULT_SCAN_STEP,
        }
    }

    /// Overrides the job-length knowledge model.
    pub fn with_knowledge(mut self, knowledge: JobLengthKnowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Overrides the start-time scan granularity.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn with_scan_step(mut self, step: Minutes) -> Self {
        assert!(!step.is_zero(), "scan step must be positive");
        self.step = step;
        self
    }
}

impl BatchPolicy for LowestWindow {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let wait = self.queues.max_wait_for(job);
        let estimate = self.knowledge.estimate(job, &self.queues);
        let step = effective_scan_step(self.step, ctx);
        let start = best_start_by(ctx.now, wait, step, |t| -ctx.forecast.integral(t, estimate));
        Decision::run_at(start)
    }

    fn name(&self) -> &'static str {
        "Lowest-Window"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::SimTime;

    #[test]
    fn exact_knowledge_picks_cheapest_window() {
        // Hour 3 is the cheapest slot but hours 5-6 are the cheapest
        // *2-hour window*; with exact knowledge of a 2-hour job the policy
        // must choose hour 5.
        let factory =
            CtxFactory::new(&[300.0, 280.0, 260.0, 50.0, 400.0, 90.0, 80.0, 500.0, 500.0]);
        let mut policy =
            LowestWindow::new(QueueSet::paper_defaults()).with_knowledge(JobLengthKnowledge::Exact);
        let j = job(0, 120, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(5));
    }

    #[test]
    fn queue_average_estimate_drives_choice() {
        // Same trace, but the queue-wide average is 1 h, so the cheapest
        // 1-hour window is the hour-3 valley.
        let factory =
            CtxFactory::new(&[300.0, 280.0, 260.0, 50.0, 400.0, 90.0, 80.0, 500.0, 500.0]);
        let jobs = vec![job(0, 30, 1), job(0, 90, 1)]; // short-queue average: 60 min
        let queues = QueueSet::paper_defaults().with_averages_from(&jobs);
        let mut policy = LowestWindow::new(queues);
        let j = job(0, 120, 1); // actual length is irrelevant to the policy
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(3));
    }

    #[test]
    fn sub_hour_start_can_beat_aligned_start() {
        // A 90-minute job: starting at 2:30 covers the last half of the
        // cheap hour 2 and all of cheap hour 3, beating any aligned start.
        let factory = CtxFactory::new(&[500.0, 500.0, 100.0, 50.0, 500.0, 500.0, 500.0]);
        let mut policy =
            LowestWindow::new(QueueSet::paper_defaults()).with_knowledge(JobLengthKnowledge::Exact);
        let j = job(0, 90, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_minutes(150));
    }

    #[test]
    fn respects_waiting_window_for_long_jobs() {
        // Long job: W = 24 h; the day-2 valley is unreachable.
        let mut hourly = vec![400.0; 72];
        hourly[20] = 100.0;
        hourly[21] = 100.0;
        hourly[50] = 1.0;
        hourly[51] = 1.0;
        let factory = CtxFactory::new(&hourly);
        let mut policy =
            LowestWindow::new(QueueSet::paper_defaults()).with_knowledge(JobLengthKnowledge::Exact);
        let j = job(0, 150, 1); // long queue (2.5 h)
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        // Cheapest reachable 2.5-hour window starts just before hour 20
        // so that the job covers both cheap hours.
        assert!(d.planned_start() >= SimTime::from_hours(19));
        assert!(d.planned_start() <= SimTime::from_hours(20));
    }

    #[test]
    fn flat_trace_runs_immediately() {
        let factory = CtxFactory::new(&[77.0; 48]);
        let mut policy = LowestWindow::new(QueueSet::paper_defaults());
        let j = job(45, 60, 1);
        let d = factory.with_ctx(SimTime::from_minutes(45), 0, 0, |ctx| {
            policy.decide(&j, ctx)
        });
        assert_eq!(d.planned_start(), SimTime::from_minutes(45));
    }
}
