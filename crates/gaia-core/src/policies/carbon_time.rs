//! The Carbon-Time policy (§4.2.2) — the paper's flagship
//! performance-aware proposal.

use gaia_sim::{Decision, SchedulerContext};
use gaia_time::Minutes;
use gaia_workload::{Job, QueueSet};

use super::{best_start_by, effective_scan_step, BatchPolicy, DEFAULT_SCAN_STEP};
use crate::JobLengthKnowledge;

/// Maximizes the **Carbon Saving per Completion Time** (CST):
///
/// ```text
/// CST(t_s) = (C(t) − C(t_s)) / (t_s + J − t)
/// ```
///
/// where `C(t)` is the footprint of starting immediately and `C(t_s)` the
/// footprint of starting at `t_s` (§4.2.2). Unlike the purely
/// carbon-aware policies, Carbon-Time refuses to chase marginal carbon
/// savings at large completion-time cost: a delay only wins if its
/// *rate* of carbon saving per unit of completion time is the best
/// available. Starting immediately scores `CST = 0`, so a job is only
/// delayed when some start time yields a strictly positive saving rate.
///
/// Uses the queue-average length estimate by default, like
/// [`LowestWindow`](super::LowestWindow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonTime {
    queues: QueueSet,
    knowledge: JobLengthKnowledge,
    step: Minutes,
}

impl CarbonTime {
    /// Creates the policy with the paper's defaults.
    pub fn new(queues: QueueSet) -> Self {
        CarbonTime {
            queues,
            knowledge: JobLengthKnowledge::QueueAverage,
            step: DEFAULT_SCAN_STEP,
        }
    }

    /// Overrides the job-length knowledge model.
    pub fn with_knowledge(mut self, knowledge: JobLengthKnowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Overrides the start-time scan granularity.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn with_scan_step(mut self, step: Minutes) -> Self {
        assert!(!step.is_zero(), "scan step must be positive");
        self.step = step;
        self
    }
}

impl BatchPolicy for CarbonTime {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let wait = self.queues.max_wait_for(job);
        let estimate = self.knowledge.estimate(job, &self.queues);
        let immediate_footprint = ctx.forecast.integral(ctx.now, estimate);
        let now = ctx.now;
        let step = effective_scan_step(self.step, ctx);
        let start = best_start_by(now, wait, step, |t| {
            let saving = immediate_footprint - ctx.forecast.integral(t, estimate);
            let completion_hours = (t - now + estimate).as_hours_f64();
            saving / completion_hours
        });
        Decision::run_at(start)
    }

    fn name(&self) -> &'static str {
        "Carbon-Time"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::SimTime;

    fn exact(queues: QueueSet) -> CarbonTime {
        CarbonTime::new(queues).with_knowledge(JobLengthKnowledge::Exact)
    }

    #[test]
    fn no_saving_means_no_delay() {
        // Carbon only rises: every delay has negative CST, so start now.
        let factory = CtxFactory::new(&[100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0]);
        let mut policy = exact(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::ORIGIN);
    }

    #[test]
    fn deep_nearby_valley_wins() {
        // A deep valley one hour away: large saving for a small delay.
        let factory = CtxFactory::new(&[500.0, 10.0, 500.0, 500.0, 500.0, 500.0, 500.0]);
        let mut policy = exact(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(1));
    }

    #[test]
    fn prefers_near_valley_over_slightly_deeper_far_one() {
        // Hour 1: CI 100 (saving 400, completion 2 h -> CST 200).
        // Hour 5: CI 80  (saving 420, completion 6 h -> CST 70).
        // Lowest-Window would chase hour 5; Carbon-Time must not.
        let factory = CtxFactory::new(&[500.0, 100.0, 500.0, 500.0, 500.0, 80.0, 500.0]);
        let mut policy = exact(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(1));
    }

    #[test]
    fn flat_trace_runs_immediately() {
        let factory = CtxFactory::new(&[250.0; 48]);
        let mut policy = exact(QueueSet::paper_defaults());
        let j = job(120, 90, 1);
        let d = factory.with_ctx(SimTime::from_minutes(120), 0, 0, |ctx| {
            policy.decide(&j, ctx)
        });
        assert_eq!(d.planned_start(), SimTime::from_minutes(120));
    }

    #[test]
    fn queue_average_is_the_default_estimate() {
        // With a 1-hour queue average, the policy evaluates 1-hour
        // windows even for this (actually 3-hour) job.
        let jobs = vec![job(0, 60, 1)];
        let queues = QueueSet::paper_defaults().with_averages_from(&jobs);
        let factory = CtxFactory::new(&[500.0, 10.0, 500.0, 500.0, 500.0, 500.0, 500.0]);
        let mut policy = CarbonTime::new(queues);
        let j = job(0, 180, 1); // long queue; avg defaults to cap/2
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        // The decision is still a valid single start within the window.
        assert!(d.planned_start() >= SimTime::ORIGIN);
        assert!(d.planned_start() <= SimTime::from_hours(24));
        assert!(d.segments().is_none());
    }

    #[test]
    fn waiting_window_bounds_the_delay() {
        // Short job: the valley at hour 8 is outside W_short = 6 h.
        let mut hourly = vec![500.0; 24];
        hourly[8] = 1.0;
        let factory = CtxFactory::new(&hourly);
        let mut policy = exact(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert!(d.planned_start() <= SimTime::from_hours(6));
    }
}
