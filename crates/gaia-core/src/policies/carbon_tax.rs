//! Carbon-tax scheduling — the §7 discussion made concrete: "an
//! alternative approach is to assign an explicit cost to carbon and thus
//! reduce the problem to a simpler cost-performance trade-off".

use gaia_sim::{Decision, SchedulerContext};
use gaia_time::Minutes;
use gaia_workload::{Job, QueueSet};

use super::{best_start_by, BatchPolicy, DEFAULT_SCAN_STEP};
use crate::JobLengthKnowledge;

/// Monetizes the three-way trade-off: each candidate start time is scored
/// by its total *money* cost,
///
/// ```text
/// money(t_s) = tax · carbon(t_s) + delay_value · (t_s − t)
/// ```
///
/// with `tax` in $ per kg CO₂eq and `delay_value` in $ per hour of
/// delayed start (the user's monetized performance cost). At `tax = 0`
/// the policy degenerates to NoWait; as `tax → ∞` it approaches
/// Lowest-Window. Policymakers tune the incentive by moving one knob —
/// exactly the mechanism §7 describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonTax {
    queues: QueueSet,
    tax_per_kg: f64,
    delay_value_per_hour: f64,
    knowledge: JobLengthKnowledge,
    step: Minutes,
}

impl CarbonTax {
    /// Creates the policy with a carbon tax (`$ / kg CO₂eq`) and a
    /// delay value (`$ / hour` of start delay).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is negative or non-finite.
    pub fn new(queues: QueueSet, tax_per_kg: f64, delay_value_per_hour: f64) -> Self {
        assert!(
            tax_per_kg.is_finite() && tax_per_kg >= 0.0,
            "carbon tax must be non-negative"
        );
        assert!(
            delay_value_per_hour.is_finite() && delay_value_per_hour >= 0.0,
            "delay value must be non-negative"
        );
        CarbonTax {
            queues,
            tax_per_kg,
            delay_value_per_hour,
            knowledge: JobLengthKnowledge::QueueAverage,
            step: DEFAULT_SCAN_STEP,
        }
    }

    /// Overrides the job-length knowledge model.
    pub fn with_knowledge(mut self, knowledge: JobLengthKnowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// The configured tax, $ per kg CO₂eq.
    pub fn tax_per_kg(&self) -> f64 {
        self.tax_per_kg
    }
}

impl BatchPolicy for CarbonTax {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let wait = self.queues.max_wait_for(job);
        let estimate = self.knowledge.estimate(job, &self.queues);
        let now = ctx.now;
        let cpus = job.cpus as f64;
        let start = best_start_by(now, wait, self.step, |t| {
            // Forecast integral is (g/kWh)·h; at the simulator's 1 kW per
            // CPU this is grams per CPU, so scale by CPUs and g->kg.
            let carbon_kg = ctx.forecast.integral(t, estimate) * cpus / 1000.0;
            let delay_cost = self.delay_value_per_hour * (t - now).as_hours_f64();
            -(self.tax_per_kg * carbon_kg + delay_cost)
        });
        Decision::run_at(start)
    }

    fn name(&self) -> &'static str {
        "Carbon-Tax"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::SimTime;

    fn valley_factory() -> CtxFactory {
        // Deep valley at hour 4.
        CtxFactory::new(&[500.0, 480.0, 460.0, 440.0, 50.0, 450.0, 470.0, 490.0])
    }

    #[test]
    fn zero_tax_never_waits() {
        let factory = valley_factory();
        let mut policy = CarbonTax::new(QueueSet::paper_defaults(), 0.0, 1.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::ORIGIN);
    }

    #[test]
    fn high_tax_chases_the_valley() {
        let factory = valley_factory();
        let mut policy = CarbonTax::new(QueueSet::paper_defaults(), 1000.0, 1.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(4));
    }

    #[test]
    fn tax_level_interpolates() {
        // At an intermediate tax the 4-hour delay to save ~0.45 kg per
        // CPU is worth it only if tax * 0.45 > delay_value * 4.
        let factory = valley_factory();
        let j = job(0, 60, 1);
        let marginal_tax = 4.0 / 0.45; // break-even, roughly
        let mut cheap = CarbonTax::new(QueueSet::paper_defaults(), marginal_tax * 0.5, 1.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let mut dear = CarbonTax::new(QueueSet::paper_defaults(), marginal_tax * 2.0, 1.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let d_cheap = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| cheap.decide(&j, ctx));
        let d_dear = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| dear.decide(&j, ctx));
        assert_eq!(d_cheap.planned_start(), SimTime::ORIGIN);
        assert_eq!(d_dear.planned_start(), SimTime::from_hours(4));
    }

    #[test]
    fn free_delay_behaves_like_lowest_window() {
        use crate::policies::LowestWindow;
        let factory = valley_factory();
        let j = job(0, 90, 1);
        let mut taxed = CarbonTax::new(QueueSet::paper_defaults(), 1.0, 0.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let mut lw =
            LowestWindow::new(QueueSet::paper_defaults()).with_knowledge(JobLengthKnowledge::Exact);
        let d_tax = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| taxed.decide(&j, ctx));
        let d_lw = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| lw.decide(&j, ctx));
        assert_eq!(d_tax.planned_start(), d_lw.planned_start());
    }

    #[test]
    fn wider_jobs_feel_the_tax_more() {
        // Same job lengths, different widths: the 8-CPU job's carbon term
        // is 8x larger, so it is willing to wait at a tax where the 1-CPU
        // job is not.
        let factory = valley_factory();
        let tax = 2.5;
        let mut policy = CarbonTax::new(QueueSet::paper_defaults(), tax, 1.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let narrow = job(0, 60, 1);
        let wide = job(0, 60, 8);
        let d_narrow = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&narrow, ctx));
        let d_wide = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&wide, ctx));
        assert_eq!(d_narrow.planned_start(), SimTime::ORIGIN);
        assert_eq!(d_wide.planned_start(), SimTime::from_hours(4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_tax() {
        let _ = CarbonTax::new(QueueSet::paper_defaults(), -1.0, 1.0);
    }
}
