//! The base scheduling policies (§4.2 and the paper's baselines).

mod allwait;
mod badplan;
mod carbon_scale;
mod carbon_tax;
mod carbon_time;
mod carbon_time_sr;
mod ecovisor;
mod lowest_slot;
mod lowest_window;
mod nowait;
mod price_aware;
mod tiered;
mod waitawhile;

pub use allwait::AllWaitThreshold;
pub use badplan::BadPlan;
pub use carbon_scale::CarbonScale;
pub use carbon_tax::CarbonTax;
pub use carbon_time::CarbonTime;
pub use carbon_time_sr::CarbonTimeSuspend;
pub use ecovisor::Ecovisor;
pub use lowest_slot::LowestSlot;
pub use lowest_window::LowestWindow;
pub use nowait::NoWait;
pub use price_aware::PriceAware;
pub use tiered::TieredCarbonTime;
pub use waitawhile::WaitAwhile;

use gaia_sim::{Decision, SchedulerContext};
use gaia_time::{Minutes, SimTime};
use gaia_workload::Job;

/// A base scheduling policy: decides *when* a job runs.
///
/// Base policies are deliberately ignorant of purchase options — the
/// RES-First / Spot-First wrappers in [`GaiaScheduler`] layer cost
/// awareness on top, mirroring the paper's composition (§4.2.3–4.2.4).
///
/// [`GaiaScheduler`]: crate::GaiaScheduler
pub trait BatchPolicy: Send {
    /// Chooses the execution plan for `job` given the CIS forecasts in
    /// `ctx`.
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision;

    /// The paper's display name for the policy (e.g. `"Carbon-Time"`).
    fn name(&self) -> &'static str;
}

/// Scans candidate start times `now + k·step` within `[now, now + wait]`
/// (inclusive of the last candidate at or before `now + wait`) and
/// returns the candidate maximizing `score`, breaking ties toward the
/// earliest candidate. `score` must return finite values.
///
/// The default scan step is [`DEFAULT_SCAN_STEP`]; policies expose it as
/// a knob so the slot-granularity ablation can vary it.
pub(crate) fn best_start_by(
    now: SimTime,
    wait: Minutes,
    step: Minutes,
    mut score: impl FnMut(SimTime) -> f64,
) -> SimTime {
    debug_assert!(!step.is_zero(), "scan step must be positive");
    let mut best_t = now;
    let mut best_score = score(now);
    let mut t = now + step;
    while t <= now + wait {
        let s = score(t);
        if s > best_score + 1e-12 {
            best_score = s;
            best_t = t;
        }
        t += step;
    }
    best_t
}

/// Default scan granularity for carbon-aware start-time searches.
///
/// Carbon intensity is hourly, but the optimum start of a window that
/// ends mid-hour need not be hour-aligned, so policies scan at sub-hour
/// resolution.
pub const DEFAULT_SCAN_STEP: Minutes = Minutes::new(10);

/// The scan step a policy should actually use under `ctx`.
///
/// In degraded mode ([`SchedulerContext::degraded`], set during
/// fault-injected forecast outages) the forecast is a persistence
/// fallback that merely repeats hourly history, so scanning finer than an
/// hour can only chase artifacts of the stand-in data. The configured
/// step is coarsened to at least one hour; outside degraded mode it is
/// returned unchanged.
pub(crate) fn effective_scan_step(step: Minutes, ctx: &SchedulerContext<'_>) -> Minutes {
    if ctx.degraded {
        step.max(Minutes::from_hours(1))
    } else {
        step
    }
}

/// Greedily selects the `need` lowest-forecast-CI minutes (at hourly slot
/// granularity) within `[now, now + horizon)` and returns them merged
/// into ordered, non-overlapping segments summing to exactly `need`.
///
/// A horizon shorter than `need` is widened to `need` so the plan always
/// covers the whole job — a `debug_assert!` used to be the only guard,
/// which in release builds let such calls return silently truncated
/// plans (under-counted carbon and length).
///
/// Slots are ordered with [`f64::total_cmp`], so NaN forecasts (possible
/// with perturbed forecasters) degrade gracefully instead of panicking:
/// NaN sorts after every real CI value and is picked last.
///
/// Shared by the Wait Awhile baseline and the suspend-resume Carbon-Time
/// extension.
pub(crate) fn greenest_slots(
    ctx: &SchedulerContext<'_>,
    horizon: Minutes,
    need: Minutes,
) -> Vec<(SimTime, Minutes)> {
    let horizon = horizon.max(need);
    // The view routes this through the forecaster's query kernel: the
    // perfect forecaster answers from its ForecastIndex, stochastic
    // forecasters from their per-`now` memo, with output identical to
    // the historical sort-everything greedy over `ctx.forecast.at`.
    ctx.forecast.greenest_slots(horizon, need)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for policy unit tests.

    use gaia_carbon::{CarbonForecaster, CarbonTrace, ForecastView, PerfectForecaster};
    use gaia_sim::SchedulerContext;
    use gaia_time::{Minutes, SimTime};
    use gaia_workload::{Job, JobId};

    /// Owns a trace + forecaster so tests can mint contexts.
    pub struct CtxFactory {
        trace: CarbonTrace,
    }

    impl CtxFactory {
        pub fn new(hourly: &[f64]) -> Self {
            CtxFactory {
                trace: CarbonTrace::from_hourly(hourly.to_vec()).expect("valid"),
            }
        }

        #[allow(dead_code)]
        pub fn trace(&self) -> &CarbonTrace {
            &self.trace
        }

        pub fn with_ctx<R>(
            &self,
            now: SimTime,
            reserved_free: u32,
            reserved_capacity: u32,
            f: impl FnOnce(&SchedulerContext<'_>) -> R,
        ) -> R {
            let forecaster = PerfectForecaster::new(&self.trace);
            let ctx = SchedulerContext {
                now,
                forecast: ForecastView::new(&forecaster as &dyn CarbonForecaster, now),
                reserved_free,
                reserved_capacity,
                degraded: false,
            };
            f(&ctx)
        }
    }

    pub fn job(arrival_min: u64, len_min: u64, cpus: u32) -> Job {
        Job::new(
            JobId(0),
            SimTime::from_minutes(arrival_min),
            Minutes::new(len_min),
            cpus,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_start_prefers_highest_score() {
        let best = best_start_by(
            SimTime::ORIGIN,
            Minutes::from_hours(4),
            Minutes::from_hours(1),
            |t| -((t.as_hours_floor() as f64 - 3.0).abs()),
        );
        assert_eq!(best, SimTime::from_hours(3));
    }

    #[test]
    fn best_start_ties_go_earliest() {
        let best = best_start_by(
            SimTime::from_hours(1),
            Minutes::from_hours(5),
            Minutes::from_hours(1),
            |_| 7.0,
        );
        assert_eq!(best, SimTime::from_hours(1));
    }

    #[test]
    fn best_start_includes_window_end() {
        let best = best_start_by(
            SimTime::ORIGIN,
            Minutes::from_hours(2),
            Minutes::from_hours(1),
            |t| t.as_minutes() as f64,
        );
        assert_eq!(best, SimTime::from_hours(2));
    }

    #[test]
    fn zero_wait_returns_now() {
        let best = best_start_by(
            SimTime::from_hours(5),
            Minutes::ZERO,
            Minutes::new(10),
            |_| 1.0,
        );
        assert_eq!(best, SimTime::from_hours(5));
    }

    /// Regression: `need > horizon` used to be guarded only by a
    /// `debug_assert!`, so release builds returned a silently truncated
    /// plan. The horizon is now widened to cover the need in every build
    /// profile (this test runs under `cargo test --release` in CI too).
    #[test]
    fn greenest_slots_covers_need_beyond_horizon() {
        let factory = testutil::CtxFactory::new(&[100.0, 50.0, 200.0, 75.0, 120.0, 90.0]);
        factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| {
            let need = Minutes::from_hours(4);
            let slots = greenest_slots(ctx, Minutes::from_hours(1), need);
            let total: Minutes = slots.iter().map(|(_, l)| *l).sum();
            assert_eq!(total, need, "plan must cover the whole job");
            for pair in slots.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].0 + pair[0].1,
                    "segments must be ordered and non-overlapping"
                );
            }
        });
    }

    #[test]
    fn greenest_slots_picks_lowest_ci_hours() {
        let factory = testutil::CtxFactory::new(&[100.0, 50.0, 200.0, 75.0]);
        factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| {
            let slots = greenest_slots(ctx, Minutes::from_hours(4), Minutes::from_hours(2));
            // Hours 1 (CI 50) and 3 (CI 75) win; they are disjoint.
            assert_eq!(
                slots,
                vec![
                    (SimTime::from_hours(1), Minutes::from_hours(1)),
                    (SimTime::from_hours(3), Minutes::from_hours(1)),
                ]
            );
        });
    }

    #[test]
    fn degraded_mode_coarsens_scan_to_whole_hours() {
        use gaia_carbon::{CarbonForecaster, CarbonTrace, ForecastView, PerfectForecaster};

        let trace = CarbonTrace::constant(100.0, 24).expect("valid");
        let forecaster = PerfectForecaster::new(&trace);
        let mut ctx = SchedulerContext {
            now: SimTime::ORIGIN,
            forecast: ForecastView::new(&forecaster as &dyn CarbonForecaster, SimTime::ORIGIN),
            reserved_free: 0,
            reserved_capacity: 0,
            degraded: false,
        };
        assert_eq!(
            effective_scan_step(DEFAULT_SCAN_STEP, &ctx),
            DEFAULT_SCAN_STEP
        );
        ctx.degraded = true;
        assert_eq!(
            effective_scan_step(DEFAULT_SCAN_STEP, &ctx),
            Minutes::from_hours(1)
        );
        // An already-coarser configured step is left alone.
        assert_eq!(
            effective_scan_step(Minutes::from_hours(2), &ctx),
            Minutes::from_hours(2)
        );
    }

    /// Regression: the slot sort used `partial_cmp(..).expect("finite
    /// CI")`, so one NaN forecast panicked mid-run. With `total_cmp` NaN
    /// slots sort last and a full-length plan still comes out.
    #[test]
    fn greenest_slots_tolerates_nan_forecasts() {
        use gaia_carbon::{CarbonForecaster, ForecastView};
        use gaia_sim::SchedulerContext;

        /// NaN everywhere except the current instant.
        struct NanForecaster;
        impl CarbonForecaster for NanForecaster {
            fn current(&self, _t: SimTime) -> f64 {
                100.0
            }
            fn forecast(&self, now: SimTime, at: SimTime) -> f64 {
                if at == now {
                    100.0
                } else {
                    f64::NAN
                }
            }
        }
        let forecaster = NanForecaster;
        let ctx = SchedulerContext {
            now: SimTime::ORIGIN,
            forecast: ForecastView::new(&forecaster, SimTime::ORIGIN),
            reserved_free: 0,
            reserved_capacity: 0,
            degraded: false,
        };
        let need = Minutes::from_hours(3);
        let slots = greenest_slots(&ctx, Minutes::from_hours(6), need);
        let total: Minutes = slots.iter().map(|(_, l)| *l).sum();
        assert_eq!(total, need);
        // The only non-NaN slot (now) must be preferred over NaN ones.
        assert_eq!(slots[0].0, SimTime::ORIGIN);
    }
}
