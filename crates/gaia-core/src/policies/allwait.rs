//! The cost-aware AllWait-Threshold baseline.

use gaia_sim::{Decision, SchedulerContext};
use gaia_workload::{Job, QueueSet};

use super::BatchPolicy;

/// Delays each job until a reserved instance frees up, or until the
/// queue's maximum waiting time elapses — whichever comes first (§6.1
/// baseline 2, from the "Waiting Game" line of work).
///
/// The policy is cost-aware but entirely carbon-agnostic: by spreading
/// demand across time it keeps prepaid reserved instances busy and
/// minimizes on-demand spill, at the price of the highest waiting times.
///
/// Implementation: jobs that find an idle reserved instance start
/// immediately; everyone else is scheduled at `arrival + W` with the
/// engine's opportunistic early-start (work conservation) picking them up
/// the moment reserved capacity frees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllWaitThreshold {
    queues: QueueSet,
}

impl AllWaitThreshold {
    /// Creates the policy with the given queue configuration.
    pub fn new(queues: QueueSet) -> Self {
        AllWaitThreshold { queues }
    }
}

impl BatchPolicy for AllWaitThreshold {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        if ctx.reserved_free >= job.cpus {
            return Decision::run_at(ctx.now);
        }
        Decision::run_at(ctx.now + self.queues.max_wait_for(job)).opportunistic()
    }

    fn name(&self) -> &'static str {
        "AllWait-Threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::{Minutes, SimTime};

    fn queues() -> QueueSet {
        QueueSet::paper_defaults()
    }

    #[test]
    fn starts_immediately_when_reserved_free() {
        let factory = CtxFactory::new(&[100.0; 48]);
        let mut policy = AllWaitThreshold::new(queues());
        let j = job(0, 60, 2);
        let d = factory.with_ctx(SimTime::ORIGIN, 3, 5, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::ORIGIN);
        assert!(!d.is_opportunistic());
    }

    #[test]
    fn waits_max_wait_when_reserved_busy() {
        let factory = CtxFactory::new(&[100.0; 48]);
        let mut policy = AllWaitThreshold::new(queues());
        // Short job (60 min): W_short = 6 h.
        let short = job(0, 60, 2);
        let d = factory.with_ctx(SimTime::ORIGIN, 1, 5, |ctx| policy.decide(&short, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(6));
        assert!(d.is_opportunistic());
        // Long job (10 h): W_long = 24 h.
        let long = job(0, 600, 2);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 5, |ctx| policy.decide(&long, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(24));
    }

    #[test]
    fn wait_is_relative_to_arrival() {
        let factory = CtxFactory::new(&[100.0; 72]);
        let mut policy = AllWaitThreshold::new(queues());
        let j = job(600, 60, 1);
        let d = factory.with_ctx(SimTime::from_minutes(600), 0, 1, |ctx| {
            policy.decide(&j, ctx)
        });
        assert_eq!(
            d.planned_start(),
            SimTime::from_minutes(600) + Minutes::from_hours(6)
        );
    }
}
