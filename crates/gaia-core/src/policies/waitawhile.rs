//! The Wait Awhile suspend-resume baseline (Wiesner et al.,
//! Middleware'21; §6.1 baseline 3).

use gaia_sim::{Decision, SchedulerContext, SegmentPlan};
use gaia_workload::{Job, QueueSet};

use super::BatchPolicy;

/// The strongest carbon-aware baseline: knows each job's **exact** length
/// `J`, and executes it in suspend-resume fashion across the `J` lowest
/// carbon-intensity slots within the deadline `t + J + W` (§6.1: "The
/// policy schedules the workload by selecting time slots summing to J
/// with the lowest carbon intensity within this deadline, which we set as
/// J + W").
///
/// Wait Awhile achieves the lowest carbon emissions of all policies in
/// the paper, at the price of the longest completion times (Figure 8) and
/// — in hybrid clusters — the highest costs, because its fragmented
/// demand ruins reserved-instance utilization (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitAwhile {
    queues: QueueSet,
}

impl WaitAwhile {
    /// Creates the policy with the given queue configuration.
    pub fn new(queues: QueueSet) -> Self {
        WaitAwhile { queues }
    }
}

impl BatchPolicy for WaitAwhile {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let wait = self.queues.max_wait_for(job);
        let horizon = job.length + wait;
        // Greedily pick the greenest slots summing to exactly J. The
        // trace-backed view guarantees the slots cover the job.
        let slots = super::greenest_slots(ctx, horizon, job.length);
        Decision::run_segments(SegmentPlan::new(slots))
    }

    fn name(&self) -> &'static str {
        "Wait Awhile"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::{Minutes, SimTime};

    #[test]
    fn picks_exactly_the_cheapest_slots() {
        // 2-hour job, W_short = 6 h: deadline spans 8 h. The two cheapest
        // hours are 2 and 5.
        let factory =
            CtxFactory::new(&[300.0, 250.0, 40.0, 400.0, 500.0, 50.0, 600.0, 700.0, 800.0]);
        let mut policy = WaitAwhile::new(QueueSet::paper_defaults());
        let j = job(0, 120, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("suspend-resume plan");
        assert_eq!(
            plan.segments,
            vec![
                (SimTime::from_hours(2), Minutes::from_hours(1)),
                (SimTime::from_hours(5), Minutes::from_hours(1)),
            ]
        );
    }

    #[test]
    fn contiguous_valley_yields_single_segment() {
        // Short job (W = 6 h, horizon 8 h) with a two-hour valley: the
        // two picks merge into one contiguous segment.
        let factory =
            CtxFactory::new(&[500.0, 10.0, 20.0, 400.0, 500.0, 500.0, 500.0, 500.0, 500.0]);
        let mut policy = WaitAwhile::new(QueueSet::paper_defaults());
        let j = job(0, 120, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![(SimTime::from_hours(1), Minutes::from_hours(2))]
        );
    }

    #[test]
    fn plan_total_equals_exact_length() {
        let factory =
            CtxFactory::new(&[300.0, 100.0, 200.0, 50.0, 400.0, 120.0, 80.0, 90.0, 500.0]);
        let mut policy = WaitAwhile::new(QueueSet::paper_defaults());
        let j = job(0, 95, 1); // non-hour-aligned length
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.segments().expect("plan").total(), Minutes::new(95));
    }

    #[test]
    fn deadline_is_length_plus_wait() {
        // The cheapest hours sit just past J + W; they must be ignored.
        let mut hourly = vec![500.0; 24];
        hourly[1] = 400.0; // best in-window hour
        hourly[8] = 1.0; // J + W = 1 + 6 = 7 h -> hour 8 is out of reach
        let factory = CtxFactory::new(&hourly);
        let mut policy = WaitAwhile::new(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![(SimTime::from_hours(1), Minutes::from_hours(1))]
        );
    }

    #[test]
    fn mid_hour_arrival_uses_partial_first_slot() {
        // Arrive at 00:30 with a flat-cheap hour 0: the leading partial
        // slot (30 min) is usable.
        let factory = CtxFactory::new(&[10.0, 500.0, 500.0, 500.0, 500.0, 500.0, 20.0, 500.0]);
        let mut policy = WaitAwhile::new(QueueSet::paper_defaults());
        let j = job(30, 90, 1);
        let d = factory.with_ctx(SimTime::from_minutes(30), 0, 0, |ctx| {
            policy.decide(&j, ctx)
        });
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![
                (SimTime::from_minutes(30), Minutes::new(30)),
                (SimTime::from_hours(6), Minutes::from_hours(1)),
            ]
        );
    }
}
