//! N-queue (tiered) variants of the GAIA policies — the §4.2 claim that
//! "our policies can be extended to an arbitrary number of queues",
//! realized over [`QueueLadder`].

use gaia_sim::{Decision, SchedulerContext};
use gaia_time::Minutes;
use gaia_workload::ladder::QueueLadder;
use gaia_workload::Job;

use super::{best_start_by, BatchPolicy, DEFAULT_SCAN_STEP};

/// Carbon-Time over an arbitrary queue ladder: each rung contributes its
/// own waiting bound `W_i` and historical average `J_avg,i`, and the CST
/// objective is evaluated per rung exactly as in the two-queue policy
/// (§4.2.2).
///
/// With [`QueueLadder::paper_three_tier`] this realizes §7's tuning
/// advice natively: medium (3–12 h) jobs — the ones with "the most
/// potential to reduce carbon emissions" — get their own 12-hour window
/// instead of inheriting either extreme.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredCarbonTime {
    ladder: QueueLadder,
    step: Minutes,
}

impl TieredCarbonTime {
    /// Creates the policy over the given queue ladder.
    pub fn new(ladder: QueueLadder) -> Self {
        TieredCarbonTime {
            ladder,
            step: DEFAULT_SCAN_STEP,
        }
    }

    /// Overrides the start-time scan granularity.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn with_scan_step(mut self, step: Minutes) -> Self {
        assert!(!step.is_zero(), "scan step must be positive");
        self.step = step;
        self
    }

    /// The ladder in use.
    pub fn ladder(&self) -> &QueueLadder {
        &self.ladder
    }
}

impl BatchPolicy for TieredCarbonTime {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let rung = self.ladder.classify(job);
        let wait = self.ladder.max_wait(rung);
        let estimate = self.ladder.avg_length(rung);
        let immediate = ctx.forecast.integral(ctx.now, estimate);
        let now = ctx.now;
        let start = best_start_by(now, wait, self.step, |t| {
            let saving = immediate - ctx.forecast.integral(t, estimate);
            saving / (t - now + estimate).as_hours_f64()
        });
        Decision::run_at(start)
    }

    fn name(&self) -> &'static str {
        "Tiered-Carbon-Time"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::SimTime;
    use gaia_workload::WorkloadTrace;

    fn ladder_with_averages() -> QueueLadder {
        // Learn averages so the estimates are meaningful per rung.
        let jobs: Vec<gaia_workload::Job> = [60u64, 90, 300, 600, 1500, 2000]
            .iter()
            .map(|&len| job(0, len, 1))
            .collect();
        QueueLadder::paper_three_tier().with_averages_from(&WorkloadTrace::from_jobs(jobs))
    }

    #[test]
    fn medium_jobs_get_the_medium_window() {
        // Valley at hour 10: beyond the short rung's 6-hour window but
        // inside the medium rung's 12-hour one.
        let mut hourly = vec![500.0; 48];
        hourly[10] = 10.0;
        let factory = CtxFactory::new(&hourly);
        let mut policy = TieredCarbonTime::new(ladder_with_averages());
        let short = job(0, 60, 1);
        let medium = job(0, 300, 1);
        let d_short = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&short, ctx));
        let d_medium = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&medium, ctx));
        // The short job's 6-hour window cannot reach hour 10, so with a
        // flat landscape inside its window it runs immediately.
        assert_eq!(d_short.planned_start(), SimTime::ORIGIN);
        // The medium rung's 12-hour window can: the chosen start waits
        // and its estimated execution window covers the valley.
        let start = d_medium.planned_start();
        let estimate = policy.ladder().avg_length(1);
        assert!(
            start > SimTime::ORIGIN,
            "medium job must wait for the valley"
        );
        assert!(start <= SimTime::from_hours(10));
        assert!(
            start + estimate > SimTime::from_hours(10),
            "window covers the valley"
        );
    }

    #[test]
    fn two_rung_ladder_matches_carbon_time() {
        use crate::policies::CarbonTime;
        use gaia_workload::QueueSet;
        // A ladder converted from the paper's two queues must make the
        // same decisions as the two-queue CarbonTime.
        let jobs: Vec<gaia_workload::Job> = [60u64, 90, 300, 600]
            .iter()
            .map(|&len| job(0, len, 1))
            .collect();
        let set = QueueSet::paper_defaults().with_averages_from(&jobs);
        let factory =
            CtxFactory::new(&[500.0, 80.0, 450.0, 400.0, 40.0, 350.0, 300.0, 250.0, 200.0]);
        let mut tiered = TieredCarbonTime::new(QueueLadder::from(set));
        let mut flat = CarbonTime::new(set);
        for len in [30u64, 90, 150, 400] {
            let j = job(0, len, 1);
            let a = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| tiered.decide(&j, ctx));
            let b = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| flat.decide(&j, ctx));
            assert_eq!(a.planned_start(), b.planned_start(), "len {len}");
        }
    }

    #[test]
    fn catch_all_rung_handles_oversized_jobs() {
        let factory = CtxFactory::new(&[100.0; 120]);
        let mut policy = TieredCarbonTime::new(QueueLadder::paper_three_tier());
        let huge = job(0, 10_000, 1); // beyond every cap
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&huge, ctx));
        assert_eq!(d.planned_start(), SimTime::ORIGIN); // flat trace: run now
    }
}
