//! The Ecovisor greedy-threshold baseline (Souza et al., ASPLOS'23;
//! §6.1 baseline 4).

use gaia_sim::{Decision, SchedulerContext, SegmentPlan};
use gaia_time::{Minutes, SimTime, MINUTES_PER_HOUR};
use gaia_workload::{Job, QueueSet};

use super::BatchPolicy;

/// Suspend-resume execution driven by a carbon threshold: the job runs
/// whenever the current carbon intensity is below the **30th percentile
/// of the next 24 hours** (computed at arrival) and pauses otherwise.
/// "To ensure compliance with our waiting limits, the job is executed to
/// completion after waiting for the allowed time" (§6.1) — once the job
/// has spent its queue's maximum waiting time `W` paused, it runs
/// continuously to completion regardless of carbon.
///
/// Ecovisor needs no job-length knowledge: it reacts slot by slot. (The
/// plan is materialized up front here, which is behaviourally identical
/// under the paper's perfect-forecast assumption.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ecovisor {
    queues: QueueSet,
    quantile: f64,
}

impl Ecovisor {
    /// The paper's threshold quantile.
    pub const DEFAULT_QUANTILE: f64 = 0.30;

    /// Creates the policy with the paper's 30th-percentile threshold.
    pub fn new(queues: QueueSet) -> Self {
        Ecovisor {
            queues,
            quantile: Self::DEFAULT_QUANTILE,
        }
    }

    /// Overrides the threshold quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `quantile` is in `[0, 1]`.
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&quantile),
            "quantile must be in [0, 1]"
        );
        self.quantile = quantile;
        self
    }
}

impl BatchPolicy for Ecovisor {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let threshold = ctx
            .forecast
            .quantile(Minutes::from_hours(24), self.quantile);
        let pause_budget = self.queues.max_wait_for(job);
        let mut segments: Vec<(SimTime, Minutes)> = Vec::new();
        let mut remaining = job.length;
        let mut paused = Minutes::ZERO;
        let mut cursor = ctx.now;
        while !remaining.is_zero() {
            // Once the pause budget is exhausted, run to completion.
            let must_run = paused >= pause_budget;
            let run_here = must_run || ctx.forecast.at(cursor) <= threshold;
            // Advance to the next hour boundary (or less, if the job
            // finishes or the pause budget expires first).
            let to_boundary =
                Minutes::new(MINUTES_PER_HOUR - (cursor.as_minutes() % MINUTES_PER_HOUR));
            if run_here {
                let run = to_boundary.min(remaining);
                match segments.last_mut() {
                    Some((s, l)) if *s + *l == cursor => *l += run,
                    _ => segments.push((cursor, run)),
                }
                remaining -= run;
                cursor += run;
            } else {
                // Pause, but never beyond the remaining budget.
                let pause = to_boundary.min(pause_budget - paused);
                paused += pause;
                cursor += pause;
            }
        }
        Decision::run_segments(SegmentPlan::new(segments))
    }

    fn name(&self) -> &'static str {
        "Ecovisor"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;

    /// 24-hour trace whose 30th percentile sits at 130: hours valued 100
    /// and 120 are "green", the rest are not.
    fn duck_trace() -> Vec<f64> {
        let mut hourly = vec![500.0; 24];
        for h in [2usize, 3, 4, 10, 11, 12, 13] {
            hourly[h] = 100.0;
        }
        hourly[5] = 120.0;
        hourly
    }

    #[test]
    fn runs_only_in_sub_threshold_slots() {
        let factory = CtxFactory::new(&duck_trace());
        let mut policy = Ecovisor::new(QueueSet::paper_defaults());
        let j = job(0, 120, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("plan");
        // First green slots are hours 2 and 3.
        assert_eq!(
            plan.segments,
            vec![(SimTime::from_hours(2), Minutes::from_hours(2))]
        );
    }

    #[test]
    fn forced_run_after_pause_budget() {
        // One hour (20) is far cheaper than everything else, and the
        // quantile-0 threshold equals it, so no slot a *short* job can
        // reach qualifies: the job pauses through its whole 6-hour budget
        // and is then forced to run.
        let mut hourly = vec![500.0; 48];
        hourly[20] = 1.0;
        let factory = CtxFactory::new(&hourly);
        let mut policy = Ecovisor::new(QueueSet::paper_defaults()).with_quantile(0.0);
        let j = job(0, 60, 1); // short: pause budget 6 h
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("plan");
        // Pauses 6 h (budget), then forced to run to completion.
        assert_eq!(
            plan.segments,
            vec![(SimTime::from_hours(6), Minutes::from_hours(1))]
        );
    }

    #[test]
    fn constant_trace_runs_immediately() {
        // Threshold equals the constant, so every slot qualifies.
        let factory = CtxFactory::new(&[200.0; 48]);
        let mut policy = Ecovisor::new(QueueSet::paper_defaults());
        let j = job(15, 90, 1);
        let d = factory.with_ctx(SimTime::from_minutes(15), 0, 0, |ctx| {
            policy.decide(&j, ctx)
        });
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![(SimTime::from_minutes(15), Minutes::new(90))]
        );
    }

    #[test]
    fn plan_total_always_equals_length() {
        let factory = CtxFactory::new(&duck_trace());
        let mut policy = Ecovisor::new(QueueSet::paper_defaults());
        for len in [25u64, 60, 95, 240, 600] {
            let j = job(7, len, 1);
            let d = factory.with_ctx(SimTime::from_minutes(7), 0, 0, |ctx| policy.decide(&j, ctx));
            assert_eq!(d.segments().expect("plan").total(), Minutes::new(len));
        }
    }

    #[test]
    fn long_jobs_get_the_long_pause_budget() {
        // A long job (24 h pause budget) can wait for the hour-20 valley,
        // run its single green hour there, then pauses again until the
        // budget runs dry at hour 25 and is forced to finish.
        let mut hourly = vec![500.0; 72];
        hourly[20] = 1.0;
        let factory = CtxFactory::new(&hourly);
        let mut policy = Ecovisor::new(QueueSet::paper_defaults()).with_quantile(0.0);
        let j = job(0, 240, 1); // long job: pause budget 24 h
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        let plan = d.segments().expect("plan");
        assert_eq!(
            plan.segments,
            vec![
                (SimTime::from_hours(20), Minutes::from_hours(1)),
                (SimTime::from_hours(25), Minutes::from_hours(3)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_bad_quantile() {
        let _ = Ecovisor::new(QueueSet::paper_defaults()).with_quantile(1.5);
    }
}
