//! The Lowest Carbon Slot policy (§4.2.1).

use gaia_sim::{Decision, SchedulerContext};
use gaia_time::Minutes;
use gaia_workload::{Job, QueueSet};

use super::{best_start_by, effective_scan_step, BatchPolicy, DEFAULT_SCAN_STEP};

/// Starts each job at the single lowest-carbon-intensity slot within its
/// waiting window `[t, t + W)` — without knowing anything about the job's
/// length (§4.2.1, "Lowest-Slot").
///
/// Because only the *starting* slot's intensity is considered, long jobs
/// may run straight through later carbon peaks; that blindness is exactly
/// what [`LowestWindow`](super::LowestWindow) fixes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowestSlot {
    queues: QueueSet,
    step: Minutes,
}

impl LowestSlot {
    /// Creates the policy with the paper's default scan granularity.
    pub fn new(queues: QueueSet) -> Self {
        LowestSlot {
            queues,
            step: DEFAULT_SCAN_STEP,
        }
    }

    /// Overrides the start-time scan granularity (slot-size ablation).
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn with_scan_step(mut self, step: Minutes) -> Self {
        assert!(!step.is_zero(), "scan step must be positive");
        self.step = step;
        self
    }
}

impl BatchPolicy for LowestSlot {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let wait = self.queues.max_wait_for(job);
        let step = effective_scan_step(self.step, ctx);
        // Minimize the CI of the starting instant (maximize its negation).
        let start = best_start_by(ctx.now, wait, step, |t| -ctx.forecast.at(t));
        Decision::run_at(start)
    }

    fn name(&self) -> &'static str {
        "Lowest-Slot"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::SimTime;

    #[test]
    fn picks_the_greenest_slot_in_window() {
        // Valley at hour 3; short job (W = 6 h) can reach it.
        let factory = CtxFactory::new(&[300.0, 250.0, 200.0, 50.0, 220.0, 260.0, 280.0, 290.0]);
        let mut policy = LowestSlot::new(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(3));
    }

    #[test]
    fn ignores_job_length_entirely() {
        // Hour 3 is the cheapest *slot*, even though a 5-hour job starting
        // there would run straight into the enormous hour-5 peak.
        let factory = CtxFactory::new(&[
            300.0, 250.0, 200.0, 50.0, 220.0, 9000.0, 9000.0, 9000.0, 100.0,
        ]);
        let mut policy = LowestSlot::new(QueueSet::paper_defaults());
        let long = job(0, 300, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&long, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(3));
    }

    #[test]
    fn respects_waiting_window() {
        // The global valley (hour 30) is outside the short queue's 6-hour
        // window; the policy must settle for the best slot inside it.
        let mut hourly = vec![500.0; 48];
        hourly[4] = 400.0;
        hourly[30] = 1.0;
        let factory = CtxFactory::new(&hourly);
        let mut policy = LowestSlot::new(QueueSet::paper_defaults());
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(4));
    }

    #[test]
    fn flat_trace_starts_immediately() {
        let factory = CtxFactory::new(&[100.0; 48]);
        let mut policy = LowestSlot::new(QueueSet::paper_defaults());
        let j = job(90, 60, 1);
        let d = factory.with_ctx(SimTime::from_minutes(90), 0, 0, |ctx| {
            policy.decide(&j, ctx)
        });
        assert_eq!(d.planned_start(), SimTime::from_minutes(90));
    }

    #[test]
    #[should_panic(expected = "scan step")]
    fn rejects_zero_step() {
        let _ = LowestSlot::new(QueueSet::paper_defaults()).with_scan_step(Minutes::ZERO);
    }
}
