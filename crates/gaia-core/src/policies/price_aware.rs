//! Energy-price-aware scheduling — §7's private-cloud scenario: "this
//! trade-off also presents itself in private clouds due to dynamic
//! energy pricing. Thus, as the compute cost varies throughout the day,
//! a carbon-aware schedule might not comply with a cost-aware one."

use gaia_carbon::price::PriceTrace;
use gaia_sim::{Decision, SchedulerContext};
use gaia_time::{HourlySlots, Minutes, SimTime};
use gaia_workload::{Job, QueueSet};

use super::{best_start_by, BatchPolicy, DEFAULT_SCAN_STEP};
use crate::JobLengthKnowledge;

/// Schedules each job into the window minimizing a weighted blend of
/// energy **price** and **carbon**:
///
/// ```text
/// score(t_s) = (1 − λ) · price(t_s, J) / p̄  +  λ · carbon(t_s, J) / c̄
/// ```
///
/// with both integrals normalized by their trace means so `λ` (the
/// *carbon weight*) interpolates meaningfully: `λ = 0` is the private
/// cloud's pure cost optimizer, `λ = 1` is Lowest-Window. On days where
/// the price and carbon valleys align (paper Figure 20, day one) every
/// `λ` agrees; on conflicting days (day two) `λ` picks the side.
///
/// The policy owns its price series (the scheduler context only carries
/// carbon forecasts), mirroring how a private-cloud operator would feed
/// a day-ahead market price signal into the scheduler.
#[derive(Debug, Clone)]
pub struct PriceAware {
    queues: QueueSet,
    price: PriceTrace,
    mean_price: f64,
    carbon_weight: f64,
    knowledge: JobLengthKnowledge,
    step: Minutes,
    mean_carbon: f64,
}

impl PriceAware {
    /// Creates the policy with the given price series and carbon weight
    /// `λ ∈ [0, 1]`. `mean_carbon` normalizes the carbon term; pass the
    /// carbon trace's mean.
    ///
    /// # Panics
    ///
    /// Panics if `carbon_weight` is outside `[0, 1]` or either mean
    /// normalizer would be non-positive.
    pub fn new(queues: QueueSet, price: PriceTrace, carbon_weight: f64, mean_carbon: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&carbon_weight),
            "carbon weight must be in [0, 1]"
        );
        assert!(mean_carbon > 0.0, "mean carbon must be positive");
        let mean_price = price.mean();
        assert!(mean_price > 0.0, "mean price must be positive");
        PriceAware {
            queues,
            price,
            mean_price,
            carbon_weight,
            knowledge: JobLengthKnowledge::QueueAverage,
            step: DEFAULT_SCAN_STEP,
            mean_carbon,
        }
    }

    /// Overrides the job-length knowledge model.
    pub fn with_knowledge(mut self, knowledge: JobLengthKnowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Price integral over `[start, start + len)`, $/MWh·hours.
    fn price_integral(&self, start: SimTime, len: Minutes) -> f64 {
        HourlySlots::spanning(start, len)
            .map(|s| self.price.price_at_hour(s.hour) * s.fraction())
            .sum()
    }
}

impl BatchPolicy for PriceAware {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        let wait = self.queues.max_wait_for(job);
        let estimate = self.knowledge.estimate(job, &self.queues);
        let hours = estimate.as_hours_f64();
        let start = best_start_by(ctx.now, wait, self.step, |t| {
            let price_term = self.price_integral(t, estimate) / (self.mean_price * hours);
            let carbon_term = ctx.forecast.integral(t, estimate) / (self.mean_carbon * hours);
            -((1.0 - self.carbon_weight) * price_term + self.carbon_weight * carbon_term)
        });
        Decision::run_at(start)
    }

    fn name(&self) -> &'static str {
        "Price-Aware"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;

    /// Price cheap at hour 2, carbon cheap at hour 5 — a conflicting day.
    fn conflicting_setup() -> (CtxFactory, PriceTrace) {
        let carbon = CtxFactory::new(&[400.0, 400.0, 390.0, 400.0, 400.0, 50.0, 400.0, 400.0]);
        let price = PriceTrace::from_hourly(vec![80.0, 80.0, 10.0, 80.0, 80.0, 78.0, 80.0, 80.0]);
        (carbon, price)
    }

    #[test]
    fn pure_price_weight_chases_the_price_valley() {
        let (factory, price) = conflicting_setup();
        let mut policy = PriceAware::new(QueueSet::paper_defaults(), price, 0.0, 350.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(2));
    }

    #[test]
    fn pure_carbon_weight_chases_the_carbon_valley() {
        let (factory, price) = conflicting_setup();
        let mut policy = PriceAware::new(QueueSet::paper_defaults(), price, 1.0, 350.0)
            .with_knowledge(JobLengthKnowledge::Exact);
        let j = job(0, 60, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
        assert_eq!(d.planned_start(), SimTime::from_hours(5));
    }

    #[test]
    fn aligned_valleys_need_no_trade_off() {
        // Figure 20's first day: both valleys at hour 3.
        let carbon = CtxFactory::new(&[400.0, 400.0, 400.0, 50.0, 400.0, 400.0, 400.0, 400.0]);
        let price = PriceTrace::from_hourly(vec![80.0, 80.0, 80.0, 10.0, 80.0, 80.0, 80.0, 80.0]);
        for weight in [0.0, 0.5, 1.0] {
            let mut policy =
                PriceAware::new(QueueSet::paper_defaults(), price.clone(), weight, 350.0)
                    .with_knowledge(JobLengthKnowledge::Exact);
            let j = job(0, 60, 1);
            let d = carbon.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx));
            assert_eq!(d.planned_start(), SimTime::from_hours(3), "weight {weight}");
        }
    }

    #[test]
    fn intermediate_weight_interpolates() {
        // Price valley is proportionally deeper (10/80 vs 50/400 == equal
        // relative depth -> adjust): make the carbon valley shallower so
        // a low carbon weight prefers price and a high one prefers carbon.
        let carbon = CtxFactory::new(&[400.0, 400.0, 390.0, 400.0, 400.0, 200.0, 400.0, 400.0]);
        let price = PriceTrace::from_hourly(vec![80.0, 80.0, 10.0, 80.0, 80.0, 78.0, 80.0, 80.0]);
        let j = job(0, 60, 1);
        let run = |weight: f64| {
            let mut policy =
                PriceAware::new(QueueSet::paper_defaults(), price.clone(), weight, 350.0)
                    .with_knowledge(JobLengthKnowledge::Exact);
            carbon
                .with_ctx(SimTime::ORIGIN, 0, 0, |ctx| policy.decide(&j, ctx))
                .planned_start()
        };
        assert_eq!(run(0.1), SimTime::from_hours(2), "mostly price-driven");
        assert_eq!(run(0.9), SimTime::from_hours(5), "mostly carbon-driven");
    }

    #[test]
    #[should_panic(expected = "carbon weight")]
    fn rejects_out_of_range_weight() {
        let price = PriceTrace::from_hourly(vec![10.0]);
        let _ = PriceAware::new(QueueSet::paper_defaults(), price, 1.5, 100.0);
    }
}
