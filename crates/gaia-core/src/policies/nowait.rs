//! The carbon- and cost-agnostic NoWait baseline.

use gaia_sim::{Decision, SchedulerContext};
use gaia_workload::Job;

use super::BatchPolicy;

/// Runs every job the moment it arrives (§6.1 baseline 1).
///
/// NoWait is the carbon- and cost-agnostic FCFS baseline all of the
/// paper's normalized metrics are computed against: highest carbon, zero
/// queueing delay.
///
/// # Examples
///
/// ```
/// use gaia_core::{GaiaScheduler, NoWait};
///
/// let scheduler = GaiaScheduler::new(NoWait::new());
/// assert_eq!(scheduler.name(), "NoWait");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoWait(());

impl NoWait {
    /// Creates the policy.
    pub fn new() -> Self {
        NoWait(())
    }
}

impl BatchPolicy for NoWait {
    fn decide(&mut self, job: &Job, _ctx: &SchedulerContext<'_>) -> Decision {
        Decision::run_at(job.arrival)
    }

    fn name(&self) -> &'static str {
        "NoWait"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_time::SimTime;

    #[test]
    fn always_starts_at_arrival() {
        let factory = CtxFactory::new(&[500.0, 1.0, 1.0]);
        let mut policy = NoWait::new();
        let j = job(30, 60, 1);
        let decision = factory.with_ctx(SimTime::from_minutes(30), 0, 0, |ctx| {
            policy.decide(&j, ctx)
        });
        // Even though hour 1 is far greener, NoWait starts immediately.
        assert_eq!(decision.planned_start(), SimTime::from_minutes(30));
        assert!(!decision.is_opportunistic());
        assert!(!decision.uses_spot());
        assert!(decision.segments().is_none());
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(NoWait::new().name(), "NoWait");
    }
}
