//! The Carbon-Scale policy family — elastic scaling against the
//! forecast, after CarbonScaler (Hanafy et al., SoCC '23): run wider in
//! green hours, narrower or not at all in dirty ones.

use gaia_sim::{Decision, ElasticPlan, ElasticSegment, SchedulerContext};
use gaia_time::{Minutes, SimTime};
use gaia_workload::elastic::ElasticProfile;
use gaia_workload::{Job, QueueSet};

use super::BatchPolicy;

/// Plans an elastic (variable-width) execution that minimizes carbon by
/// greedy marginal allocation.
///
/// The job's serial length `J` becomes a *work* budget (`J × 1000`
/// milli-minutes). Each hourly slot in the window `[t, t + J + W)` can
/// host width increments; the `k`-th worker added to a slot with
/// forecast intensity `CI` buys `marginal(k)` milli-minutes of work per
/// wall minute at a carbon price proportional to `CI`. The policy
/// repeatedly takes the cheapest available increment — lowest
/// `CI / marginal(k)` — until the budget is covered, then trims the
/// surplus off the latest slots so the job finishes as early as the
/// chosen allocation allows.
///
/// Diminishing marginal throughput (enforced by
/// [`gaia_workload::elastic::SpeedupLadder`]) makes the greedy exchange
/// argument exact for this relaxation: increments are independent, and
/// their prices per unit of work are what the heap orders.
///
/// Like [`WaitAwhile`](super::WaitAwhile), the policy requires exact job
/// lengths — a work budget cannot be covered by estimate. It never uses
/// spot or opportunistic starts on its own; the
/// [`GaiaScheduler`](crate::GaiaScheduler) wrappers layer those on.
///
/// # Examples
///
/// ```
/// use gaia_core::CarbonScale;
/// use gaia_workload::elastic::{ElasticProfile, ScalingCurve};
/// use gaia_workload::QueueSet;
///
/// // Near-perfect scaling up to 4 workers.
/// let profile = ElasticProfile::new(ScalingCurve::amdahl(0.01), 4);
/// let policy = CarbonScale::new(QueueSet::paper_defaults()).with_profile(profile);
/// assert_eq!(policy.profile().max_width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonScale {
    queues: QueueSet,
    profile: ElasticProfile,
}

/// Wall length of the planning slots Carbon-Scale allocates over.
const SLOT: Minutes = Minutes::new(60);

impl CarbonScale {
    /// Creates the policy with the default elasticity profile
    /// (Amdahl, 5% serial fraction, widths up to 8).
    pub fn new(queues: QueueSet) -> Self {
        CarbonScale {
            queues,
            profile: ElasticProfile::default(),
        }
    }

    /// Overrides the elasticity profile the policy plans against.
    pub fn with_profile(mut self, profile: ElasticProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The elasticity profile in use.
    pub fn profile(&self) -> &ElasticProfile {
        &self.profile
    }

    /// Greedy marginal allocation over hourly slots; see the type docs.
    fn plan(&self, job: &Job, ctx: &SchedulerContext<'_>) -> ElasticPlan {
        let ladder = self.profile.ladder();
        let max_width = self.profile.max_width();
        let horizon = job.length + self.queues.max_wait_for(job);
        let need_milli = job.length.as_minutes() * 1000;

        // Slot grid anchored at `now`; the tail slot may be partial.
        let mut slots: Vec<(SimTime, Minutes, f64)> = Vec::new();
        let mut t = ctx.now;
        let end = ctx.now + horizon;
        while t < end {
            let len = SLOT.min(end.saturating_since(t));
            slots.push((t, len, ctx.forecast.integral(t, len)));
            t += len;
        }
        let mut widths = vec![0u32; slots.len()];

        // Cheapest-increment loop. `CI / marginal` is independent of the
        // slot length (carbon and work both scale with it), so the
        // integral serves directly as the carbon price and
        // `marginal × len` as the work bought. Ties break toward the
        // earliest slot, keeping the plan deterministic.
        let mut covered: u64 = 0;
        while covered < need_milli {
            let mut best: Option<(f64, usize)> = None;
            for (i, &(_, _, integral)) in slots.iter().enumerate() {
                if widths[i] >= max_width {
                    continue;
                }
                let marginal = ladder.marginal_milli(widths[i] + 1);
                if marginal == 0 {
                    continue;
                }
                let price = integral / f64::from(marginal);
                if best.is_none_or(|(b, _)| price.total_cmp(&b).is_lt()) {
                    best = Some((price, i));
                }
            }
            // The width-1 horizon alone covers `J + W ≥ J`, so an
            // increment always exists before the budget is met.
            let (_, i) = best.expect("work budget exceeds elastic capacity");
            widths[i] += 1;
            covered += u64::from(ladder.marginal_milli(widths[i])) * slots[i].1.as_minutes();
        }

        // Trim the surplus off the latest used slots: shrink (or drop)
        // from the back while coverage holds, so completion time never
        // pays for work the greedy pass over-bought.
        let mut used: Vec<(SimTime, Minutes, u32)> = slots
            .iter()
            .zip(&widths)
            .filter(|(_, &w)| w > 0)
            .map(|(&(start, len, _), &w)| (start, len, w))
            .collect();
        let mut excess = covered - need_milli;
        while let Some(&(start, len, width)) = used.last() {
            let speedup = u64::from(ladder.speedup_milli(width));
            let slot_work = speedup * len.as_minutes();
            if slot_work <= excess {
                excess -= slot_work;
                used.pop();
            } else {
                let spare_minutes = excess / speedup;
                if spare_minutes > 0 {
                    let last = used.last_mut().expect("just peeked");
                    last.1 = len.saturating_sub(Minutes::new(spare_minutes));
                    debug_assert!(!last.1.is_zero());
                }
                let _ = (start, width);
                break;
            }
        }

        // Merge wall-adjacent equal-width slots so the engine sees one
        // slice (and one width change) per sustained width.
        let mut segments: Vec<ElasticSegment> = Vec::new();
        for (start, len, width) in used {
            let work_milli = u64::from(ladder.speedup_milli(width)) * len.as_minutes();
            match segments.last_mut() {
                Some(prev) if prev.width == width && prev.end() == start => {
                    prev.len += len;
                    prev.work_milli += work_milli;
                }
                _ => segments.push(ElasticSegment {
                    start,
                    len,
                    width,
                    work_milli,
                }),
            }
        }
        ElasticPlan::new(segments)
    }
}

impl BatchPolicy for CarbonScale {
    fn decide(&mut self, job: &Job, ctx: &SchedulerContext<'_>) -> Decision {
        Decision::run_elastic(self.plan(job, ctx))
    }

    fn name(&self) -> &'static str {
        "Carbon-Scale"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{job, CtxFactory};
    use super::*;
    use gaia_workload::elastic::ScalingCurve;

    fn policy() -> CarbonScale {
        CarbonScale::new(QueueSet::paper_defaults())
    }

    fn total_work(plan: &ElasticPlan) -> u64 {
        plan.total_work_milli()
    }

    #[test]
    fn plan_always_covers_the_work_budget() {
        let factory =
            CtxFactory::new(&[300.0, 100.0, 200.0, 50.0, 400.0, 120.0, 80.0, 90.0, 500.0]);
        let mut p = policy();
        for len in [25u64, 60, 95, 240] {
            let j = job(10, len, 1);
            let d = factory.with_ctx(SimTime::from_minutes(10), 0, 0, |ctx| p.decide(&j, ctx));
            let plan = d.elastic().expect("elastic plan");
            assert!(
                total_work(plan) >= len * 1000,
                "len {len}: work {} < {}",
                total_work(plan),
                len * 1000
            );
        }
    }

    #[test]
    fn green_valley_attracts_the_width() {
        // Hour 2 is far greener than everything else: with strong
        // scaling, the whole job should compress into it.
        let factory = CtxFactory::new(&[500.0, 500.0, 10.0, 500.0, 500.0, 500.0, 500.0, 500.0]);
        let mut p = policy().with_profile(ElasticProfile::new(ScalingCurve::amdahl(0.0), 8));
        let j = job(0, 180, 1); // 3 serial hours; width 3 fits in one slot
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| p.decide(&j, ctx));
        let plan = d.elastic().expect("elastic plan");
        assert_eq!(plan.segments().len(), 1);
        let seg = plan.segments()[0];
        assert_eq!(seg.start, SimTime::from_hours(2));
        assert_eq!(seg.width, 3);
        assert_eq!(seg.len, Minutes::new(60));
    }

    #[test]
    fn serial_job_degenerates_to_greenest_slots() {
        // Width capped at 1: the plan is exactly a greenest-slots
        // suspend-resume schedule by another name.
        let factory = CtxFactory::new(&[300.0, 100.0, 400.0, 90.0, 500.0, 70.0, 600.0, 310.0]);
        let mut p = policy().with_profile(ElasticProfile::new(ScalingCurve::amdahl(1.0), 1));
        let j = job(0, 120, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| p.decide(&j, ctx));
        let plan = d.elastic().expect("elastic plan");
        for seg in plan.segments() {
            assert_eq!(seg.width, 1);
        }
        let wall: u64 = plan.segments().iter().map(|s| s.len.as_minutes()).sum();
        assert_eq!(wall, 120, "width-1 wall time equals the serial length");
    }

    #[test]
    fn flat_trace_widens_only_for_free() {
        // On a flat trace every slot costs the same per unit of work at
        // width 1; widening is only price-equal under perfect scaling.
        // With a serial fraction, widths beyond 1 are strictly more
        // expensive per unit of work and the greedy must not buy them.
        let factory = CtxFactory::new(&[250.0; 48]);
        let mut p = policy().with_profile(ElasticProfile::new(ScalingCurve::amdahl(0.2), 8));
        let j = job(0, 180, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| p.decide(&j, ctx));
        let plan = d.elastic().expect("elastic plan");
        for seg in plan.segments() {
            assert_eq!(seg.width, 1, "flat trace must not over-widen");
        }
    }

    #[test]
    fn trim_drops_over_bought_work() {
        let factory = CtxFactory::new(&[100.0, 90.0, 80.0, 70.0, 60.0, 50.0, 40.0, 30.0]);
        let mut p = policy();
        let j = job(0, 90, 1);
        let d = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| p.decide(&j, ctx));
        let plan = d.elastic().expect("elastic plan");
        let work = total_work(plan);
        assert!(work >= 90 * 1000);
        // Over-provision is bounded by one wall minute of the widest
        // slice (the trim's granularity), far below a full slot.
        let max_speedup: u64 = plan
            .segments()
            .iter()
            .map(|s| s.work_milli / s.len.as_minutes().max(1))
            .max()
            .unwrap_or(1000);
        assert!(
            work - 90 * 1000 <= max_speedup,
            "surplus {} exceeds one minute at the widest speedup {max_speedup}",
            work - 90 * 1000
        );
    }

    #[test]
    fn cheaper_carbon_than_carbon_time_on_jagged_traces() {
        use crate::policies::CarbonTime;
        use crate::JobLengthKnowledge;
        // Elastic scaling can exploit two disjoint green hours a single
        // uninterruptible run cannot.
        let hourly = [400.0, 50.0, 400.0, 50.0, 400.0, 400.0, 400.0, 400.0, 400.0];
        let factory = CtxFactory::new(&hourly);
        let j = job(0, 120, 1);
        let elastic = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| {
            policy()
                .with_profile(ElasticProfile::new(ScalingCurve::amdahl(0.0), 4))
                .decide(&j, ctx)
        });
        let once = factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| {
            CarbonTime::new(QueueSet::paper_defaults())
                .with_knowledge(JobLengthKnowledge::Exact)
                .decide(&j, ctx)
        });
        let elastic_carbon: f64 = elastic
            .elastic()
            .expect("plan")
            .segments()
            .iter()
            .map(|s| factory.trace().window_integral(s.start, s.len) * f64::from(s.width))
            .sum();
        let once_carbon = factory
            .trace()
            .window_integral(once.planned_start(), j.length);
        assert!(
            elastic_carbon <= once_carbon + 1e-9,
            "elastic {elastic_carbon} must not exceed uninterruptible {once_carbon}"
        );
    }
}
