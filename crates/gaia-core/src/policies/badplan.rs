//! Deliberately broken policy for fault-injection testing.

use gaia_sim::{Decision, SchedulerContext, SegmentPlan};
use gaia_time::Minutes;
use gaia_workload::Job;

use super::BatchPolicy;

/// A policy that always returns an invalid decision: a single-segment
/// plan one minute *longer* than the job.
///
/// It exists to exercise the failure path end to end — the engine must
/// reject the plan with a typed [`PolicyError::PlanLengthMismatch`]
/// (failing one sweep cell, not the process), and the audit/CLI layers
/// must surface it with a nonzero exit code. It is deliberately excluded
/// from [`BasePolicyKind::ALL`] so figure harnesses never run it by
/// accident.
///
/// [`PolicyError::PlanLengthMismatch`]: gaia_sim::PolicyError::PlanLengthMismatch
/// [`BasePolicyKind::ALL`]: crate::catalog::BasePolicyKind::ALL
#[derive(Debug, Default)]
pub struct BadPlan;

impl BadPlan {
    /// Creates the broken policy.
    pub fn new() -> Self {
        BadPlan
    }
}

impl BatchPolicy for BadPlan {
    fn decide(&mut self, job: &Job, _ctx: &SchedulerContext<'_>) -> Decision {
        Decision::run_segments(SegmentPlan::new(vec![(
            job.arrival,
            job.length + Minutes::new(1),
        )]))
    }

    fn name(&self) -> &'static str {
        "Bad-Plan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::{job, CtxFactory};
    use gaia_time::SimTime;

    #[test]
    fn plan_never_matches_the_job_length() {
        let factory = CtxFactory::new(&[100.0; 24]);
        factory.with_ctx(SimTime::ORIGIN, 0, 0, |ctx| {
            let job = job(0, 60, 1);
            let mut policy = BadPlan::new();
            let decision = policy.decide(&job, ctx);
            let plan = decision.segments().expect("segment plan");
            assert_eq!(plan.total(), Minutes::new(61));
            assert_ne!(plan.total(), job.length);
        });
    }
}
