//! The job-length knowledge model (§4.2.1, Table 1).

use gaia_time::Minutes;
use gaia_workload::{Job, QueueSet};
use serde::{Deserialize, Serialize};

/// How much a policy is allowed to know about a job's length.
///
/// The paper stresses that production schedulers often know only a coarse
/// bound: "a batch scheduler may not know the job length J prior to
/// execution and may only know a coarse upper bound based on the queue"
/// (§4.2.1). Its proposed policies therefore use the *historical
/// queue-wide average*; knowing the exact length is the privileged
/// assumption of the Wait Awhile baseline. Exposing the model as a
/// parameter enables the paper's sensitivity discussion (§6.4.1) and our
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum JobLengthKnowledge {
    /// Use the historical queue-wide average `J_avg` (the paper's
    /// realistic default for its proposed policies).
    #[default]
    QueueAverage,
    /// Use the queue's maximum length `J_max` (most conservative).
    QueueMax,
    /// Use the exact length (Wait Awhile's assumption).
    Exact,
}

impl JobLengthKnowledge {
    /// The length estimate a policy operating under this model uses for
    /// `job`.
    pub fn estimate(self, job: &Job, queues: &QueueSet) -> Minutes {
        match self {
            JobLengthKnowledge::QueueAverage => queues.avg_length(queues.classify(job)),
            JobLengthKnowledge::QueueMax => queues.max_length_for(job),
            JobLengthKnowledge::Exact => job.length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_time::SimTime;
    use gaia_workload::JobId;

    #[test]
    fn estimates_per_model() {
        let jobs = vec![
            Job::new(JobId(0), SimTime::ORIGIN, Minutes::new(60), 1),
            Job::new(JobId(0), SimTime::ORIGIN, Minutes::new(100), 1),
            Job::new(JobId(0), SimTime::ORIGIN, Minutes::new(600), 1),
        ];
        let queues = QueueSet::paper_defaults().with_averages_from(&jobs);
        let short_job = &jobs[0];
        assert_eq!(
            JobLengthKnowledge::Exact.estimate(short_job, &queues),
            Minutes::new(60)
        );
        assert_eq!(
            JobLengthKnowledge::QueueAverage.estimate(short_job, &queues),
            Minutes::new(80)
        );
        assert_eq!(
            JobLengthKnowledge::QueueMax.estimate(short_job, &queues),
            Minutes::from_hours(2)
        );
        let long_job = &jobs[2];
        assert_eq!(
            JobLengthKnowledge::QueueAverage.estimate(long_job, &queues),
            Minutes::new(600)
        );
    }

    #[test]
    fn default_is_queue_average() {
        assert_eq!(
            JobLengthKnowledge::default(),
            JobLengthKnowledge::QueueAverage
        );
    }
}
