//! # GAIA: carbon-, performance-, and cost-aware batch scheduling
//!
//! This crate implements the scheduling policies of *"Going Green for
//! Less Green: Optimizing the Cost of Reducing Cloud Carbon Emissions"*
//! (ASPLOS 2024): the paper's proposed policies, its baselines, and the
//! purchase-option wrappers that navigate the three-way trade-off between
//! carbon emissions, completion time, and dollar cost.
//!
//! ## Policy landscape (paper Table 1)
//!
//! | Policy | Knows job length | Carbon-aware | Performance-aware |
//! |---|---|---|---|
//! | [`NoWait`] | – | – | – |
//! | [`AllWaitThreshold`] | – | – | cost-aware |
//! | [`WaitAwhile`] | exact | ✓ | – |
//! | [`Ecovisor`] | – | ✓ | – |
//! | [`LowestSlot`] | – | ✓ | – |
//! | [`LowestWindow`] | queue average | ✓ | – |
//! | [`CarbonTime`] | queue average | ✓ | ✓ |
//!
//! The wrappers compose with any base policy through [`GaiaScheduler`]:
//! **RES-First** (work-conserving use of reserved instances, §4.2.3),
//! **Spot-First** (short jobs on discounted spot instances, §4.2.4), and
//! their combination **Spot-RES**.
//!
//! Two extension policies implement directions the paper sketches but
//! defers: [`CarbonTimeSuspend`] (suspend-resume Carbon-Time, §4.1
//! future work) and [`CarbonTax`] (monetizing carbon to collapse the
//! trade-off to cost-performance, §7).
//!
//! ## Quickstart
//!
//! ```
//! use gaia_carbon::{Region, synth::synthesize_region};
//! use gaia_core::{CarbonTime, GaiaScheduler};
//! use gaia_sim::{ClusterConfig, Simulation};
//! use gaia_workload::{QueueSet, synth::TraceFamily};
//!
//! let carbon = synthesize_region(Region::SouthAustralia, 42);
//! let trace = TraceFamily::AlibabaPai.week_long_1k(42);
//! let queues = QueueSet::paper_defaults().with_averages_from(trace.jobs());
//!
//! // The paper's RES-First-Carbon-Time on 9 reserved instances.
//! let mut scheduler =
//!     GaiaScheduler::new(CarbonTime::new(queues)).res_first();
//! let run = Simulation::new(ClusterConfig::default().with_reserved(9), &carbon)
//!     .runner(&trace, &mut scheduler)
//!     .execute()
//!     .expect("valid policy decisions");
//! assert!(run.report.totals.carbon_g > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod knowledge;
pub mod placement;
mod policies;
mod scheduler;

pub use knowledge::JobLengthKnowledge;
pub use policies::{
    AllWaitThreshold, BatchPolicy, CarbonScale, CarbonTax, CarbonTime, CarbonTimeSuspend, Ecovisor,
    LowestSlot, LowestWindow, NoWait, PriceAware, TieredCarbonTime, WaitAwhile,
};
pub use scheduler::{GaiaScheduler, SpotConfig};
