//! Property-based tests of the workload substrate.

use gaia_time::{Minutes, SimTime};
use gaia_workload::dist::{Exponential, LogNormal, Pareto, Sample, Truncated};
use gaia_workload::sample::SamplePipeline;
use gaia_workload::synth::TraceFamily;
use gaia_workload::{Job, JobId, WorkloadTrace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn jobs_strategy() -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec((0u64..100_000, 1u64..5_000, 1u32..64), 0..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(arrival, len, cpus)| {
                Job::new(
                    JobId(0),
                    SimTime::from_minutes(arrival),
                    Minutes::new(len),
                    cpus,
                )
            })
            .collect()
    })
}

proptest! {
    /// Trace construction sorts by arrival and assigns dense ids,
    /// regardless of input order.
    #[test]
    fn trace_construction_sorts_and_densifies(jobs in jobs_strategy()) {
        let trace = WorkloadTrace::from_jobs(jobs.clone());
        prop_assert_eq!(trace.len(), jobs.len());
        for (idx, job) in trace.iter().enumerate() {
            prop_assert_eq!(job.id.index(), idx);
        }
        for pair in trace.jobs().windows(2) {
            prop_assert!(pair[0].arrival <= pair[1].arrival);
        }
        // Total demand is permutation-invariant.
        let direct: u64 = jobs.iter().map(|j| j.cpu_minutes()).sum();
        prop_assert_eq!(trace.total_cpu_minutes(), direct);
    }

    /// The hourly demand curve integrates to exactly the total
    /// CPU-minutes of the trace.
    #[test]
    fn demand_curve_conserves_work(jobs in jobs_strategy()) {
        let trace = WorkloadTrace::from_jobs(jobs);
        let curve = trace.demand_curve();
        let integral_cpu_minutes: f64 = curve.hourly().iter().sum::<f64>() * 60.0;
        let expected = trace.total_cpu_minutes() as f64;
        prop_assert!(
            (integral_cpu_minutes - expected).abs() < 1e-6 * (1.0 + expected),
            "{integral_cpu_minutes} vs {expected}"
        );
    }

    /// The sampling pipeline enforces its bounds, hits its target count
    /// when possible, and is deterministic.
    #[test]
    fn pipeline_bounds_and_determinism(
        jobs in jobs_strategy(),
        target in 1usize..100,
        seed in 0u64..100,
    ) {
        let raw = WorkloadTrace::from_jobs(jobs);
        let pipeline = SamplePipeline::paper_defaults(target).with_max_cpus(16);
        let out = pipeline.apply(&raw, seed);
        prop_assert!(out.iter().all(|j| j.length >= Minutes::new(5)));
        prop_assert!(out.iter().all(|j| j.length <= Minutes::from_days(3)));
        prop_assert!(out.iter().all(|j| j.cpus <= 16));
        let eligible = raw
            .iter()
            .filter(|j| j.length >= Minutes::new(5)
                && j.length <= Minutes::from_days(3)
                && j.cpus <= 16)
            .count();
        prop_assert_eq!(out.len(), eligible.min(target));
        prop_assert_eq!(out, pipeline.apply(&raw, seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Distribution samplers honour their support for arbitrary
    /// parameters and seeds.
    #[test]
    fn samplers_respect_support(
        seed in 0u64..1_000,
        mean in 0.1f64..10_000.0,
        median in 0.1f64..10_000.0,
        sigma in 0.0f64..3.0,
        alpha in 0.2f64..5.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let e = Exponential::with_mean(mean).sample(&mut rng);
            prop_assert!(e.is_finite() && e >= 0.0);
            let l = LogNormal::with_median(median, sigma).sample(&mut rng);
            prop_assert!(l.is_finite() && l > 0.0);
            let p = Pareto::new(median, alpha).sample(&mut rng);
            prop_assert!(p >= median);
            let t = Truncated::new(LogNormal::with_median(median, sigma), 1.0, 100.0)
                .sample(&mut rng);
            prop_assert!((1.0..=100.0).contains(&t));
        }
    }

    /// Family generators always satisfy their hard structural bounds.
    #[test]
    fn family_generators_respect_bounds(seed in 0u64..50) {
        let horizon = Minutes::from_days(10);
        for family in TraceFamily::ALL {
            let raw = family.generate_raw(300, horizon, seed);
            prop_assert_eq!(raw.len(), 300);
            prop_assert!(raw.iter().all(|j| j.arrival < SimTime::from_days(10)));
            prop_assert!(raw.iter().all(|j| j.cpus >= 1));
            match family {
                TraceFamily::MustangHpc => {
                    prop_assert!(raw.iter().all(|j| j.length <= Minutes::from_hours(16)));
                }
                TraceFamily::AlibabaPai => {
                    prop_assert!(raw.iter().all(|j| j.cpus <= 100));
                }
                TraceFamily::AzureVm => {
                    prop_assert!(raw.iter().all(|j| j.length <= Minutes::from_days(7)));
                }
            }
        }
    }
}
