//! Workload substrate for the GAIA carbon-aware batch scheduler.
//!
//! The paper evaluates GAIA on three production cluster traces — a
//! two-month **Alibaba-PAI** trace, a month-long **Azure-VM** trace, and
//! the five-year **LANL Mustang** HPC trace — resampled into year-long
//! (100k-job) and week-long (1k-job) synthetic traces (§6.1). The raw
//! traces cannot ship with this repository, so this crate synthesizes
//! statistically equivalent workloads from the distributional facts the
//! paper publishes, and implements the paper's own sampling pipeline on
//! top (length filtering, trace replication, demand normalization).
//!
//! Main types:
//!
//! * [`Job`], [`JobId`] — the unit of scheduling work.
//! * [`QueueKind`], [`QueueConfig`] — the short/long queue model that
//!   bounds job lengths and waiting times (§4.2).
//! * [`WorkloadTrace`] — an arrival-ordered collection of jobs with
//!   demand statistics.
//! * [`dist`] — hand-rolled, seedable samplers (exponential, lognormal,
//!   Pareto, discrete empirical) so the only random dependency is `rand`.
//! * [`synth::TraceFamily`] — generators for the three paper workloads
//!   plus the Section 3 motivating example.
//! * [`sample`] — the paper's filter-and-sample pipeline.
//!
//! # Examples
//!
//! ```
//! use gaia_workload::synth::TraceFamily;
//! use gaia_time::Minutes;
//!
//! // The week-long, 1k-job Alibaba-PAI sample used by the prototype
//! // experiments (Figures 8-12).
//! let trace = TraceFamily::AlibabaPai.week_long_1k(42);
//! assert_eq!(trace.len(), 1000);
//! assert!(trace.max_cpus() <= 4); // capped for testbed tractability
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod elastic;
pub mod io;
mod job;
pub mod ladder;
mod queue;
pub mod resample;
pub mod sample;
pub mod synth;
mod trace;

pub use job::{Job, JobId};
pub use queue::{QueueConfig, QueueKind, QueueSet};
pub use trace::{DemandCurve, TraceStats, WorkloadTrace};
