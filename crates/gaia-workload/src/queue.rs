//! The short/long job-queue model (§4.2).
//!
//! GAIA follows standard batch-scheduler practice: users submit jobs to a
//! queue that bounds the job's maximum length (`J_max`), and the cluster
//! administrator configures a maximum waiting time (`W`) per queue — the
//! scheduler guarantees a job begins executing no later than `W` after
//! arrival. Jobs do not carry individual deadlines.

use std::fmt;

use gaia_time::Minutes;
use serde::{Deserialize, Serialize};

use crate::Job;

/// Which administrative queue a job belongs to.
///
/// The paper describes its policies with two queues for ease of
/// exposition and notes they extend to arbitrarily many; we keep the
/// two-queue model and parameterize everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// Jobs bounded by the short-queue length limit (default ≤ 2 h).
    Short,
    /// All other jobs.
    Long,
}

impl fmt::Display for QueueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueKind::Short => f.write_str("short"),
            QueueKind::Long => f.write_str("long"),
        }
    }
}

/// Configuration of a single queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Maximum job length admitted to this queue (`J_max`).
    pub max_length: Minutes,
    /// Maximum waiting time before a queued job must start (`W`).
    pub max_wait: Minutes,
}

/// The pair of queue configurations plus historical length averages.
///
/// The `avg_length` fields carry the *historical queue-wide average* job
/// length that length-oblivious policies (Lowest-Window, Carbon-Time) use
/// as their coarse estimate `J_avg` (§4.2.1). They are computed from the
/// trace being replayed, mimicking a scheduler consulting its accounting
/// database.
///
/// # Examples
///
/// ```
/// use gaia_workload::{QueueKind, QueueSet};
/// use gaia_time::Minutes;
///
/// let queues = QueueSet::paper_defaults();
/// assert_eq!(queues.config(QueueKind::Short).max_wait, Minutes::from_hours(6));
/// assert_eq!(queues.classify_length(Minutes::from_hours(3)), QueueKind::Long);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSet {
    short: QueueConfig,
    long: QueueConfig,
    avg_short: Minutes,
    avg_long: Minutes,
}

impl QueueSet {
    /// The paper's defaults (§6.1): `J_short ≤ 2 h`, `W_short = 6 h`,
    /// `W_long = 24 h`, and a 3-day long-queue cap matching the sampling
    /// pipeline's upper filter.
    pub fn paper_defaults() -> Self {
        QueueSet::new(
            QueueConfig {
                max_length: Minutes::from_hours(2),
                max_wait: Minutes::from_hours(6),
            },
            QueueConfig {
                max_length: Minutes::from_days(3),
                max_wait: Minutes::from_hours(24),
            },
        )
    }

    /// Creates a queue set with the given configurations. Queue-average
    /// lengths default to half the queue cap until
    /// [`QueueSet::with_averages_from`] refines them.
    ///
    /// # Panics
    ///
    /// Panics if the short queue's length cap is not strictly below the
    /// long queue's, or any bound is zero.
    pub fn new(short: QueueConfig, long: QueueConfig) -> Self {
        assert!(
            short.max_length < long.max_length,
            "short queue cap must be below long queue cap"
        );
        assert!(!short.max_length.is_zero() && !short.max_wait.is_zero());
        assert!(!long.max_wait.is_zero());
        QueueSet {
            short,
            long,
            avg_short: short.max_length / 2,
            avg_long: long.max_length / 2,
        }
    }

    /// Returns a copy with per-queue maximum waits replaced — the knob the
    /// waiting-time sweeps of Figure 14 turn.
    pub fn with_waits(mut self, short_wait: Minutes, long_wait: Minutes) -> Self {
        assert!(
            !short_wait.is_zero() && !long_wait.is_zero(),
            "waits must be positive"
        );
        self.short.max_wait = short_wait;
        self.long.max_wait = long_wait;
        self
    }

    /// Returns a copy whose queue-average lengths are the historical
    /// per-queue means of `jobs` (jobs are classified by actual length).
    ///
    /// Queues with no matching jobs keep their previous averages.
    pub fn with_averages_from<'a>(mut self, jobs: impl IntoIterator<Item = &'a Job>) -> Self {
        let mut sums = [0u64; 2];
        let mut counts = [0u64; 2];
        for job in jobs {
            let idx = match self.classify_length(job.length) {
                QueueKind::Short => 0,
                QueueKind::Long => 1,
            };
            sums[idx] += job.length.as_minutes();
            counts[idx] += 1;
        }
        if let Some(avg) = sums[0].checked_div(counts[0]) {
            self.avg_short = Minutes::new(avg);
        }
        if let Some(avg) = sums[1].checked_div(counts[1]) {
            self.avg_long = Minutes::new(avg);
        }
        self
    }

    /// The configuration of one queue.
    pub fn config(&self, kind: QueueKind) -> QueueConfig {
        match kind {
            QueueKind::Short => self.short,
            QueueKind::Long => self.long,
        }
    }

    /// The queue a job of the given length is submitted to. The paper
    /// assumes users classify their jobs correctly (§6.1), so
    /// classification is by actual length.
    pub fn classify_length(&self, length: Minutes) -> QueueKind {
        if length <= self.short.max_length {
            QueueKind::Short
        } else {
            QueueKind::Long
        }
    }

    /// The queue a job belongs to.
    pub fn classify(&self, job: &Job) -> QueueKind {
        self.classify_length(job.length)
    }

    /// The historical queue-wide average length `J_avg` (§4.2.1), used by
    /// policies that do not know exact job lengths.
    pub fn avg_length(&self, kind: QueueKind) -> Minutes {
        match kind {
            QueueKind::Short => self.avg_short,
            QueueKind::Long => self.avg_long,
        }
    }

    /// Maximum wait `W` of the job's queue.
    pub fn max_wait_for(&self, job: &Job) -> Minutes {
        self.config(self.classify(job)).max_wait
    }

    /// Length cap `J_max` of the job's queue.
    pub fn max_length_for(&self, job: &Job) -> Minutes {
        self.config(self.classify(job)).max_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobId;
    use gaia_time::SimTime;

    fn job(len_minutes: u64) -> Job {
        Job::new(JobId(0), SimTime::ORIGIN, Minutes::new(len_minutes), 1)
    }

    #[test]
    fn paper_defaults_match_section_6_1() {
        let q = QueueSet::paper_defaults();
        assert_eq!(
            q.config(QueueKind::Short).max_length,
            Minutes::from_hours(2)
        );
        assert_eq!(q.config(QueueKind::Short).max_wait, Minutes::from_hours(6));
        assert_eq!(q.config(QueueKind::Long).max_wait, Minutes::from_hours(24));
        assert_eq!(q.config(QueueKind::Long).max_length, Minutes::from_days(3));
    }

    #[test]
    fn classification_boundary() {
        let q = QueueSet::paper_defaults();
        assert_eq!(q.classify_length(Minutes::from_hours(2)), QueueKind::Short);
        assert_eq!(q.classify_length(Minutes::new(121)), QueueKind::Long);
        assert_eq!(q.classify(&job(30)), QueueKind::Short);
    }

    #[test]
    fn averages_from_jobs() {
        let jobs = vec![job(60), job(120), job(600), job(1200)];
        let q = QueueSet::paper_defaults().with_averages_from(&jobs);
        assert_eq!(q.avg_length(QueueKind::Short), Minutes::new(90));
        assert_eq!(q.avg_length(QueueKind::Long), Minutes::new(900));
    }

    #[test]
    fn averages_keep_default_when_queue_empty() {
        let jobs = vec![job(60)];
        let q = QueueSet::paper_defaults().with_averages_from(&jobs);
        assert_eq!(q.avg_length(QueueKind::Short), Minutes::new(60));
        // Long queue untouched: default of cap/2.
        assert_eq!(q.avg_length(QueueKind::Long), Minutes::from_days(3) / 2);
    }

    #[test]
    fn with_waits_overrides() {
        let q =
            QueueSet::paper_defaults().with_waits(Minutes::from_hours(3), Minutes::from_hours(12));
        assert_eq!(q.max_wait_for(&job(30)), Minutes::from_hours(3));
        assert_eq!(q.max_wait_for(&job(300)), Minutes::from_hours(12));
    }

    #[test]
    #[should_panic(expected = "below long queue cap")]
    fn rejects_inverted_caps() {
        let _ = QueueSet::new(
            QueueConfig {
                max_length: Minutes::from_hours(5),
                max_wait: Minutes::from_hours(1),
            },
            QueueConfig {
                max_length: Minutes::from_hours(2),
                max_wait: Minutes::from_hours(1),
            },
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(QueueKind::Short.to_string(), "short");
        assert_eq!(QueueKind::Long.to_string(), "long");
    }
}
