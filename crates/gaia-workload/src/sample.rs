//! The paper's trace filter-and-sample pipeline (§6.1).
//!
//! Starting from an "original" trace, the paper constructs its evaluation
//! workloads by:
//!
//! 1. **Filtering** — dropping jobs shorter than five minutes (they
//!    "may not tolerate long delays ... and may not contribute to carbon
//!    consumption") and longer than three days (diurnal carbon-intensity
//!    cycles make shifting them pointless);
//! 2. **Sampling** — uniformly sampling the filtered jobs down to the
//!    target count (100k for year-long runs, 1k for the week-long
//!    prototype runs);
//! 3. **Capping** — for the prototype trace only, restricting to jobs of
//!    at most four CPUs "for budgetary reasons".

use gaia_time::Minutes;
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::WorkloadTrace;

/// Configuration of the filter-and-sample pipeline.
///
/// # Examples
///
/// ```
/// use gaia_workload::sample::SamplePipeline;
/// use gaia_workload::synth::TraceFamily;
/// use gaia_time::Minutes;
///
/// let raw = TraceFamily::AlibabaPai.generate_raw(3000, Minutes::from_days(7), 1);
/// let trace = SamplePipeline::paper_defaults(500).apply(&raw, 1);
/// assert_eq!(trace.len(), 500);
/// assert!(trace.iter().all(|j| j.length >= Minutes::new(5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplePipeline {
    /// Minimum admitted job length (inclusive).
    pub min_length: Minutes,
    /// Maximum admitted job length (inclusive).
    pub max_length: Minutes,
    /// Optional cap on per-job CPUs (the prototype's 4-CPU cap).
    pub max_cpus: Option<u32>,
    /// Target number of jobs after sampling.
    pub target_jobs: usize,
}

impl SamplePipeline {
    /// The paper's defaults: drop jobs under 5 minutes or over 3 days,
    /// then sample down to `target_jobs`.
    pub fn paper_defaults(target_jobs: usize) -> Self {
        SamplePipeline {
            min_length: Minutes::new(5),
            max_length: Minutes::from_days(3),
            max_cpus: None,
            target_jobs,
        }
    }

    /// Adds the prototype's per-job CPU cap.
    pub fn with_max_cpus(mut self, max_cpus: u32) -> Self {
        self.max_cpus = Some(max_cpus);
        self
    }

    /// Applies the pipeline to `raw`, sampling uniformly without
    /// replacement and deterministically from `seed`.
    ///
    /// If fewer jobs survive filtering than `target_jobs`, all survivors
    /// are returned — callers generating synthetic input should
    /// over-generate, as the paper does by replicating its traces.
    pub fn apply(&self, raw: &WorkloadTrace, seed: u64) -> WorkloadTrace {
        let filtered: Vec<_> = raw
            .iter()
            .filter(|j| j.length >= self.min_length && j.length <= self.max_length)
            .filter(|j| self.max_cpus.is_none_or(|cap| j.cpus <= cap))
            .copied()
            .collect();
        if filtered.len() <= self.target_jobs {
            return WorkloadTrace::from_jobs(filtered);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A3B_1E00);
        let chosen = index_sample(&mut rng, filtered.len(), self.target_jobs);
        WorkloadTrace::from_jobs(chosen.into_iter().map(|i| filtered[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Job, JobId};
    use gaia_time::SimTime;

    fn raw_trace() -> WorkloadTrace {
        let mut jobs = Vec::new();
        for i in 0..100u64 {
            // Lengths 1..=100 minutes, cpus cycling 1..=8.
            jobs.push(Job::new(
                JobId(0),
                SimTime::from_minutes(i * 10),
                Minutes::new(i + 1),
                (i % 8 + 1) as u32,
            ));
        }
        // A three-day-plus job that must be filtered out.
        jobs.push(Job::new(
            JobId(0),
            SimTime::from_minutes(5),
            Minutes::from_days(4),
            1,
        ));
        WorkloadTrace::from_jobs(jobs)
    }

    #[test]
    fn filters_length_bounds() {
        let out = SamplePipeline::paper_defaults(1000).apply(&raw_trace(), 1);
        assert!(out.iter().all(|j| j.length >= Minutes::new(5)));
        assert!(out.iter().all(|j| j.length <= Minutes::from_days(3)));
        // Jobs of lengths 1..=4 min (4 jobs) and the 4-day job are gone.
        assert_eq!(out.len(), 96);
    }

    #[test]
    fn samples_down_to_target() {
        let out = SamplePipeline::paper_defaults(30).apply(&raw_trace(), 1);
        assert_eq!(out.len(), 30);
        // Arrival-ordered with dense ids after sampling.
        for (idx, job) in out.iter().enumerate() {
            assert_eq!(job.id.index(), idx);
        }
        for pair in out.jobs().windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = SamplePipeline::paper_defaults(30).apply(&raw_trace(), 9);
        let b = SamplePipeline::paper_defaults(30).apply(&raw_trace(), 9);
        let c = SamplePipeline::paper_defaults(30).apply(&raw_trace(), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cpu_cap_applies() {
        let out = SamplePipeline::paper_defaults(1000)
            .with_max_cpus(4)
            .apply(&raw_trace(), 1);
        assert!(out.iter().all(|j| j.cpus <= 4));
        assert!(!out.is_empty());
    }

    #[test]
    fn returns_all_when_fewer_than_target() {
        let out = SamplePipeline::paper_defaults(10_000).apply(&raw_trace(), 1);
        assert_eq!(out.len(), 96);
    }

    #[test]
    fn sampling_preserves_distribution_shape() {
        // The sampled length mean should approximate the filtered mean.
        let raw = raw_trace();
        let filtered = SamplePipeline::paper_defaults(usize::MAX).apply(&raw, 1);
        let sampled = SamplePipeline::paper_defaults(48).apply(&raw, 1);
        let mean = |t: &WorkloadTrace| {
            t.iter().map(|j| j.length.as_minutes() as f64).sum::<f64>() / t.len() as f64
        };
        assert!((mean(&filtered) - mean(&sampled)).abs() < 15.0);
    }
}
