//! Bootstrap resampling of observed workloads.
//!
//! The paper constructs its evaluation traces by *sampling from real
//! traces* (§6.1); our synthetic generators replace the unavailable
//! originals. When a user **does** have a real trace, this module closes
//! the loop: fit an [`EmpiricalResampler`] to it and draw statistically
//! faithful replicas of any length — preserving the joint
//! (length, cpus) distribution exactly (jobs are drawn with replacement)
//! and the inter-arrival distribution up to a linear time rescale.

use gaia_time::{Minutes, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Job, JobId, WorkloadTrace};

/// A bootstrap model of an observed workload trace.
///
/// # Examples
///
/// ```
/// use gaia_workload::resample::EmpiricalResampler;
/// use gaia_workload::synth::TraceFamily;
/// use gaia_time::Minutes;
///
/// let observed = TraceFamily::AzureVm.week_long_1k(1);
/// let model = EmpiricalResampler::fit(&observed);
/// let replica = model.resample(500, Minutes::from_days(30), 7);
/// assert_eq!(replica.len(), 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalResampler {
    /// Observed (length, cpus) pairs — the joint body distribution.
    bodies: Vec<(Minutes, u32)>,
    /// Observed inter-arrival gaps, minutes (empty for 0/1-job traces).
    gaps: Vec<u64>,
}

impl EmpiricalResampler {
    /// Fits the model to an observed trace.
    ///
    /// # Panics
    ///
    /// Panics if `observed` is empty — there is nothing to resample.
    pub fn fit(observed: &WorkloadTrace) -> EmpiricalResampler {
        assert!(
            !observed.is_empty(),
            "cannot fit a resampler to an empty trace"
        );
        let bodies = observed.iter().map(|j| (j.length, j.cpus)).collect();
        let gaps = observed
            .jobs()
            .windows(2)
            .map(|pair| (pair[1].arrival - pair[0].arrival).as_minutes())
            .collect();
        EmpiricalResampler { bodies, gaps }
    }

    /// Number of observed jobs the model was fitted to.
    pub fn observed_jobs(&self) -> usize {
        self.bodies.len()
    }

    /// Draws a replica of `n_jobs` jobs spanning roughly `horizon`:
    /// (length, cpus) pairs are bootstrapped jointly; arrivals are
    /// cumulative bootstrapped gaps rescaled so the last arrival lands
    /// near the horizon's end.
    ///
    /// # Panics
    ///
    /// Panics if `n_jobs` is zero or `horizon` is zero.
    pub fn resample(&self, n_jobs: usize, horizon: Minutes, seed: u64) -> WorkloadTrace {
        assert!(n_jobs > 0, "resample needs a positive job count");
        assert!(!horizon.is_zero(), "resample needs a positive horizon");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB007_57A9);
        // Bootstrap gaps (uniform arrivals if the source had < 2 jobs).
        let raw_gaps: Vec<u64> = (0..n_jobs)
            .map(|_| {
                if self.gaps.is_empty() {
                    1
                } else {
                    self.gaps[rng.random_range(0..self.gaps.len())]
                }
            })
            .collect();
        let total: u64 = raw_gaps.iter().sum::<u64>().max(1);
        // Rescale cumulative gaps onto [0, horizon).
        let scale = (horizon.as_minutes().saturating_sub(1)) as f64 / total as f64;
        let mut cursor = 0u64;
        let jobs = raw_gaps
            .into_iter()
            .map(|gap| {
                cursor += gap;
                let arrival = SimTime::from_minutes((cursor as f64 * scale) as u64);
                let (length, cpus) = self.bodies[rng.random_range(0..self.bodies.len())];
                Job::new(JobId(0), arrival, length, cpus)
            })
            .collect();
        WorkloadTrace::from_jobs(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TraceFamily;

    fn observed() -> WorkloadTrace {
        TraceFamily::AlibabaPai.week_long_1k(3)
    }

    #[test]
    fn replica_has_requested_shape() {
        let model = EmpiricalResampler::fit(&observed());
        assert_eq!(model.observed_jobs(), 1000);
        let replica = model.resample(400, Minutes::from_days(14), 9);
        assert_eq!(replica.len(), 400);
        let last = replica.last_arrival().expect("non-empty");
        assert!(last < SimTime::from_days(14));
        assert!(
            last > SimTime::from_days(7),
            "arrivals should span the horizon"
        );
    }

    #[test]
    fn replica_preserves_marginals() {
        let source = observed();
        let model = EmpiricalResampler::fit(&source);
        let replica = model.resample(5000, Minutes::from_days(35), 9);
        let mean_len = |t: &WorkloadTrace| {
            t.iter().map(|j| j.length.as_minutes() as f64).sum::<f64>() / t.len() as f64
        };
        let mean_cpus =
            |t: &WorkloadTrace| t.iter().map(|j| j.cpus as f64).sum::<f64>() / t.len() as f64;
        assert!((mean_len(&replica) / mean_len(&source) - 1.0).abs() < 0.1);
        assert!((mean_cpus(&replica) / mean_cpus(&source) - 1.0).abs() < 0.1);
        // Every replica job is an observed (length, cpus) pair.
        let observed_pairs: std::collections::HashSet<(u64, u32)> = source
            .iter()
            .map(|j| (j.length.as_minutes(), j.cpus))
            .collect();
        assert!(replica
            .iter()
            .all(|j| observed_pairs.contains(&(j.length.as_minutes(), j.cpus))));
    }

    #[test]
    fn deterministic_per_seed() {
        let model = EmpiricalResampler::fit(&observed());
        let a = model.resample(100, Minutes::from_days(7), 1);
        let b = model.resample(100, Minutes::from_days(7), 1);
        let c = model.resample(100, Minutes::from_days(7), 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_job_source_works() {
        let source = WorkloadTrace::from_jobs(vec![Job::new(
            JobId(0),
            SimTime::from_hours(1),
            Minutes::new(90),
            2,
        )]);
        let model = EmpiricalResampler::fit(&source);
        let replica = model.resample(10, Minutes::from_days(1), 5);
        assert_eq!(replica.len(), 10);
        assert!(replica
            .iter()
            .all(|j| j.length == Minutes::new(90) && j.cpus == 2));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn rejects_empty_source() {
        let _ = EmpiricalResampler::fit(&WorkloadTrace::from_jobs(vec![]));
    }
}
