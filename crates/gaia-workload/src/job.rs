//! The [`Job`] type and its identifier.

use std::fmt;

use gaia_time::{Minutes, SimTime};
use serde::{Deserialize, Serialize};

/// Unique identifier of a job within one workload trace.
///
/// Identifiers are dense indices assigned in arrival order, which lets
/// per-job accounting use plain vectors.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub u64);

impl JobId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A batch job: the unit of work GAIA schedules.
///
/// Matches the paper's job model (§4.1): users submit jobs with resource
/// requirements to a length-bounded queue; the *exact* length is known to
/// the simulator (to execute the job) but, depending on the policy's
/// knowledge model, may be hidden from the scheduler.
///
/// # Examples
///
/// ```
/// use gaia_workload::{Job, JobId};
/// use gaia_time::{Minutes, SimTime};
///
/// let job = Job::new(JobId(0), SimTime::from_hours(1), Minutes::from_hours(4), 2);
/// assert_eq!(job.cpu_minutes(), 480);
/// assert_eq!(job.end_if_started_at(job.arrival), SimTime::from_hours(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Dense identifier within the trace.
    pub id: JobId,
    /// Submission instant.
    pub arrival: SimTime,
    /// Actual execution length (exclusive of any waiting).
    pub length: Minutes,
    /// Number of CPU units the job occupies while running.
    pub cpus: u32,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero or `cpus` is zero — zero-size jobs have
    /// no meaningful schedule and always indicate a generator bug.
    pub fn new(id: JobId, arrival: SimTime, length: Minutes, cpus: u32) -> Self {
        assert!(!length.is_zero(), "job length must be positive");
        assert!(cpus > 0, "job must require at least one CPU");
        Job {
            id,
            arrival,
            length,
            cpus,
        }
    }

    /// Total compute demand, in CPU-minutes.
    pub fn cpu_minutes(&self) -> u64 {
        self.length.as_minutes() * self.cpus as u64
    }

    /// Total compute demand, in CPU-hours.
    pub fn cpu_hours(&self) -> f64 {
        self.cpu_minutes() as f64 / 60.0
    }

    /// The instant the job finishes if it runs uninterrupted from `start`.
    pub fn end_if_started_at(&self, start: SimTime) -> SimTime {
        start + self.length
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (arr {}, len {}, {} cpu)",
            self.id, self.arrival, self.length, self.cpus
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_demand() {
        let job = Job::new(JobId(1), SimTime::ORIGIN, Minutes::from_hours(2), 3);
        assert_eq!(job.cpu_minutes(), 360);
        assert!((job.cpu_hours() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn end_time() {
        let job = Job::new(JobId(1), SimTime::from_hours(1), Minutes::new(30), 1);
        assert_eq!(
            job.end_if_started_at(SimTime::from_hours(2)),
            SimTime::from_minutes(150)
        );
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn rejects_zero_length() {
        let _ = Job::new(JobId(0), SimTime::ORIGIN, Minutes::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn rejects_zero_cpus() {
        let _ = Job::new(JobId(0), SimTime::ORIGIN, Minutes::new(10), 0);
    }

    #[test]
    fn display_forms() {
        let job = Job::new(JobId(7), SimTime::ORIGIN, Minutes::new(90), 2);
        assert_eq!(JobId(7).to_string(), "job#7");
        assert!(job.to_string().contains("job#7"));
        assert!(job.to_string().contains("2 cpu"));
    }

    #[test]
    fn id_indexing() {
        assert_eq!(JobId(12).index(), 12);
    }
}
