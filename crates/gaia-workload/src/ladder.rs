//! N-queue generalization of the short/long queue model.
//!
//! §4.2 describes GAIA's policies with two queues "for ease of
//! exposition. However, our policies can be extended to an arbitrary
//! number of queues." [`QueueLadder`] realizes that: an ordered ladder of
//! queue rungs, each with a length cap and a maximum waiting time, plus
//! historical per-rung average lengths for the coarse-knowledge policies.

use gaia_time::Minutes;
use serde::{Deserialize, Serialize};

use crate::{Job, QueueSet, WorkloadTrace};

/// One rung of the queue ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueRung {
    /// Maximum admitted job length (`J_max` for this rung).
    pub max_length: Minutes,
    /// Maximum waiting time (`W` for this rung).
    pub max_wait: Minutes,
}

/// An ordered ladder of job queues (shortest cap first).
///
/// # Examples
///
/// ```
/// use gaia_workload::ladder::{QueueLadder, QueueRung};
/// use gaia_time::Minutes;
///
/// // Short / medium / long — finer than the paper's two queues.
/// let ladder = QueueLadder::new(vec![
///     QueueRung { max_length: Minutes::from_hours(2), max_wait: Minutes::from_hours(6) },
///     QueueRung { max_length: Minutes::from_hours(12), max_wait: Minutes::from_hours(12) },
///     QueueRung { max_length: Minutes::from_days(3), max_wait: Minutes::from_hours(24) },
/// ]);
/// assert_eq!(ladder.classify_length(Minutes::from_hours(5)), 1);
/// assert_eq!(ladder.max_wait(1), Minutes::from_hours(12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueLadder {
    rungs: Vec<QueueRung>,
    avg_lengths: Vec<Minutes>,
}

impl QueueLadder {
    /// Creates a ladder from rungs ordered by strictly increasing length
    /// cap.
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty, caps are not strictly increasing, or
    /// any bound is zero.
    pub fn new(rungs: Vec<QueueRung>) -> Self {
        assert!(!rungs.is_empty(), "a queue ladder needs at least one rung");
        for rung in &rungs {
            assert!(!rung.max_length.is_zero(), "length caps must be positive");
            assert!(!rung.max_wait.is_zero(), "waiting bounds must be positive");
        }
        for pair in rungs.windows(2) {
            assert!(
                pair[0].max_length < pair[1].max_length,
                "length caps must be strictly increasing"
            );
        }
        let avg_lengths = rungs.iter().map(|r| r.max_length / 2).collect();
        QueueLadder { rungs, avg_lengths }
    }

    /// The paper's §7 recommendation as a three-rung ladder: short (≤2 h,
    /// W 6 h), medium (≤12 h, W 12 h — "waiting for 12hrs balances carbon
    /// and performance"), long (≤3 d, W 24 h).
    pub fn paper_three_tier() -> Self {
        QueueLadder::new(vec![
            QueueRung {
                max_length: Minutes::from_hours(2),
                max_wait: Minutes::from_hours(6),
            },
            QueueRung {
                max_length: Minutes::from_hours(12),
                max_wait: Minutes::from_hours(12),
            },
            QueueRung {
                max_length: Minutes::from_days(3),
                max_wait: Minutes::from_hours(24),
            },
        ])
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Whether the ladder has no rungs (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The rung a job of the given length is submitted to: the first rung
    /// whose cap admits it (jobs beyond every cap land on the last rung,
    /// as batch schedulers do with their catch-all queue).
    pub fn classify_length(&self, length: Minutes) -> usize {
        self.rungs
            .iter()
            .position(|r| length <= r.max_length)
            .unwrap_or(self.rungs.len() - 1)
    }

    /// The rung a job belongs to.
    pub fn classify(&self, job: &Job) -> usize {
        self.classify_length(job.length)
    }

    /// Maximum waiting time of rung `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn max_wait(&self, idx: usize) -> Minutes {
        self.rungs[idx].max_wait
    }

    /// Historical average length of rung `idx` (`J_avg`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn avg_length(&self, idx: usize) -> Minutes {
        self.avg_lengths[idx]
    }

    /// Returns a copy whose per-rung averages are learned from `trace`
    /// (rungs with no matching jobs keep cap/2).
    pub fn with_averages_from(mut self, trace: &WorkloadTrace) -> Self {
        let mut sums = vec![0u64; self.rungs.len()];
        let mut counts = vec![0u64; self.rungs.len()];
        for job in trace {
            let idx = self.classify(job);
            sums[idx] += job.length.as_minutes();
            counts[idx] += 1;
        }
        for idx in 0..self.rungs.len() {
            if let Some(avg) = sums[idx].checked_div(counts[idx]) {
                self.avg_lengths[idx] = Minutes::new(avg);
            }
        }
        self
    }
}

impl From<QueueSet> for QueueLadder {
    /// Converts the paper's two-queue configuration into a two-rung
    /// ladder, preserving the learned averages.
    fn from(set: QueueSet) -> Self {
        use crate::QueueKind;
        let mut ladder = QueueLadder::new(vec![
            QueueRung {
                max_length: set.config(QueueKind::Short).max_length,
                max_wait: set.config(QueueKind::Short).max_wait,
            },
            QueueRung {
                max_length: set.config(QueueKind::Long).max_length,
                max_wait: set.config(QueueKind::Long).max_wait,
            },
        ]);
        ladder.avg_lengths = vec![
            set.avg_length(QueueKind::Short),
            set.avg_length(QueueKind::Long),
        ];
        ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobId, QueueKind};
    use gaia_time::SimTime;

    fn job(len_min: u64) -> Job {
        Job::new(JobId(0), SimTime::ORIGIN, Minutes::new(len_min), 1)
    }

    #[test]
    fn three_tier_classification() {
        let ladder = QueueLadder::paper_three_tier();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder.classify(&job(60)), 0);
        assert_eq!(ladder.classify(&job(121)), 1);
        assert_eq!(ladder.classify(&job(720)), 1);
        assert_eq!(ladder.classify(&job(721)), 2);
        // Jobs beyond the last cap land on the catch-all last rung.
        assert_eq!(ladder.classify_length(Minutes::from_days(10)), 2);
    }

    #[test]
    fn averages_learned_per_rung() {
        let ladder = QueueLadder::paper_three_tier();
        let trace = WorkloadTrace::from_jobs(vec![
            job(60),
            job(100), // short rung: avg 80
            job(300),
            job(500),  // medium rung: avg 400
            job(2000), // long rung: avg 2000
        ]);
        let learned = ladder.with_averages_from(&trace);
        assert_eq!(learned.avg_length(0), Minutes::new(80));
        assert_eq!(learned.avg_length(1), Minutes::new(400));
        assert_eq!(learned.avg_length(2), Minutes::new(2000));
    }

    #[test]
    fn empty_rungs_keep_default_average() {
        let ladder = QueueLadder::paper_three_tier();
        let trace = WorkloadTrace::from_jobs(vec![job(30)]);
        let learned = ladder.with_averages_from(&trace);
        assert_eq!(learned.avg_length(0), Minutes::new(30));
        assert_eq!(learned.avg_length(1), Minutes::from_hours(6)); // cap/2
    }

    #[test]
    fn from_queueset_preserves_structure() {
        let set = QueueSet::paper_defaults().with_averages_from(&[job(60), job(600)]);
        let ladder = QueueLadder::from(set);
        assert_eq!(ladder.len(), 2);
        assert_eq!(ladder.max_wait(0), set.config(QueueKind::Short).max_wait);
        assert_eq!(ladder.avg_length(0), Minutes::new(60));
        assert_eq!(ladder.avg_length(1), Minutes::new(600));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unordered_rungs() {
        let _ = QueueLadder::new(vec![
            QueueRung {
                max_length: Minutes::from_hours(5),
                max_wait: Minutes::from_hours(1),
            },
            QueueRung {
                max_length: Minutes::from_hours(2),
                max_wait: Minutes::from_hours(1),
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one rung")]
    fn rejects_empty_ladder() {
        let _ = QueueLadder::new(vec![]);
    }
}
