//! CSV import/export for workload traces.
//!
//! Format: `arrival_minute,length_minutes,cpus` per job, optional header,
//! matching the paper artifact's workload CSV layout.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use gaia_time::{Minutes, SimTime};

use crate::{Job, JobId, WorkloadTrace};

/// Errors produced when parsing workload CSV files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// Description of the problem.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload parse error on line {}: {}",
            self.line, self.reason
        )
    }
}

impl Error for ParseTraceError {}

/// Writes `trace` as `arrival_minute,length_minutes,cpus` rows.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace_csv<W: Write>(mut writer: W, trace: &WorkloadTrace) -> std::io::Result<()> {
    writeln!(writer, "arrival_minute,length_minutes,cpus")?;
    for job in trace {
        writeln!(
            writer,
            "{},{},{}",
            job.arrival.as_minutes(),
            job.length.as_minutes(),
            job.cpus
        )?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace_csv`] (header optional).
///
/// # Errors
///
/// Returns [`ParseTraceError`] for unreadable or malformed rows.
///
/// # Examples
///
/// ```
/// use gaia_workload::io::{read_trace_csv, write_trace_csv};
/// use gaia_workload::synth::section3_workload;
///
/// let trace = section3_workload(1);
/// let mut buf = Vec::new();
/// write_trace_csv(&mut buf, &trace)?;
/// assert_eq!(read_trace_csv(&buf[..])?, trace);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn read_trace_csv<R: BufRead>(reader: R) -> Result<WorkloadTrace, ParseTraceError> {
    let mut jobs = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseTraceError {
            line: idx + 1,
            reason: format!("io error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (idx == 0 && trimmed.starts_with("arrival")) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(ParseTraceError {
                line: idx + 1,
                reason: format!("expected 3 fields, found {}", fields.len()),
            });
        }
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| ParseTraceError {
                line: idx + 1,
                reason: format!("invalid {what} {s:?}"),
            })
        };
        let arrival = parse_u64(fields[0], "arrival")?;
        let length = parse_u64(fields[1], "length")?;
        let cpus = parse_u64(fields[2], "cpus")?;
        if length == 0 || cpus == 0 {
            return Err(ParseTraceError {
                line: idx + 1,
                reason: "length and cpus must be positive".into(),
            });
        }
        jobs.push(Job::new(
            JobId(0),
            SimTime::from_minutes(arrival),
            Minutes::new(length),
            cpus as u32,
        ));
    }
    Ok(WorkloadTrace::from_jobs(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let trace = WorkloadTrace::from_jobs(vec![
            Job::new(JobId(0), SimTime::from_minutes(3), Minutes::new(30), 2),
            Job::new(JobId(0), SimTime::from_minutes(10), Minutes::new(600), 1),
        ]);
        let mut buf = Vec::new();
        write_trace_csv(&mut buf, &trace).expect("write");
        assert_eq!(read_trace_csv(&buf[..]).expect("read"), trace);
    }

    #[test]
    fn header_optional_blank_lines_skipped() {
        let csv = "10,60,1\n\n20,30,2\n";
        let trace = read_trace_csv(csv.as_bytes()).expect("read");
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_trace_csv("1,2\n".as_bytes()).is_err());
        assert!(read_trace_csv("a,2,3\n".as_bytes()).is_err());
        assert!(read_trace_csv("1,0,3\n".as_bytes()).is_err());
        assert!(read_trace_csv("1,2,0\n".as_bytes()).is_err());
        let err = read_trace_csv("1,2,3,4\n".as_bytes()).expect_err("fail");
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let trace = read_trace_csv("".as_bytes()).expect("read");
        assert!(trace.is_empty());
    }
}
