//! Synthetic generators for the paper's three production workloads.
//!
//! The paper's traces cannot be redistributed, so each generator encodes
//! the distributional facts the paper publishes about its trace and draws
//! a statistically equivalent workload:
//!
//! * **Alibaba-PAI** (§6.1, Figure 5): 38% of jobs are shorter than five
//!   minutes yet contribute only 0.36% of compute; about half of the
//!   *filtered* jobs are ≤ 1 h (Figure 9); lengths span minutes to days;
//!   per-job demand spans 1–100 units. Mean demand of the year-long
//!   sample ≈ 100 units (Figure 17's R).
//! * **Mustang-HPC** (§6.4.1): maximum job length 16 h, job-length mean
//!   "representative of the whole trace" (low spread); many parallel MPI
//!   jobs (demand unit = one 24-core machine); hourly-demand CoV ≈ 0.8
//!   (bursty submission campaigns); mean demand ≈ 468 (Figure 17).
//! * **Azure-VM** (§6.4.1): VM lifetimes with a heavy tail crossing
//!   multiple days ("long jobs that span across cycles of carbon
//!   intensity"); smooth aggregate demand, CoV ≈ 0.3; mean demand ≈ 142
//!   (Figure 17).
//!
//! Raw generators produce "original-like" traces *including* the very
//! short jobs; the paper's filter-and-sample pipeline ([`crate::sample`])
//! is applied on top by the convenience constructors.

use gaia_time::{Minutes, SimTime, MINUTES_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist::{Discrete, Exponential, LogNormal, Sample, Truncated};
use crate::sample::SamplePipeline;
use crate::{Job, JobId, WorkloadTrace};

/// The workload families evaluated in the paper (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceFamily {
    /// Alibaba's PAI machine-learning cluster.
    AlibabaPai,
    /// Azure's VM-lifetime workload.
    AzureVm,
    /// LANL's Mustang HPC cluster.
    MustangHpc,
}

impl TraceFamily {
    /// All three families, in the paper's figure order.
    pub const ALL: [TraceFamily; 3] = [
        TraceFamily::MustangHpc,
        TraceFamily::AlibabaPai,
        TraceFamily::AzureVm,
    ];

    /// Display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TraceFamily::AlibabaPai => "Alibaba",
            TraceFamily::AzureVm => "Azure",
            TraceFamily::MustangHpc => "Mustang",
        }
    }

    /// Generates a raw "original-like" trace of `n_jobs` jobs arriving
    /// over `horizon`, including the very short jobs that the paper's
    /// pipeline later filters out.
    pub fn generate_raw(self, n_jobs: usize, horizon: Minutes, seed: u64) -> WorkloadTrace {
        let profile = self.profile();
        let mut rng = StdRng::seed_from_u64(seed ^ self.seed_salt());
        let mut jobs = Vec::with_capacity(n_jobs);
        let mut arrivals = ArrivalProcess::new(&profile, n_jobs, horizon);
        while jobs.len() < n_jobs {
            let arrival = arrivals.next_arrival(&mut rng, horizon);
            let cpus = profile.cpus.sample(&mut rng);
            let length = Minutes::new(profile.sample_length(&mut rng, cpus));
            jobs.push(Job::new(JobId(0), arrival, length, cpus));
        }
        WorkloadTrace::from_jobs(jobs)
    }

    /// The year-long, 100k-job trace used by the large-scale experiments
    /// (Figures 13–19): raw generation followed by the paper's pipeline.
    pub fn year_long_100k(self, seed: u64) -> WorkloadTrace {
        let horizon = Minutes::from_days(365);
        // Generate with head-room so filtering still leaves 100k jobs.
        let raw = self.generate_raw(165_000, horizon, seed);
        SamplePipeline::paper_defaults(100_000).apply(&raw, seed)
    }

    /// A smaller year-long sample for fast experimentation and tests.
    pub fn year_long(self, n_jobs: usize, seed: u64) -> WorkloadTrace {
        let horizon = Minutes::from_days(365);
        let raw = self.generate_raw(n_jobs * 165 / 100 + 64, horizon, seed);
        SamplePipeline::paper_defaults(n_jobs).apply(&raw, seed)
    }

    /// The week-long, 1k-job Alibaba-PAI sample used by the prototype
    /// experiments (Figures 8–12): jobs capped at 4 CPUs "for budgetary
    /// reasons" (§6.1).
    ///
    /// Available for every family for symmetry, with the same 4-CPU cap.
    pub fn week_long_1k(self, seed: u64) -> WorkloadTrace {
        let horizon = Minutes::from_days(7);
        let raw = self.generate_raw(4_000, horizon, seed);
        SamplePipeline::paper_defaults(1_000)
            .with_max_cpus(4)
            .apply(&raw, seed)
    }

    fn seed_salt(self) -> u64 {
        match self {
            TraceFamily::AlibabaPai => 0xA11B_ABA0,
            TraceFamily::AzureVm => 0xA27E_0000,
            TraceFamily::MustangHpc => 0x0005_7A46,
        }
    }

    fn profile(self) -> FamilyProfile {
        match self {
            // ML platform: bimodal lengths (38% < 5 min), demand 1..100.
            TraceFamily::AlibabaPai => FamilyProfile {
                tiny_frac: 0.38,
                tiny_length: Truncated::new(LogNormal::with_median(1.6, 0.7), 1.0, 4.9),
                body_length: Truncated::new(
                    LogNormal::with_median(30.0, 1.35),
                    5.0,
                    4.0 * MINUTES_PER_DAY as f64,
                ),
                cpus: Discrete::new(vec![
                    (1, 0.44),
                    (2, 0.21),
                    (4, 0.16),
                    (8, 0.10),
                    (16, 0.06),
                    (32, 0.010),
                    (64, 0.002),
                    (100, 0.0008),
                ]),
                diurnal_amp: 0.35,
                campaign_prob: 0.06,
                campaign_mean: 4.0,
                cpu_length_coupling: 0.45,
                max_length: 4.0 * MINUTES_PER_DAY as f64,
            },
            // VM lifetimes: heavy tail into multiple days, smooth demand.
            TraceFamily::AzureVm => FamilyProfile {
                tiny_frac: 0.30,
                tiny_length: Truncated::new(LogNormal::with_median(2.0, 0.6), 1.0, 4.9),
                body_length: Truncated::new(
                    LogNormal::with_median(110.0, 1.85),
                    5.0,
                    7.0 * MINUTES_PER_DAY as f64,
                ),
                cpus: Discrete::new(vec![(1, 0.50), (2, 0.25), (4, 0.15), (8, 0.10)]),
                diurnal_amp: 0.10,
                campaign_prob: 0.0,
                campaign_mean: 1.0,
                cpu_length_coupling: 0.15,
                max_length: 7.0 * MINUTES_PER_DAY as f64,
            },
            // HPC: 16-hour scheduler cap, parallel MPI jobs, bursty
            // submission campaigns.
            TraceFamily::MustangHpc => FamilyProfile {
                tiny_frac: 0.22,
                tiny_length: Truncated::new(LogNormal::with_median(2.0, 0.7), 1.0, 4.9),
                body_length: Truncated::new(LogNormal::with_median(150.0, 0.95), 5.0, 960.0),
                cpus: Discrete::new(vec![
                    (1, 0.30),
                    (2, 0.20),
                    (4, 0.18),
                    (8, 0.14),
                    (16, 0.10),
                    (32, 0.05),
                    (64, 0.03),
                ]),
                diurnal_amp: 0.45,
                campaign_prob: 0.22,
                campaign_mean: 12.0,
                cpu_length_coupling: 0.25,
                max_length: 960.0,
            },
        }
    }
}

/// Distributional profile of one workload family.
#[derive(Debug, Clone)]
struct FamilyProfile {
    /// Fraction of jobs shorter than 5 minutes.
    tiny_frac: f64,
    tiny_length: Truncated<LogNormal>,
    body_length: Truncated<LogNormal>,
    cpus: Discrete<u32>,
    /// Relative amplitude of the day/night submission-rate swing.
    diurnal_amp: f64,
    /// Probability that an arrival opens a submission campaign.
    campaign_prob: f64,
    /// Mean number of extra jobs in a campaign (geometric).
    campaign_mean: f64,
    /// Exponent coupling job length to CPU width: wider (more parallel)
    /// jobs run longer, as in production ML/HPC traces. Length is scaled
    /// by `cpus^coupling`, re-clamped to the family's length bounds.
    cpu_length_coupling: f64,
    /// Upper clamp applied after coupling, minutes.
    max_length: f64,
}

impl FamilyProfile {
    fn sample_length<R: Rng + ?Sized>(&self, rng: &mut R, cpus: u32) -> u64 {
        let d: f64 = rng.random();
        let minutes = if d < self.tiny_frac {
            self.tiny_length.sample(rng)
        } else {
            let scale = (cpus as f64).powf(self.cpu_length_coupling);
            (self.body_length.sample(rng) * scale).clamp(5.0, self.max_length)
        };
        (minutes.round() as u64).max(1)
    }
}

/// Stateful arrival generator: thinned Poisson with diurnal modulation
/// plus geometric submission campaigns (bursts of near-simultaneous
/// arrivals), wrapping around the horizon if the process overshoots.
struct ArrivalProcess {
    cursor_minutes: f64,
    gap: Exponential,
    diurnal_amp: f64,
    campaign_prob: f64,
    campaign_mean: f64,
    pending_campaign: u32,
}

impl ArrivalProcess {
    fn new(profile: &FamilyProfile, n_jobs: usize, horizon: Minutes) -> Self {
        // Campaigns emit extra jobs per arrival event, so stretch the base
        // gap to keep the expected total near n_jobs across the horizon.
        let events_per_job = 1.0 + profile.campaign_prob * profile.campaign_mean;
        let mean_gap = horizon.as_minutes() as f64 / n_jobs as f64 * events_per_job;
        ArrivalProcess {
            cursor_minutes: 0.0,
            gap: Exponential::with_mean(mean_gap.max(f64::MIN_POSITIVE)),
            diurnal_amp: profile.diurnal_amp,
            campaign_prob: profile.campaign_prob,
            campaign_mean: profile.campaign_mean,
            pending_campaign: 0,
        }
    }

    fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R, horizon: Minutes) -> SimTime {
        if self.pending_campaign > 0 {
            // Campaign members land within a few minutes of the opener.
            self.pending_campaign -= 1;
            let jitter = rng.random::<f64>() * 5.0;
            let t = (self.cursor_minutes + jitter) % horizon.as_minutes() as f64;
            return SimTime::from_minutes(t as u64);
        }
        // Advance by an exponential gap, stretched at night (slow
        // submission) and compressed during working hours.
        let raw_gap = self.gap.sample(rng);
        let hour = (self.cursor_minutes / 60.0) % 24.0;
        // Working hours (9-21h local) submit faster.
        let modulation = if (9.0..21.0).contains(&hour) {
            1.0 - self.diurnal_amp * 0.5
        } else {
            1.0 + self.diurnal_amp
        };
        self.cursor_minutes =
            (self.cursor_minutes + raw_gap * modulation) % horizon.as_minutes() as f64;
        if rng.random::<f64>() < self.campaign_prob {
            // Geometric count with the configured mean.
            let p = 1.0 / self.campaign_mean.max(1.0);
            let mut count = 0u32;
            while rng.random::<f64>() > p && count < 64 {
                count += 1;
            }
            self.pending_campaign = count;
        }
        SimTime::from_minutes(self.cursor_minutes as u64)
    }
}

/// The Section 3 motivating workload: a three-day trace with
/// exponentially distributed inter-arrivals (mean 48 min), exponentially
/// distributed lengths (mean 4 h), and one CPU per job — an average
/// demand of five CPUs.
///
/// # Examples
///
/// ```
/// use gaia_workload::synth::section3_workload;
///
/// let trace = section3_workload(7);
/// let demand = trace.mean_demand();
/// assert!(demand > 2.5 && demand < 8.5, "demand {demand}");
/// ```
pub fn section3_workload(seed: u64) -> WorkloadTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC7_1003);
    let interarrival = Exponential::with_mean(48.0);
    let length = Exponential::with_mean(240.0);
    let horizon = Minutes::from_days(3);
    let mut jobs = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += interarrival.sample(&mut rng);
        if t >= horizon.as_minutes() as f64 {
            break;
        }
        let len = (length.sample(&mut rng).round() as u64).max(1);
        jobs.push(Job::new(
            JobId(0),
            SimTime::from_minutes(t as u64),
            Minutes::new(len),
            1,
        ));
    }
    WorkloadTrace::from_jobs(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_time::MINUTES_PER_HOUR;

    #[test]
    fn deterministic_per_seed() {
        let a = TraceFamily::AlibabaPai.generate_raw(500, Minutes::from_days(7), 1);
        let b = TraceFamily::AlibabaPai.generate_raw(500, Minutes::from_days(7), 1);
        let c = TraceFamily::AlibabaPai.generate_raw(500, Minutes::from_days(7), 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn families_use_distinct_streams() {
        let a = TraceFamily::AlibabaPai.generate_raw(100, Minutes::from_days(7), 1);
        let b = TraceFamily::AzureVm.generate_raw(100, Minutes::from_days(7), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn alibaba_tiny_job_fraction_matches_paper() {
        // §6.1: 38% of Alibaba-PAI jobs are under five minutes...
        let raw = TraceFamily::AlibabaPai.generate_raw(20_000, Minutes::from_days(60), 3);
        let tiny =
            raw.iter().filter(|j| j.length < Minutes::new(5)).count() as f64 / raw.len() as f64;
        assert!((tiny - 0.38).abs() < 0.03, "tiny fraction {tiny}");
        // ...but contribute well under 2% of the compute cycles.
        let tiny_cpu: u64 = raw
            .iter()
            .filter(|j| j.length < Minutes::new(5))
            .map(|j| j.cpu_minutes())
            .sum();
        let share = tiny_cpu as f64 / raw.total_cpu_minutes() as f64;
        assert!(share < 0.02, "tiny compute share {share}");
    }

    #[test]
    fn mustang_respects_sixteen_hour_cap() {
        let raw = TraceFamily::MustangHpc.generate_raw(20_000, Minutes::from_days(60), 3);
        assert!(raw.iter().all(|j| j.length <= Minutes::from_hours(16)));
    }

    #[test]
    fn azure_has_multi_day_jobs() {
        let raw = TraceFamily::AzureVm.generate_raw(20_000, Minutes::from_days(60), 3);
        let multi_day = raw
            .iter()
            .filter(|j| j.length > Minutes::from_days(1))
            .count();
        assert!(multi_day > 100, "multi-day jobs {multi_day}");
    }

    #[test]
    fn demand_cov_ordering_matches_section_6_4_4() {
        // §6.4.4: demand CoV — Mustang ≈ 0.8 (bursty), Azure ≈ 0.3 (smooth).
        let mustang = TraceFamily::MustangHpc
            .year_long(12_000, 5)
            .demand_curve()
            .cov();
        let azure = TraceFamily::AzureVm
            .year_long(12_000, 5)
            .demand_curve()
            .cov();
        assert!(
            mustang > azure + 0.2,
            "Mustang CoV {mustang} must clearly exceed Azure CoV {azure}"
        );
        assert!(mustang > 0.5 && mustang < 1.3, "Mustang CoV {mustang}");
        assert!(azure > 0.1 && azure < 0.6, "Azure CoV {azure}");
    }

    #[test]
    fn week_long_trace_matches_prototype_setup() {
        let trace = TraceFamily::AlibabaPai.week_long_1k(11);
        assert_eq!(trace.len(), 1000);
        assert!(trace.max_cpus() <= 4, "cpus capped at 4 (§6.1)");
        assert!(trace.iter().all(|j| j.length >= Minutes::new(5)));
        assert!(trace.iter().all(|j| j.length <= Minutes::from_days(3)));
        assert!(trace.last_arrival().expect("non-empty") < SimTime::from_days(7));
    }

    #[test]
    fn year_long_sample_counts() {
        let trace = TraceFamily::AzureVm.year_long(5_000, 2);
        assert_eq!(trace.len(), 5_000);
        assert!(trace.last_arrival().expect("non-empty") < SimTime::from_days(365));
    }

    #[test]
    fn about_half_of_filtered_alibaba_jobs_are_short() {
        // Figure 9: jobs ≤ 1 h are almost 50% of the filtered trace.
        let trace = TraceFamily::AlibabaPai.year_long(10_000, 4);
        let stats = trace.stats();
        assert!(
            (stats.frac_short_1h - 0.5).abs() < 0.15,
            "short fraction {}",
            stats.frac_short_1h
        );
    }

    #[test]
    fn section3_trace_statistics() {
        let trace = section3_workload(1);
        // ~90 arrivals over three days.
        assert!(
            trace.len() > 50 && trace.len() < 140,
            "jobs {}",
            trace.len()
        );
        assert!(trace.iter().all(|j| j.cpus == 1));
        let mean_len: f64 = trace
            .iter()
            .map(|j| j.length.as_minutes() as f64)
            .sum::<f64>()
            / trace.len() as f64;
        assert!(
            (mean_len - 240.0).abs() < 90.0,
            "mean length {mean_len} far from 4 h"
        );
        // Average demand near five CPUs (paper Section 3).
        let demand = trace.mean_demand();
        assert!(demand > 2.0 && demand < 9.0, "demand {demand}");
    }

    #[test]
    fn mean_lengths_are_hours_scale() {
        for family in TraceFamily::ALL {
            let trace = family.year_long(4_000, 9);
            let mean_h = trace.stats().mean_length.as_minutes() as f64 / MINUTES_PER_HOUR as f64;
            assert!(
                mean_h > 1.0 && mean_h < 24.0,
                "{family:?} mean length {mean_h} h"
            );
        }
    }
}
