//! Seedable distribution samplers used by the workload synthesizers.
//!
//! Implemented by hand (inverse-CDF and Box–Muller) so the crate's only
//! randomness dependency is `rand` itself; every sampler is deterministic
//! given the caller's RNG state and is unit-tested against its analytic
//! moments.

use std::f64::consts::TAU;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A continuous distribution that can be sampled with any [`Rng`].
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Exponential distribution with the given mean (inverse-CDF sampling).
///
/// # Examples
///
/// ```
/// use gaia_workload::dist::{Exponential, Sample};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = Exponential::with_mean(240.0);
/// assert!(d.sample(&mut rng) >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { mean }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: -mean * ln(1 - u); 1-u in (0,1] avoids ln(0).
        let u: f64 = rng.random();
        -self.mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }
}

/// Lognormal distribution parameterized by the median and the log-space
/// standard deviation `sigma` (Box–Muller sampling).
///
/// The median parameterization is far more intuitive for workload
/// modelling than `(mu, sigma)`: half the jobs are shorter than the
/// median, and `sigma` dials tail heaviness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with the given median and log-space sigma.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not positive or `sigma` is negative.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(
            median.is_finite() && median > 0.0,
            "median must be positive"
        );
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative"
        );
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Analytic mean: `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// The distribution median.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Used for heavy-tailed parallel-job widths (MPI node counts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min.is_finite() && x_min > 0.0, "x_min must be positive");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        Pareto { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.x_min / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / self.alpha)
    }
}

/// A distribution clamped into `[lo, hi]` by resampling (up to a bounded
/// number of attempts, then clamping), preserving the interior shape
/// without the mass spikes plain clamping creates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Truncated<D> {
    inner: D,
    lo: f64,
    hi: f64,
}

impl<D: Sample> Truncated<D> {
    /// Restricts `inner` to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(inner: D, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "truncation bounds inverted");
        Truncated { inner, lo, hi }
    }
}

impl<D: Sample> Sample for Truncated<D> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        for _ in 0..64 {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        // Pathological configuration (bounds deep in the tail): clamp.
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

/// A discrete distribution over weighted alternatives, sampled by
/// cumulative-weight inversion.
///
/// # Examples
///
/// ```
/// use gaia_workload::dist::Discrete;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let cpus = Discrete::new(vec![(1u32, 0.6), (2, 0.3), (4, 0.1)]);
/// let v = cpus.sample(&mut rng);
/// assert!([1, 2, 4].contains(&v));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discrete<T> {
    items: Vec<(T, f64)>,
    total: f64,
}

impl<T: Clone> Discrete<T> {
    /// Creates a discrete distribution from `(value, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(items: Vec<(T, f64)>) -> Self {
        assert!(
            !items.is_empty(),
            "discrete distribution needs alternatives"
        );
        assert!(
            items.iter().all(|(_, w)| w.is_finite() && *w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = items.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "at least one weight must be positive");
        Discrete { items, total }
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let mut target = rng.random::<f64>() * self.total;
        for (value, weight) in &self.items {
            if target < *weight {
                return value.clone();
            }
            target -= weight;
        }
        // Floating-point slack: return the last alternative.
        self.items.last().expect("non-empty").0.clone()
    }

    /// Expected value when `T` converts to f64 via the provided mapper.
    pub fn mean_by(&self, f: impl Fn(&T) -> f64) -> f64 {
        self.items.iter().map(|(v, w)| f(v) * w).sum::<f64>() / self.total
    }
}

/// Samples a standard normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn exponential_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Exponential::with_mean(100.0);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        assert!((var.sqrt() - 100.0).abs() < 3.0, "sd {}", var.sqrt());
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_median_and_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = LogNormal::with_median(60.0, 1.2);
        assert_eq!(d.median(), 60.0f64.ln().exp());
        let mut samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let empirical_median = samples[samples.len() / 2];
        assert!(
            (empirical_median / 60.0 - 1.0).abs() < 0.05,
            "median {empirical_median}"
        );
        let empirical_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (empirical_mean / d.mean() - 1.0).abs() < 0.05,
            "mean {empirical_mean}"
        );
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Pareto::new(2.0, 1.5);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 2.0));
        // Mean of Pareto(2, 1.5) = alpha*xmin/(alpha-1) = 6.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 6.0).abs() < 0.7, "mean {mean}");
    }

    #[test]
    fn truncation_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Truncated::new(LogNormal::with_median(60.0, 2.0), 5.0, 4320.0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((5.0..=4320.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn truncation_pathological_falls_back_to_clamp() {
        // Bounds far in the tail: resampling fails, clamp must kick in.
        let mut rng = StdRng::seed_from_u64(42);
        let d = Truncated::new(Exponential::with_mean(1.0), 1000.0, 1001.0);
        let x = d.sample(&mut rng);
        assert!((1000.0..=1001.0).contains(&x));
    }

    #[test]
    fn discrete_frequencies() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Discrete::new(vec![("a", 0.7), ("b", 0.2), ("c", 0.1)]);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(d.sample(&mut rng)).or_insert(0u64) += 1;
        }
        assert!((counts["a"] as f64 / 100_000.0 - 0.7).abs() < 0.01);
        assert!((counts["b"] as f64 / 100_000.0 - 0.2).abs() < 0.01);
        assert!((counts["c"] as f64 / 100_000.0 - 0.1).abs() < 0.01);
    }

    #[test]
    fn discrete_mean_by() {
        let d = Discrete::new(vec![(1u32, 1.0), (3, 1.0)]);
        assert!((d.mean_by(|v| *v as f64) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn discrete_zero_weight_never_sampled() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Discrete::new(vec![("never", 0.0), ("always", 1.0)]);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), "always");
        }
    }

    #[test]
    #[should_panic(expected = "needs alternatives")]
    fn discrete_rejects_empty() {
        let _ = Discrete::<u32>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn discrete_rejects_all_zero_weights() {
        let _ = Discrete::new(vec![(1u32, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_nonpositive_mean() {
        let _ = Exponential::with_mean(0.0);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn truncated_rejects_inverted_bounds() {
        let _ = Truncated::new(Exponential::with_mean(1.0), 2.0, 1.0);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let d = LogNormal::with_median(60.0, 1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
