//! The [`WorkloadTrace`] container and its demand statistics.

use std::fmt;

use gaia_time::{Minutes, SimTime, MINUTES_PER_HOUR};
use serde::{Deserialize, Serialize};

use crate::{Job, JobId};

/// An arrival-ordered collection of jobs replayed by the simulator.
///
/// Construction validates arrival ordering and re-assigns dense
/// [`JobId`]s so that per-job accounting can index plain vectors.
///
/// # Examples
///
/// ```
/// use gaia_workload::{Job, JobId, WorkloadTrace};
/// use gaia_time::{Minutes, SimTime};
///
/// let trace = WorkloadTrace::from_jobs(vec![
///     Job::new(JobId(0), SimTime::ORIGIN, Minutes::from_hours(1), 1),
///     Job::new(JobId(0), SimTime::from_hours(2), Minutes::from_hours(4), 2),
/// ]);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.jobs()[1].id, JobId(1)); // ids re-densified
/// assert_eq!(trace.total_cpu_minutes(), 60 + 480);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    jobs: Vec<Job>,
}

impl WorkloadTrace {
    /// Builds a trace from jobs, sorting by arrival (stable, so equal
    /// arrivals keep their submission order) and re-assigning dense ids.
    pub fn from_jobs(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| j.arrival);
        for (idx, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(idx as u64);
        }
        WorkloadTrace { jobs }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Iterates over the jobs in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Job> {
        self.jobs.iter()
    }

    /// The arrival of the last job (None for an empty trace).
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.jobs.last().map(|j| j.arrival)
    }

    /// The latest completion instant if every job ran at arrival —
    /// a lower bound on any simulation horizon.
    pub fn nominal_makespan(&self) -> SimTime {
        self.jobs
            .iter()
            .map(|j| j.end_if_started_at(j.arrival))
            .max()
            .unwrap_or(SimTime::ORIGIN)
    }

    /// Total compute demand, in CPU-minutes.
    pub fn total_cpu_minutes(&self) -> u64 {
        self.jobs.iter().map(|j| j.cpu_minutes()).sum()
    }

    /// The largest single-job CPU requirement (0 for an empty trace).
    pub fn max_cpus(&self) -> u32 {
        self.jobs.iter().map(|j| j.cpus).max().unwrap_or(0)
    }

    /// Average concurrent CPU demand if jobs ran at arrival, over the
    /// nominal makespan — the quantity the paper sets reserved capacity
    /// to ("R is selected as the trace's mean demand", Figure 17).
    pub fn mean_demand(&self) -> f64 {
        let horizon = self.nominal_makespan().as_minutes();
        if horizon == 0 {
            return 0.0;
        }
        self.total_cpu_minutes() as f64 / horizon as f64
    }

    /// Keeps only jobs satisfying `predicate` (ids re-densified).
    pub fn filter(&self, predicate: impl FnMut(&&Job) -> bool) -> WorkloadTrace {
        WorkloadTrace::from_jobs(self.jobs.iter().filter(predicate).copied().collect())
    }

    /// Computes the hourly concurrent-demand curve of the as-submitted
    /// schedule (every job running `[arrival, arrival + length)`).
    pub fn demand_curve(&self) -> DemandCurve {
        DemandCurve::from_jobs(&self.jobs)
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }
}

impl fmt::Display for WorkloadTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WorkloadTrace({} jobs, {:.1} mean CPUs, span {})",
            self.len(),
            self.mean_demand(),
            self.nominal_makespan()
        )
    }
}

impl<'a> IntoIterator for &'a WorkloadTrace {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

/// The hourly concurrent CPU-demand curve of a set of job intervals.
///
/// Built with a sweep over interval endpoints; used to compute the demand
/// coefficient of variation the paper reports (§6.4.4: Mustang 0.8,
/// Azure 0.3) and to visualize allocations (Figure 2a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandCurve {
    /// Average concurrent CPUs during each hour from the origin.
    hourly: Vec<f64>,
}

impl DemandCurve {
    /// Computes the curve for jobs running `[arrival, arrival+length)`.
    pub fn from_jobs(jobs: &[Job]) -> DemandCurve {
        Self::from_intervals(
            jobs.iter()
                .map(|j| (j.arrival, j.end_if_started_at(j.arrival), j.cpus)),
        )
    }

    /// Computes the curve for arbitrary `(start, end, cpus)` intervals.
    pub fn from_intervals(
        intervals: impl IntoIterator<Item = (SimTime, SimTime, u32)>,
    ) -> DemandCurve {
        // Difference array over minutes is too big for year-long traces;
        // accumulate per-hour overlap directly.
        let mut hourly: Vec<f64> = Vec::new();
        for (start, end, cpus) in intervals {
            if end <= start {
                continue;
            }
            let end_hour = end.as_minutes().div_ceil(MINUTES_PER_HOUR) as usize;
            if hourly.len() < end_hour {
                hourly.resize(end_hour, 0.0);
            }
            for span in gaia_time::HourlySlots::new(start, end) {
                hourly[span.hour as usize] += span.fraction() * cpus as f64;
            }
        }
        DemandCurve { hourly }
    }

    /// Average concurrent CPUs during each hour.
    pub fn hourly(&self) -> &[f64] {
        &self.hourly
    }

    /// Mean of the hourly curve.
    pub fn mean(&self) -> f64 {
        if self.hourly.is_empty() {
            return 0.0;
        }
        self.hourly.iter().sum::<f64>() / self.hourly.len() as f64
    }

    /// Coefficient of variation (std-dev / mean) of the hourly curve.
    pub fn cov(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .hourly
            .iter()
            .map(|d| (d - mean) * (d - mean))
            .sum::<f64>()
            / self.hourly.len() as f64;
        var.sqrt() / mean
    }

    /// Peak hourly demand.
    pub fn peak(&self) -> f64 {
        self.hourly.iter().cloned().fold(0.0, f64::max)
    }

    /// The `q`-quantile of hourly demand (`0.0..=1.0`), nearest-rank.
    /// Returns 0 for an empty curve.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.hourly.is_empty() {
            return 0.0;
        }
        let mut sorted = self.hourly.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("demand is finite"));
        sorted[((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize]
    }
}

/// Summary statistics of a workload trace (paper Figure 5's axes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean job length.
    pub mean_length: Minutes,
    /// Median job length.
    pub median_length: Minutes,
    /// Longest job.
    pub max_length: Minutes,
    /// Fraction of jobs no longer than one hour.
    pub frac_short_1h: f64,
    /// Mean per-job CPU requirement.
    pub mean_cpus: f64,
    /// Mean concurrent demand (CPUs).
    pub mean_demand: f64,
    /// Coefficient of variation of the hourly demand curve.
    pub demand_cov: f64,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn of(trace: &WorkloadTrace) -> TraceStats {
        let jobs = trace.jobs();
        if jobs.is_empty() {
            return TraceStats {
                jobs: 0,
                mean_length: Minutes::ZERO,
                median_length: Minutes::ZERO,
                max_length: Minutes::ZERO,
                frac_short_1h: 0.0,
                mean_cpus: 0.0,
                mean_demand: 0.0,
                demand_cov: 0.0,
            };
        }
        let mut lengths: Vec<u64> = jobs.iter().map(|j| j.length.as_minutes()).collect();
        lengths.sort_unstable();
        let curve = trace.demand_curve();
        TraceStats {
            jobs: jobs.len(),
            mean_length: Minutes::new(lengths.iter().sum::<u64>() / lengths.len() as u64),
            median_length: Minutes::new(lengths[lengths.len() / 2]),
            max_length: Minutes::new(*lengths.last().expect("non-empty")),
            frac_short_1h: lengths.iter().filter(|&&l| l <= MINUTES_PER_HOUR).count() as f64
                / lengths.len() as f64,
            mean_cpus: jobs.iter().map(|j| j.cpus as f64).sum::<f64>() / jobs.len() as f64,
            mean_demand: trace.mean_demand(),
            demand_cov: curve.cov(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival_h: u64, len_min: u64, cpus: u32) -> Job {
        Job::new(
            JobId(0),
            SimTime::from_hours(arrival_h),
            Minutes::new(len_min),
            cpus,
        )
    }

    #[test]
    fn sorts_and_redensifies_ids() {
        let trace = WorkloadTrace::from_jobs(vec![job(5, 10, 1), job(1, 10, 1), job(3, 10, 1)]);
        let arrivals: Vec<u64> = trace.iter().map(|j| j.arrival.as_hours_floor()).collect();
        assert_eq!(arrivals, vec![1, 3, 5]);
        let ids: Vec<u64> = trace.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let trace = WorkloadTrace::from_jobs(vec![]);
        assert!(trace.is_empty());
        assert_eq!(trace.nominal_makespan(), SimTime::ORIGIN);
        assert_eq!(trace.mean_demand(), 0.0);
        assert_eq!(trace.max_cpus(), 0);
        assert_eq!(trace.last_arrival(), None);
        let stats = trace.stats();
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    fn mean_demand_of_back_to_back_jobs() {
        // Two 1-cpu jobs, each 1 hour, back to back: mean demand 1.0.
        let trace = WorkloadTrace::from_jobs(vec![job(0, 60, 1), job(1, 60, 1)]);
        assert!((trace.mean_demand() - 1.0).abs() < 1e-12);
        assert_eq!(trace.total_cpu_minutes(), 120);
    }

    #[test]
    fn demand_curve_counts_overlap() {
        // Job A: hours [0,2) at 2 cpus. Job B: hours [1,3) at 1 cpu.
        let trace = WorkloadTrace::from_jobs(vec![job(0, 120, 2), job(1, 120, 1)]);
        let curve = trace.demand_curve();
        assert_eq!(curve.hourly().len(), 3);
        assert!((curve.hourly()[0] - 2.0).abs() < 1e-12);
        assert!((curve.hourly()[1] - 3.0).abs() < 1e-12);
        assert!((curve.hourly()[2] - 1.0).abs() < 1e-12);
        assert!((curve.peak() - 3.0).abs() < 1e-12);
        assert!((curve.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn demand_curve_partial_hours() {
        // 30-minute 2-cpu job contributes 1.0 average cpu to its hour.
        let trace = WorkloadTrace::from_jobs(vec![job(0, 30, 2)]);
        let curve = trace.demand_curve();
        assert!((curve.hourly()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cov_zero_for_constant_demand() {
        let trace = WorkloadTrace::from_jobs(vec![job(0, 180, 2)]);
        assert!(trace.demand_curve().cov() < 1e-12);
    }

    #[test]
    fn quantiles_of_demand() {
        let curve = DemandCurve::from_intervals(vec![
            (SimTime::from_hours(0), SimTime::from_hours(1), 1),
            (SimTime::from_hours(1), SimTime::from_hours(2), 3),
        ]);
        assert_eq!(curve.quantile(0.0), 1.0);
        assert_eq!(curve.quantile(1.0), 3.0);
    }

    #[test]
    fn stats_of_known_trace() {
        let trace = WorkloadTrace::from_jobs(vec![
            job(0, 30, 1),  // short
            job(1, 60, 2),  // short (== 1h)
            job(2, 600, 4), // long
        ]);
        let stats = trace.stats();
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.mean_length, Minutes::new(230));
        assert_eq!(stats.median_length, Minutes::new(60));
        assert_eq!(stats.max_length, Minutes::new(600));
        assert!((stats.frac_short_1h - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.mean_cpus - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn filter_preserves_order_and_redensifies() {
        let trace = WorkloadTrace::from_jobs(vec![job(0, 30, 1), job(1, 600, 1), job(2, 45, 1)]);
        let short = trace.filter(|j| j.length < Minutes::from_hours(1));
        assert_eq!(short.len(), 2);
        assert_eq!(short.jobs()[1].id, JobId(1));
        assert_eq!(short.jobs()[1].length, Minutes::new(45));
    }

    #[test]
    fn display_mentions_job_count() {
        let trace = WorkloadTrace::from_jobs(vec![job(0, 30, 1)]);
        assert!(trace.to_string().contains("1 jobs"));
    }
}
