//! Elasticity model: per-job scaling curves with diminishing returns.
//!
//! CarbonScaler (Hanafy et al., SoCC '23) varies a job's *parallelism*
//! with carbon intensity instead of (or in addition to) shifting it in
//! time: run wide when the grid is green, narrow or paused when it is
//! dirty. The key modelling input is the job's **scaling curve** — the
//! speedup `s(k)` obtained from `k` workers — which for real workloads
//! exhibits diminishing marginal throughput: `s(k) - s(k-1)` shrinks as
//! `k` grows, so each extra worker buys less work per carbon gram.
//!
//! This module provides that input in two layers, mirroring how
//! [`crate::ladder`] generalizes the two-queue model:
//!
//! * [`ScalingCurve`] — an analytic or tabulated speedup profile.
//! * [`SpeedupLadder`] — the curve sampled at integer widths
//!   `1..=max_width` into milli-speedup fixed point, the form policies
//!   consume (no floats on the planning hot path, so plans stay
//!   bit-deterministic across platforms).
//!
//! All speedups are stored as **milli-speedups** (`1000 ×` the
//! dimensionless value): a worker-hour at width `k` completes
//! `speedup_milli(k)` milli-minutes of serial work per wall minute.
//!
//! # Examples
//!
//! ```
//! use gaia_workload::elastic::{ElasticProfile, ScalingCurve, SpeedupLadder};
//!
//! // A 5%-serial-fraction Amdahl job scaled up to 8 workers.
//! let ladder = SpeedupLadder::sample(&ScalingCurve::amdahl(0.05), 8);
//! assert_eq!(ladder.speedup_milli(1), 1000); // width 1 is the serial baseline
//! assert!(ladder.speedup_milli(8) > ladder.speedup_milli(4));
//! // Diminishing marginal throughput: the 8th worker adds less than the 2nd.
//! assert!(ladder.marginal_milli(8) < ladder.marginal_milli(2));
//!
//! // The default profile used by the CarbonScale policy family.
//! let profile = ElasticProfile::default();
//! assert_eq!(profile.max_width(), 8);
//! ```

use serde::{Deserialize, Serialize};

/// An analytic or tabulated speedup profile `s(k)`.
///
/// The curve is a *model* of the job: policies never evaluate it
/// directly but sample it into a [`SpeedupLadder`] once. Curves must be
/// well-formed — `s(1) = 1`, nondecreasing, with nonincreasing marginal
/// gains — which the constructors and [`SpeedupLadder::sample`] enforce.
///
/// # Examples
///
/// ```
/// use gaia_workload::elastic::ScalingCurve;
///
/// let amdahl = ScalingCurve::amdahl(0.10);
/// assert!((amdahl.speedup(2) - 1.818).abs() < 1e-3);
///
/// // An explicitly measured profile (milli-speedups at widths 1, 2, 3).
/// let table = ScalingCurve::table(vec![1000, 1900, 2500]);
/// assert_eq!(table.speedup(3), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalingCurve {
    /// Amdahl's law with the given serial fraction `f` stored in
    /// milli-units: `s(k) = 1 / (f + (1 - f) / k)`.
    Amdahl {
        /// Serial fraction in milli-units (`0..=1000`).
        serial_milli: u32,
    },
    /// A measured profile: milli-speedups at widths `1, 2, …`.
    Table {
        /// `milli[k-1]` is the milli-speedup at width `k`; `milli[0]`
        /// must be `1000`.
        milli: Vec<u32>,
    },
}

impl ScalingCurve {
    /// An Amdahl's-law curve with serial fraction `f` (clamped to
    /// `[0, 1]`): `s(k) = 1 / (f + (1 - f) / k)`.
    ///
    /// `f = 0` is perfectly parallel (`s(k) = k`); `f = 1` does not
    /// scale at all (`s(k) = 1`).
    pub fn amdahl(serial_fraction: f64) -> ScalingCurve {
        let clamped = serial_fraction.clamp(0.0, 1.0);
        ScalingCurve::Amdahl {
            serial_milli: (clamped * 1000.0).round() as u32,
        }
    }

    /// A tabulated curve from measured milli-speedups at widths
    /// `1, 2, …, milli.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, does not start at `1000` (serial
    /// baseline), decreases anywhere, or has increasing marginal gains
    /// (super-linear segments would let a planner manufacture work).
    pub fn table(milli: Vec<u32>) -> ScalingCurve {
        assert!(!milli.is_empty(), "a scaling table needs at least width 1");
        assert_eq!(milli[0], 1000, "width 1 must have milli-speedup 1000");
        let mut prev_gain = u32::MAX;
        for pair in milli.windows(2) {
            assert!(pair[1] >= pair[0], "speedup must be nondecreasing");
            let gain = pair[1] - pair[0];
            assert!(gain <= prev_gain, "marginal throughput must not increase");
            prev_gain = gain;
        }
        ScalingCurve::Table { milli }
    }

    /// The dimensionless speedup `s(width)`; `width` is clamped to at
    /// least 1 (and, for tables, to the last measured width).
    pub fn speedup(&self, width: u32) -> f64 {
        f64::from(self.speedup_milli(width)) / 1000.0
    }

    /// The milli-speedup at `width` (fixed point; see module docs).
    pub fn speedup_milli(&self, width: u32) -> u32 {
        let k = width.max(1);
        match self {
            ScalingCurve::Amdahl { serial_milli } => {
                // s(k) = 1 / (f + (1-f)/k)   with f in milli-units:
                // milli(k) = 1000 * 1000 * k / (f*k + (1000-f))
                let f = u64::from(*serial_milli);
                let k = u64::from(k);
                (1_000_000 * k / (f * k + (1000 - f))) as u32
            }
            ScalingCurve::Table { milli } => {
                let idx = (k as usize - 1).min(milli.len() - 1);
                milli[idx]
            }
        }
    }
}

/// A [`ScalingCurve`] sampled at integer widths `1..=max_width`.
///
/// This is the form the planner consumes: integer milli-speedups, so
/// marginal-allocation comparisons are exact and identical on every
/// platform. Construction re-checks the curve invariants, which hold by
/// construction for both [`ScalingCurve`] variants but guard future
/// ones.
///
/// # Examples
///
/// ```
/// use gaia_workload::elastic::{ScalingCurve, SpeedupLadder};
///
/// let ladder = SpeedupLadder::sample(&ScalingCurve::amdahl(0.0), 4);
/// // Perfectly parallel: each worker contributes a full serial stream.
/// assert_eq!(ladder.speedup_milli(4), 4000);
/// assert_eq!(ladder.marginal_milli(3), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeedupLadder {
    milli: Vec<u32>,
}

impl SpeedupLadder {
    /// Samples `curve` at widths `1..=max_width` (`max_width` is
    /// clamped to at least 1).
    pub fn sample(curve: &ScalingCurve, max_width: u32) -> SpeedupLadder {
        let max_width = max_width.max(1);
        let milli = (1..=max_width).map(|k| curve.speedup_milli(k)).collect();
        let ladder = SpeedupLadder { milli };
        debug_assert!(ladder.is_well_formed());
        ladder
    }

    fn is_well_formed(&self) -> bool {
        if self.milli.first() != Some(&1000) {
            return false;
        }
        let mut prev_gain = u32::MAX;
        for pair in self.milli.windows(2) {
            if pair[1] < pair[0] || pair[1] - pair[0] > prev_gain {
                return false;
            }
            prev_gain = pair[1] - pair[0];
        }
        true
    }

    /// The widest sampled width.
    pub fn max_width(&self) -> u32 {
        self.milli.len() as u32
    }

    /// Milli-speedup at `width`, clamped into the sampled range.
    pub fn speedup_milli(&self, width: u32) -> u32 {
        let idx = (width.max(1) as usize - 1).min(self.milli.len() - 1);
        self.milli[idx]
    }

    /// Marginal milli-throughput of the `width`-th worker:
    /// `s(width) - s(width - 1)` (with `s(0) = 0`, so
    /// `marginal_milli(1) = 1000`).
    pub fn marginal_milli(&self, width: u32) -> u32 {
        let w = width.max(1);
        if w == 1 {
            self.speedup_milli(1)
        } else {
            self.speedup_milli(w)
                .saturating_sub(self.speedup_milli(w - 1))
        }
    }
}

/// A job-class elasticity profile: the sampled ladder plus its width
/// bound, the unit the `CarbonScale` policy family plans against.
///
/// # Examples
///
/// ```
/// use gaia_workload::elastic::{ElasticProfile, ScalingCurve};
///
/// let profile = ElasticProfile::new(ScalingCurve::amdahl(0.02), 16);
/// assert_eq!(profile.max_width(), 16);
/// assert!(profile.ladder().speedup_milli(16) > 10_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticProfile {
    curve: ScalingCurve,
    ladder: SpeedupLadder,
}

impl ElasticProfile {
    /// Samples `curve` up to `max_width` into a profile.
    pub fn new(curve: ScalingCurve, max_width: u32) -> ElasticProfile {
        let ladder = SpeedupLadder::sample(&curve, max_width);
        ElasticProfile { curve, ladder }
    }

    /// The curve this profile was sampled from.
    pub fn curve(&self) -> &ScalingCurve {
        &self.curve
    }

    /// The sampled ladder.
    pub fn ladder(&self) -> &SpeedupLadder {
        &self.ladder
    }

    /// The widest parallelism this profile permits.
    pub fn max_width(&self) -> u32 {
        self.ladder.max_width()
    }
}

impl Default for ElasticProfile {
    /// The CarbonScaler evaluation default: a 5 % serial fraction
    /// Amdahl curve scaled up to 8 workers.
    fn default() -> ElasticProfile {
        ElasticProfile::new(ScalingCurve::amdahl(0.05), 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_matches_closed_form() {
        let curve = ScalingCurve::amdahl(0.05);
        for k in 1..=32u32 {
            let expected = 1.0 / (0.05 + 0.95 / f64::from(k));
            let got = curve.speedup(k);
            assert!(
                (got - expected).abs() < 2e-3,
                "s({k}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn amdahl_extremes() {
        assert_eq!(ScalingCurve::amdahl(0.0).speedup_milli(7), 7000);
        assert_eq!(ScalingCurve::amdahl(1.0).speedup_milli(7), 1000);
        // Out-of-range fractions clamp instead of wrapping.
        assert_eq!(ScalingCurve::amdahl(3.0).speedup_milli(2), 1000);
        assert_eq!(ScalingCurve::amdahl(-1.0).speedup_milli(2), 2000);
    }

    #[test]
    fn table_clamps_beyond_last_width() {
        let curve = ScalingCurve::table(vec![1000, 1800, 2400]);
        assert_eq!(curve.speedup_milli(3), 2400);
        assert_eq!(curve.speedup_milli(9), 2400);
    }

    #[test]
    #[should_panic(expected = "marginal throughput must not increase")]
    fn table_rejects_superlinear_scaling() {
        ScalingCurve::table(vec![1000, 1500, 2500]);
    }

    #[test]
    #[should_panic(expected = "width 1 must have milli-speedup 1000")]
    fn table_rejects_bad_baseline() {
        ScalingCurve::table(vec![900]);
    }

    #[test]
    fn ladder_marginals_diminish() {
        let ladder = SpeedupLadder::sample(&ScalingCurve::amdahl(0.08), 12);
        for k in 2..=12 {
            assert!(ladder.marginal_milli(k) <= ladder.marginal_milli(k - 1));
        }
        assert_eq!(ladder.marginal_milli(1), 1000);
    }

    #[test]
    fn ladder_clamps_width_queries() {
        let ladder = SpeedupLadder::sample(&ScalingCurve::amdahl(0.0), 4);
        assert_eq!(ladder.speedup_milli(0), 1000);
        assert_eq!(ladder.speedup_milli(99), 4000);
        assert_eq!(ladder.max_width(), 4);
    }

    #[test]
    fn default_profile_is_the_carbonscaler_eval_setting() {
        let profile = ElasticProfile::default();
        assert_eq!(profile.max_width(), 8);
        assert_eq!(profile.ladder().speedup_milli(1), 1000);
        assert_eq!(profile.curve(), &ScalingCurve::Amdahl { serial_milli: 50 });
    }

    #[test]
    fn profile_equality_follows_curve_and_width() {
        let profile = ElasticProfile::new(ScalingCurve::table(vec![1000, 1700]), 2);
        let same = ElasticProfile::new(ScalingCurve::table(vec![1000, 1700]), 2);
        assert_eq!(profile, same);
        assert_ne!(
            profile,
            ElasticProfile::new(ScalingCurve::table(vec![1000, 1700]), 3)
        );
        assert_ne!(profile, ElasticProfile::default());
    }
}
