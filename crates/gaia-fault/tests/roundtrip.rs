//! Property suite for the fault-file format: serializing any `FaultPlan`
//! and parsing it back must reproduce the plan bit-for-bit (including the
//! f64 multipliers), and the canonical writer must be a fixed point.

use gaia_fault::{FaultPlan, FaultSpec};
use gaia_time::SimTime;
use proptest::prelude::*;

const KEYS: [&str; 4] = ["", "s42", "carbon-time/sa-au", "quote\"back\\slash\tté"];

type RawSpec = (u8, u64, u64, f64, u64, usize);

fn spec_from((kind, a, len, mult, small, strdx): RawSpec) -> FaultSpec {
    let start = SimTime::from_minutes(a);
    let end = SimTime::from_minutes(a + len);
    match kind {
        0 => FaultSpec::EvictionStorm {
            start,
            end,
            multiplier: mult,
        },
        1 => FaultSpec::ForecastOutage { start, end },
        2 => FaultSpec::PriceSpike {
            start,
            end,
            multiplier: mult,
        },
        3 => FaultSpec::CapacityDrop {
            start,
            end,
            cap: small as u32,
        },
        4 => FaultSpec::TraceGap {
            start_hour: a % 8760,
            hours: 1 + len % 48,
        },
        _ => FaultSpec::ChaosCell {
            key_substr: KEYS[strdx].to_string(),
            fail_attempts: small as u32,
        },
    }
}

fn multiplier_bits(spec: &FaultSpec) -> Option<u64> {
    match *spec {
        FaultSpec::EvictionStorm { multiplier, .. } | FaultSpec::PriceSpike { multiplier, .. } => {
            Some(multiplier.to_bits())
        }
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn fault_plan_round_trips_bit_identically(
        raw in collection::vec(
            (0u8..6, 0u64..20_000, 1u64..5_000, 0.1f64..32.0, 1u64..5, 0usize..4),
            0..8,
        )
    ) {
        let mut plan = FaultPlan::new();
        for entry in raw {
            plan.push(spec_from(entry));
        }

        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("canonical output parses");

        // Structurally equal, f64 fields bit-equal, and the writer is a
        // fixed point (serialize . parse . serialize is the identity).
        prop_assert_eq!(&back, &plan);
        for (a, b) in plan.specs().iter().zip(back.specs()) {
            prop_assert_eq!(multiplier_bits(a), multiplier_bits(b));
        }
        prop_assert_eq!(back.to_json(), text);

        // Both copies compile to the same schedule.
        let compiled = plan.compile().expect("generated plans are valid");
        prop_assert_eq!(back.compile().expect("round-tripped plan compiles"), compiled);
    }
}
