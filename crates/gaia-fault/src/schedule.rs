//! The compiled, query-oriented form of a fault plan.

use gaia_time::SimTime;

use crate::plan::{FaultPlan, FaultSpec};

/// A [`FaultPlan`] compiled for O(windows) point queries by the engine.
///
/// Built via [`FaultPlan::compile`]. All queries are pure functions of the
/// schedule and the queried instant, so injection is deterministic; the
/// `has_*` predicates let consumers skip fault branches entirely when a
/// fault family is absent, keeping unfaulted runs bit-identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    specs: Vec<FaultSpec>,
    storms: Vec<(SimTime, SimTime, f64)>,
    outages: Vec<(SimTime, SimTime)>,
    spikes: Vec<(SimTime, SimTime, f64)>,
    caps: Vec<(SimTime, SimTime, u32)>,
    gaps: Vec<(u64, u64)>,
    chaos: Vec<(String, u32)>,
    gap_hours_total: u64,
}

impl FaultSchedule {
    pub(crate) fn build(plan: &FaultPlan) -> FaultSchedule {
        let mut schedule = FaultSchedule {
            specs: plan.specs().to_vec(),
            ..FaultSchedule::default()
        };
        for spec in plan.specs() {
            match *spec {
                FaultSpec::EvictionStorm {
                    start,
                    end,
                    multiplier,
                } => schedule.storms.push((start, end, multiplier)),
                FaultSpec::ForecastOutage { start, end } => {
                    schedule.outages.push((start, end));
                }
                FaultSpec::PriceSpike {
                    start,
                    end,
                    multiplier,
                } => schedule.spikes.push((start, end, multiplier)),
                FaultSpec::CapacityDrop { start, end, cap } => {
                    schedule.caps.push((start, end, cap));
                }
                FaultSpec::TraceGap { start_hour, hours } => {
                    schedule.gaps.push((start_hour, hours));
                }
                FaultSpec::ChaosCell {
                    ref key_substr,
                    fail_attempts,
                } => schedule.chaos.push((key_substr.clone(), fail_attempts)),
            }
        }
        schedule.gap_hours_total = union_hours(&schedule.gaps);
        schedule
    }

    /// True when the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The original fault entries, in plan order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True when the plan contains eviction storms.
    pub fn has_storms(&self) -> bool {
        !self.storms.is_empty()
    }

    /// True when the plan contains forecast outages.
    pub fn has_outages(&self) -> bool {
        !self.outages.is_empty()
    }

    /// True when the plan contains price spikes.
    pub fn has_spikes(&self) -> bool {
        !self.spikes.is_empty()
    }

    /// True when the plan contains capacity drops.
    pub fn has_capacity_drops(&self) -> bool {
        !self.caps.is_empty()
    }

    /// True when the plan contains carbon-trace gaps.
    pub fn has_gaps(&self) -> bool {
        !self.gaps.is_empty()
    }

    /// True when the plan contains chaos-cell entries.
    pub fn has_chaos(&self) -> bool {
        !self.chaos.is_empty()
    }

    /// Eviction-rate multiplier in effect at `t` (1.0 outside all storms;
    /// the largest multiplier wins where storms overlap).
    pub fn storm_multiplier_at(&self, t: SimTime) -> f64 {
        self.storms
            .iter()
            .filter(|&&(start, end, _)| start <= t && t < end)
            .map(|&(_, _, m)| m)
            .fold(1.0, f64::max)
    }

    /// True when a forecast outage covers `t`.
    pub fn outage_at(&self, t: SimTime) -> bool {
        self.outages
            .iter()
            .any(|&(start, end)| start <= t && t < end)
    }

    /// Latest end among outage windows covering `t`.
    pub fn outage_until(&self, t: SimTime) -> Option<SimTime> {
        self.outages
            .iter()
            .filter(|&&(start, end)| start <= t && t < end)
            .map(|&(_, end)| end)
            .max()
    }

    /// Elastic-price multiplier in effect at `t` (1.0 outside all spikes;
    /// the largest multiplier wins where spikes overlap).
    pub fn price_multiplier_at(&self, t: SimTime) -> f64 {
        self.spikes
            .iter()
            .filter(|&&(start, end, _)| start <= t && t < end)
            .map(|&(_, _, m)| m)
            .fold(1.0, f64::max)
    }

    /// Tightest capacity clamp in effect at `t`, if any.
    pub fn capacity_cap_at(&self, t: SimTime) -> Option<u32> {
        self.caps
            .iter()
            .filter(|&&(start, end, _)| start <= t && t < end)
            .map(|&(_, _, cap)| cap)
            .min()
    }

    /// Sorted, deduplicated window boundaries of every capacity drop — the
    /// instants at which the engine must re-drain its capacity queue.
    pub fn capacity_boundaries(&self) -> Vec<SimTime> {
        let mut bounds: Vec<SimTime> = self
            .caps
            .iter()
            .flat_map(|&(start, end, _)| [start, end])
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        bounds
    }

    /// Missing-hour ranges as `(start_hour, hours)` pairs, in plan order.
    pub fn gaps(&self) -> &[(u64, u64)] {
        &self.gaps
    }

    /// Total number of distinct missing hours (union of all gap ranges).
    pub fn total_gap_hours(&self) -> u64 {
        self.gap_hours_total
    }

    /// Number of leading attempts to fail for the sweep cell `key`
    /// (0 when no chaos entry matches).
    pub fn chaos_fail_attempts(&self, key: &str) -> u32 {
        self.chaos
            .iter()
            .filter(|(substr, _)| key.contains(substr.as_str()))
            .map(|&(_, attempts)| attempts)
            .max()
            .unwrap_or(0)
    }
}

fn union_hours(gaps: &[(u64, u64)]) -> u64 {
    let mut ranges: Vec<(u64, u64)> = gaps
        .iter()
        .map(|&(start, hours)| (start, start + hours))
        .collect();
    ranges.sort_unstable();
    let mut total = 0;
    let mut covered_to = 0u64;
    for (start, end) in ranges {
        let from = start.max(covered_to);
        if end > from {
            total += end - from;
            covered_to = end;
        }
        covered_to = covered_to.max(end);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    fn schedule(specs: Vec<FaultSpec>) -> FaultSchedule {
        let mut plan = FaultPlan::new();
        for spec in specs {
            plan.push(spec);
        }
        plan.compile().expect("valid plan")
    }

    #[test]
    fn empty_schedule_answers_neutrally() {
        let s = FaultPlan::new().compile().expect("empty plan");
        assert!(s.is_empty());
        assert_eq!(s.storm_multiplier_at(minute(0)), 1.0);
        assert_eq!(s.price_multiplier_at(minute(0)), 1.0);
        assert!(!s.outage_at(minute(0)));
        assert_eq!(s.capacity_cap_at(minute(0)), None);
        assert_eq!(s.total_gap_hours(), 0);
        assert_eq!(s.chaos_fail_attempts("anything"), 0);
        assert!(s.capacity_boundaries().is_empty());
    }

    #[test]
    fn windows_are_half_open_and_overlaps_resolve() {
        let s = schedule(vec![
            FaultSpec::EvictionStorm {
                start: minute(60),
                end: minute(120),
                multiplier: 2.0,
            },
            FaultSpec::EvictionStorm {
                start: minute(90),
                end: minute(180),
                multiplier: 8.0,
            },
        ]);
        assert_eq!(s.storm_multiplier_at(minute(59)), 1.0);
        assert_eq!(s.storm_multiplier_at(minute(60)), 2.0);
        assert_eq!(s.storm_multiplier_at(minute(100)), 8.0); // max wins
        assert_eq!(s.storm_multiplier_at(minute(120)), 8.0); // first ended
        assert_eq!(s.storm_multiplier_at(minute(180)), 1.0); // end exclusive
    }

    #[test]
    fn outage_until_spans_overlapping_windows() {
        let s = schedule(vec![
            FaultSpec::ForecastOutage {
                start: minute(0),
                end: minute(100),
            },
            FaultSpec::ForecastOutage {
                start: minute(50),
                end: minute(200),
            },
        ]);
        assert_eq!(s.outage_until(minute(60)), Some(minute(200)));
        assert_eq!(s.outage_until(minute(150)), Some(minute(200)));
        assert_eq!(s.outage_until(minute(200)), None);
    }

    #[test]
    fn capacity_queries_take_the_tightest_cap() {
        let s = schedule(vec![
            FaultSpec::CapacityDrop {
                start: minute(0),
                end: minute(100),
                cap: 8,
            },
            FaultSpec::CapacityDrop {
                start: minute(50),
                end: minute(150),
                cap: 2,
            },
        ]);
        assert_eq!(s.capacity_cap_at(minute(10)), Some(8));
        assert_eq!(s.capacity_cap_at(minute(60)), Some(2));
        assert_eq!(s.capacity_cap_at(minute(120)), Some(2));
        assert_eq!(s.capacity_cap_at(minute(150)), None);
        assert_eq!(
            s.capacity_boundaries(),
            vec![minute(0), minute(50), minute(100), minute(150)]
        );
    }

    #[test]
    fn gap_union_merges_overlaps() {
        let s = schedule(vec![
            FaultSpec::TraceGap {
                start_hour: 10,
                hours: 5,
            },
            FaultSpec::TraceGap {
                start_hour: 12,
                hours: 5,
            },
            FaultSpec::TraceGap {
                start_hour: 30,
                hours: 1,
            },
        ]);
        assert_eq!(s.total_gap_hours(), 8); // [10,17) ∪ [30,31)
        assert_eq!(s.gaps(), &[(10, 5), (12, 5), (30, 1)]);
    }

    #[test]
    fn chaos_matches_by_substring() {
        let s = schedule(vec![
            FaultSpec::ChaosCell {
                key_substr: "s42".into(),
                fail_attempts: 2,
            },
            FaultSpec::ChaosCell {
                key_substr: "carbon-time".into(),
                fail_attempts: 1,
            },
        ]);
        assert_eq!(s.chaos_fail_attempts("carbon-time/sa-au/s42"), 2);
        assert_eq!(s.chaos_fail_attempts("carbon-time/sa-au/s7"), 1);
        assert_eq!(s.chaos_fail_attempts("nowait/sa-au/s7"), 0);
        assert!(s.has_chaos());
    }
}
