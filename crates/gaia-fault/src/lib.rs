//! Deterministic fault injection for GAIA simulations.
//!
//! The simulator's default world is the happy path: evictions arrive from a
//! stationary process, carbon traces are complete, forecasts always answer.
//! This crate describes *adversity* as data: a [`FaultPlan`] is a typed,
//! declarative schedule of injectable events —
//!
//! * **eviction storms** — burst multipliers on the spot-eviction rate over
//!   a time window,
//! * **carbon-trace gaps** — missing hourly samples the forecaster must
//!   bridge by interpolation,
//! * **forecast outages** — windows in which forecast queries fail and
//!   policies fall back to a persistence forecast,
//! * **price spikes** — elastic-price multipliers, accounted as an explicit
//!   degradation surcharge,
//! * **capacity drops** — temporary clamps on elastic capacity, and
//! * **chaos cells** — deterministic sweep-cell failures that exercise the
//!   sweep's retry-with-backoff path.
//!
//! A plan serializes to a small JSON fault file (round-trips bit-identically;
//! see [`FaultPlan::to_json`]) and compiles into a [`FaultSchedule`], the
//! read-only query form consumed by `gaia-sim` and `gaia-sweep`.
//!
//! # Determinism contract
//!
//! Fault injection never introduces new randomness: every fault is a pure
//! function of the plan and the simulated clock, and the eviction-storm
//! multiplier feeds the engine's existing seeded eviction sampler. The same
//! `(fault file, seed)` pair therefore reproduces the same run bit-for-bit,
//! and an **empty plan is byte-identical to no plan at all** — every consumer
//! gates its fault branches on the `has_*` predicates so the unfaulted code
//! path is untouched.
//!
//! # Example
//!
//! ```
//! use gaia_fault::{FaultPlan, FaultSpec};
//! use gaia_time::{Minutes, SimTime};
//!
//! let mut plan = FaultPlan::new();
//! plan.push(FaultSpec::EvictionStorm {
//!     start: SimTime::from_hours(24),
//!     end: SimTime::from_hours(48),
//!     multiplier: 8.0,
//! });
//! plan.push(FaultSpec::ForecastOutage {
//!     start: SimTime::from_hours(60),
//!     end: SimTime::from_hours(72),
//! });
//!
//! // The fault-file format round-trips exactly.
//! let text = plan.to_json();
//! assert_eq!(FaultPlan::from_json(&text).unwrap(), plan);
//!
//! let schedule = plan.compile().unwrap();
//! assert_eq!(schedule.storm_multiplier_at(SimTime::from_hours(30)), 8.0);
//! assert_eq!(schedule.storm_multiplier_at(SimTime::from_hours(50)), 1.0);
//! assert!(schedule.outage_at(SimTime::from_hours(61)));
//! assert!(!schedule.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod plan;
mod schedule;

pub use plan::{FaultError, FaultPlan, FaultSpec};
pub use schedule::FaultSchedule;
