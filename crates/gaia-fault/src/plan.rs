//! The declarative fault-plan spec and its on-disk JSON format.

use std::fmt;
use std::fmt::Write as _;

use gaia_obs::json::{self, Value};
use gaia_time::SimTime;

use crate::schedule::FaultSchedule;

/// One injectable fault.
///
/// Time windows are half-open `[start, end)` on the simulated clock; hourly
/// ranges address trace samples by hour index.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Multiply the hourly spot-eviction rate by `multiplier` for spot runs
    /// that begin inside the window (the scaled rate is clamped to 1.0).
    EvictionStorm {
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
        /// Rate multiplier; must be finite and positive.
        multiplier: f64,
    },
    /// Forecast queries fail inside the window: the engine swaps the policy's
    /// forecast view to a persistence fallback and marks decisions degraded.
    ForecastOutage {
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
    },
    /// Elastic (on-demand / spot) prices are multiplied inside the window.
    /// The extra cost is accounted as a degradation *surcharge* so the base
    /// accounting identities — and the audit that checks them — still hold.
    PriceSpike {
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
        /// Price multiplier; must be finite and positive.
        multiplier: f64,
    },
    /// Clamp elastic capacity to `cap` CPUs inside the window (the engine's
    /// usual idle-cluster admission exception still applies, so a zero cap
    /// degrades throughput without deadlocking oversized jobs).
    CapacityDrop {
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
        /// Elastic-CPU clamp inside the window.
        cap: u32,
    },
    /// Hourly carbon samples `[start_hour, start_hour + hours)` are missing;
    /// the policy-visible trace bridges them by linear interpolation while
    /// accounting keeps the true trace.
    TraceGap {
        /// First missing hour index.
        start_hour: u64,
        /// Number of consecutive missing hours (≥ 1).
        hours: u64,
    },
    /// Deterministically fail the first `fail_attempts` attempts of every
    /// sweep cell whose key contains `key_substr` — exercises the sweep's
    /// retry-with-backoff path without any real nondeterminism.
    ChaosCell {
        /// Substring matched against the sweep cell key (empty matches all).
        key_substr: String,
        /// Number of leading attempts to fail (≥ 1).
        fail_attempts: u32,
    },
}

impl FaultSpec {
    /// Stable kind name used in the fault file and in trace events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FaultSpec::EvictionStorm { .. } => "eviction_storm",
            FaultSpec::ForecastOutage { .. } => "forecast_outage",
            FaultSpec::PriceSpike { .. } => "price_spike",
            FaultSpec::CapacityDrop { .. } => "capacity_drop",
            FaultSpec::TraceGap { .. } => "trace_gap",
            FaultSpec::ChaosCell { .. } => "chaos_cell",
        }
    }

    /// Fault window in simulated minutes (trace gaps report their hourly
    /// range as minutes; chaos cells have no window and report `(0, 0)`).
    pub fn window_minutes(&self) -> (u64, u64) {
        match *self {
            FaultSpec::EvictionStorm { start, end, .. }
            | FaultSpec::ForecastOutage { start, end }
            | FaultSpec::PriceSpike { start, end, .. }
            | FaultSpec::CapacityDrop { start, end, .. } => (start.as_minutes(), end.as_minutes()),
            FaultSpec::TraceGap { start_hour, hours } => {
                (start_hour * 60, (start_hour + hours) * 60)
            }
            FaultSpec::ChaosCell { .. } => (0, 0),
        }
    }

    /// The fault's scalar severity: a multiplier, a CPU cap, a gap length in
    /// hours, or a failed-attempt count, depending on the kind.
    pub fn magnitude(&self) -> f64 {
        match *self {
            FaultSpec::EvictionStorm { multiplier, .. }
            | FaultSpec::PriceSpike { multiplier, .. } => multiplier,
            FaultSpec::ForecastOutage { .. } => 1.0,
            FaultSpec::CapacityDrop { cap, .. } => cap as f64,
            FaultSpec::TraceGap { hours, .. } => hours as f64,
            FaultSpec::ChaosCell { fail_attempts, .. } => fail_attempts as f64,
        }
    }

    fn validate(&self) -> Result<(), FaultError> {
        let window_ok = |start: SimTime, end: SimTime| {
            if start < end {
                Ok(())
            } else {
                Err(FaultError::Invalid(format!(
                    "{}: window start {} is not before end {}",
                    self.kind_name(),
                    start.as_minutes(),
                    end.as_minutes()
                )))
            }
        };
        let multiplier_ok = |m: f64| {
            if m.is_finite() && m > 0.0 {
                Ok(())
            } else {
                Err(FaultError::Invalid(format!(
                    "{}: multiplier {m} must be finite and positive",
                    self.kind_name()
                )))
            }
        };
        match *self {
            FaultSpec::EvictionStorm {
                start,
                end,
                multiplier,
            }
            | FaultSpec::PriceSpike {
                start,
                end,
                multiplier,
            } => {
                window_ok(start, end)?;
                multiplier_ok(multiplier)
            }
            FaultSpec::ForecastOutage { start, end } => window_ok(start, end),
            FaultSpec::CapacityDrop { start, end, .. } => window_ok(start, end),
            FaultSpec::TraceGap { hours, .. } => {
                if hours >= 1 {
                    Ok(())
                } else {
                    Err(FaultError::Invalid(
                        "trace_gap: hours must be at least 1".into(),
                    ))
                }
            }
            FaultSpec::ChaosCell { fail_attempts, .. } => {
                if fail_attempts >= 1 {
                    Ok(())
                } else {
                    Err(FaultError::Invalid(
                        "chaos_cell: fail_attempts must be at least 1".into(),
                    ))
                }
            }
        }
    }
}

/// A fault plan could not be read, parsed, or validated.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The fault file could not be read.
    Io(String),
    /// The fault file is not valid JSON or not a valid plan document.
    Parse(String),
    /// A fault entry violates a structural constraint.
    Invalid(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Io(m) => write!(f, "cannot read fault file: {m}"),
            FaultError::Parse(m) => write!(f, "invalid fault file: {m}"),
            FaultError::Invalid(m) => write!(f, "invalid fault entry: {m}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// An ordered, declarative list of [`FaultSpec`] entries.
///
/// Construct one in code (`new` + `push`) or from a fault file
/// ([`from_json`] / [`load`]), then [`compile`] it into the query form the
/// engine consumes. The JSON writer is canonical: serializing a plan and
/// parsing it back yields a bit-identical plan (f64 fields use Rust's
/// shortest round-trip formatting).
///
/// [`from_json`]: FaultPlan::from_json
/// [`load`]: FaultPlan::load
/// [`compile`]: FaultPlan::compile
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

/// Fault-file schema version written and accepted by this crate.
const FILE_VERSION: u64 = 1;

impl FaultPlan {
    /// An empty plan (injects nothing; compiles to an empty schedule).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends one fault entry.
    pub fn push(&mut self, spec: FaultSpec) {
        self.faults.push(spec);
    }

    /// The plan's entries, in file order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// True when the plan has no entries.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Validates every entry and builds the compiled [`FaultSchedule`].
    pub fn compile(&self) -> Result<FaultSchedule, FaultError> {
        for spec in &self.faults {
            spec.validate()?;
        }
        Ok(FaultSchedule::build(self))
    }

    /// Serializes the plan to the canonical fault-file JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"version\":{FILE_VERSION},\"faults\":[");
        for (i, spec) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"kind\":\"{}\"", spec.kind_name());
            match *spec {
                FaultSpec::EvictionStorm {
                    start,
                    end,
                    multiplier,
                }
                | FaultSpec::PriceSpike {
                    start,
                    end,
                    multiplier,
                } => {
                    let _ = write!(
                        out,
                        ",\"start_min\":{},\"end_min\":{},\"multiplier\":{}",
                        start.as_minutes(),
                        end.as_minutes(),
                        multiplier
                    );
                }
                FaultSpec::ForecastOutage { start, end } => {
                    let _ = write!(
                        out,
                        ",\"start_min\":{},\"end_min\":{}",
                        start.as_minutes(),
                        end.as_minutes()
                    );
                }
                FaultSpec::CapacityDrop { start, end, cap } => {
                    let _ = write!(
                        out,
                        ",\"start_min\":{},\"end_min\":{},\"cap\":{}",
                        start.as_minutes(),
                        end.as_minutes(),
                        cap
                    );
                }
                FaultSpec::TraceGap { start_hour, hours } => {
                    let _ = write!(out, ",\"start_hour\":{start_hour},\"hours\":{hours}");
                }
                FaultSpec::ChaosCell {
                    ref key_substr,
                    fail_attempts,
                } => {
                    out.push_str(",\"key_substr\":\"");
                    escape_into(&mut out, key_substr);
                    let _ = write!(out, "\",\"fail_attempts\":{fail_attempts}");
                }
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a fault file and validates every entry.
    pub fn from_json(text: &str) -> Result<FaultPlan, FaultError> {
        let doc = json::parse(text.trim_end()).map_err(FaultError::Parse)?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| FaultError::Parse("missing \"version\" field".into()))?;
        if version != FILE_VERSION {
            return Err(FaultError::Parse(format!(
                "unsupported fault-file version {version} (expected {FILE_VERSION})"
            )));
        }
        let entries = match doc.get("faults") {
            Some(Value::Arr(items)) => items,
            _ => return Err(FaultError::Parse("missing \"faults\" array".into())),
        };
        let mut plan = FaultPlan::new();
        for (i, entry) in entries.iter().enumerate() {
            plan.push(
                parse_spec(entry).map_err(|m| FaultError::Parse(format!("faults[{i}]: {m}")))?,
            );
        }
        for spec in &plan.faults {
            spec.validate()?;
        }
        Ok(plan)
    }

    /// Reads and parses a fault file from disk.
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, FaultError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| FaultError::Io(format!("{}: {e}", path.display())))?;
        FaultPlan::from_json(&text)
    }
}

fn parse_spec(entry: &Value) -> Result<FaultSpec, String> {
    let kind = entry
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing \"kind\"")?;
    let req_u64 = |key: &str| {
        entry
            .get(key)
            .and_then(Value::as_u64)
            .ok_or(format!("missing or non-integer \"{key}\""))
    };
    let req_f64 = |key: &str| {
        entry
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing or non-numeric \"{key}\""))
    };
    let window = || -> Result<(SimTime, SimTime), String> {
        Ok((
            SimTime::from_minutes(req_u64("start_min")?),
            SimTime::from_minutes(req_u64("end_min")?),
        ))
    };
    match kind {
        "eviction_storm" => {
            let (start, end) = window()?;
            Ok(FaultSpec::EvictionStorm {
                start,
                end,
                multiplier: req_f64("multiplier")?,
            })
        }
        "forecast_outage" => {
            let (start, end) = window()?;
            Ok(FaultSpec::ForecastOutage { start, end })
        }
        "price_spike" => {
            let (start, end) = window()?;
            Ok(FaultSpec::PriceSpike {
                start,
                end,
                multiplier: req_f64("multiplier")?,
            })
        }
        "capacity_drop" => {
            let (start, end) = window()?;
            let cap = req_u64("cap")?;
            let cap = u32::try_from(cap).map_err(|_| format!("cap {cap} out of range"))?;
            Ok(FaultSpec::CapacityDrop { start, end, cap })
        }
        "trace_gap" => Ok(FaultSpec::TraceGap {
            start_hour: req_u64("start_hour")?,
            hours: req_u64("hours")?,
        }),
        "chaos_cell" => {
            let key_substr = entry
                .get("key_substr")
                .and_then(Value::as_str)
                .ok_or("missing \"key_substr\"")?
                .to_owned();
            let attempts = req_u64("fail_attempts")?;
            let fail_attempts = u32::try_from(attempts)
                .map_err(|_| format!("fail_attempts {attempts} out of range"))?;
            Ok(FaultSpec::ChaosCell {
                key_substr,
                fail_attempts,
            })
        }
        other => Err(format!("unknown fault kind {other:?}")),
    }
}

fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec::EvictionStorm {
            start: SimTime::from_hours(10),
            end: SimTime::from_hours(20),
            multiplier: 4.5,
        });
        plan.push(FaultSpec::ForecastOutage {
            start: SimTime::from_hours(30),
            end: SimTime::from_hours(40),
        });
        plan.push(FaultSpec::PriceSpike {
            start: SimTime::from_hours(5),
            end: SimTime::from_hours(6),
            multiplier: 3.0,
        });
        plan.push(FaultSpec::CapacityDrop {
            start: SimTime::from_hours(0),
            end: SimTime::from_hours(12),
            cap: 4,
        });
        plan.push(FaultSpec::TraceGap {
            start_hour: 100,
            hours: 6,
        });
        plan.push(FaultSpec::ChaosCell {
            key_substr: "s42\"\\ε".into(),
            fail_attempts: 2,
        });
        plan
    }

    #[test]
    fn json_round_trips_exactly() {
        let plan = sample_plan();
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("parse");
        assert_eq!(back, plan);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let back = FaultPlan::from_json(&plan.to_json()).expect("parse");
        assert_eq!(back, plan);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(
            FaultPlan::from_json("not json"),
            Err(FaultError::Parse(_))
        ));
        assert!(matches!(
            FaultPlan::from_json("{\"faults\":[]}"),
            Err(FaultError::Parse(_))
        ));
        assert!(matches!(
            FaultPlan::from_json("{\"version\":9,\"faults\":[]}"),
            Err(FaultError::Parse(_))
        ));
        assert!(matches!(
            FaultPlan::from_json("{\"version\":1,\"faults\":[{\"kind\":\"volcano\"}]}"),
            Err(FaultError::Parse(_))
        ));
    }

    #[test]
    fn rejects_invalid_entries() {
        let text = "{\"version\":1,\"faults\":[{\"kind\":\"eviction_storm\",\
                    \"start_min\":100,\"end_min\":100,\"multiplier\":2}]}";
        assert!(matches!(
            FaultPlan::from_json(text),
            Err(FaultError::Invalid(_))
        ));
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec::PriceSpike {
            start: SimTime::ORIGIN,
            end: SimTime::from_hours(1),
            multiplier: f64::NAN,
        });
        assert!(plan.compile().is_err());
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec::TraceGap {
            start_hour: 3,
            hours: 0,
        });
        assert!(plan.compile().is_err());
    }

    #[test]
    fn kind_metadata_covers_every_variant() {
        for spec in sample_plan().specs() {
            assert!(!spec.kind_name().is_empty());
            let (start, end) = spec.window_minutes();
            if !matches!(spec, FaultSpec::ChaosCell { .. }) {
                assert!(start < end, "{}", spec.kind_name());
            }
            assert!(spec.magnitude() > 0.0);
        }
    }

    #[test]
    fn load_reports_missing_files() {
        let err = FaultPlan::load(std::path::Path::new("/nonexistent/faults.json"))
            .expect_err("missing file");
        assert!(matches!(err, FaultError::Io(_)));
    }
}
