//! Minimal JSON parser for reading back JSONL event streams.
//!
//! The workspace is offline-buildable, and the vendored `serde` stand-in
//! only covers the derive surface GAIA's other crates need, so trace
//! parsing uses this small hand-rolled recursive-descent parser instead.
//! It accepts standard JSON (RFC 8259) with the usual `\uXXXX` escapes
//! and surrogate pairs; numbers are parsed as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// Borrow a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a following \uXXXX.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                if b < 0x20 {
                    return Err(format!("unescaped control byte {b:#04x}"));
                }
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar value.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    // *pos currently points at 'u'.
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let hex = std::str::from_utf8(&bytes[start..end]).map_err(|_| "invalid \\u escape")?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape {hex:?}"))?;
    *pos = end - 1; // caller advances past the final hex digit
    Ok(v)
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        match v.get("a") {
            Some(Value::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Value::Null));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé😀"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
