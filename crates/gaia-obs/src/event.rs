//! Typed lifecycle events emitted by the simulator and the sweep pipeline.
//!
//! Every event is a plain-data record. Simulation events carry their
//! timestamp `t` as integer **minutes on the simulated clock** (the raw
//! value of `gaia_time::SimTime`), never wall time, so serialized streams
//! are byte-stable across runs and machines. Sweep-level events
//! ([`Event::CellStarted`], [`Event::CellFinished`]) carry wall-clock
//! timings and are explicitly excluded from the determinism contract.
//!
//! The JSONL encoding ([`Event::to_json_line`]) writes one JSON object
//! per event with a fixed field order, starting with `"ev"` (the event
//! name) and then `"t"` for timestamped events. Floats are rendered with
//! Rust's shortest round-trip formatting, so
//! [`Event::from_json_line`]`(e.to_json_line())` reproduces `e` exactly.

use std::fmt;

use crate::json::{self, Value};

/// Capacity pool a job segment executes in.
///
/// Mirrors the simulator's purchase options; the serialized names match
/// the `Display` of `gaia_sim::PurchaseOption` ("reserved", "on-demand",
/// "spot") so traces and reports agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Pre-paid reserved capacity.
    Reserved,
    /// On-demand capacity billed per use.
    OnDemand,
    /// Preemptible spot capacity.
    Spot,
}

impl PoolKind {
    /// Stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            PoolKind::Reserved => "reserved",
            PoolKind::OnDemand => "on-demand",
            PoolKind::Spot => "spot",
        }
    }

    /// Parse a serialized name produced by [`PoolKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reserved" => Some(PoolKind::Reserved),
            "on-demand" => Some(PoolKind::OnDemand),
            "spot" => Some(PoolKind::Spot),
            _ => None,
        }
    }
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shape of the execution plan a policy chose for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanMode {
    /// The job runs in one contiguous stretch.
    Once,
    /// The job is split into suspend/resume segments.
    Segments,
    /// The job is split into variable-width (elastic) slices.
    Elastic,
}

impl PlanMode {
    /// Stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanMode::Once => "once",
            PlanMode::Segments => "segments",
            PlanMode::Elastic => "elastic",
        }
    }

    /// Parse a serialized name produced by [`PlanMode::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "once" => Some(PlanMode::Once),
            "segments" => Some(PlanMode::Segments),
            "elastic" => Some(PlanMode::Elastic),
            _ => None,
        }
    }
}

/// Which memoized artifact a `TraceCache` lookup touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// A carbon-intensity trace keyed by region and horizon.
    Carbon,
    /// A synthetic workload keyed by family and seed.
    Workload,
    /// A persisted per-cell sweep result in the content-addressed
    /// on-disk result cache.
    Result,
}

impl CacheKind {
    /// Stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheKind::Carbon => "carbon",
            CacheKind::Workload => "workload",
            CacheKind::Result => "result",
        }
    }

    /// Parse a serialized name produced by [`CacheKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "carbon" => Some(CacheKind::Carbon),
            "workload" => Some(CacheKind::Workload),
            "result" => Some(CacheKind::Result),
            _ => None,
        }
    }
}

/// A structured lifecycle event.
///
/// Simulation events (everything except the `Cell*`/`Cache*` variants)
/// are emitted by `gaia-sim`'s engine in nondecreasing `t` order; sweep
/// events are emitted by `gaia-sweep`'s orchestration layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A job entered the system at its arrival time.
    JobSubmitted {
        /// Sim time, minutes.
        t: u64,
        /// Job index within the workload.
        job: u64,
        /// CPUs the job occupies while running.
        cpus: u64,
        /// Requested run length, minutes.
        len: u64,
    },
    /// The scheduling policy committed to an execution plan for a job.
    PlanChosen {
        /// Sim time, minutes.
        t: u64,
        /// Job index.
        job: u64,
        /// Contiguous or segmented execution.
        mode: PlanMode,
        /// Planned start time, minutes.
        start: u64,
        /// Number of planned slots/segments (1 for [`PlanMode::Once`]).
        segs: u32,
        /// Whether the job may start early on leftover capacity.
        opportunistic: bool,
        /// Whether the plan targets the spot pool.
        spot: bool,
        /// Forecast carbon for the planned spans, grams CO2.
        est_carbon_g: f64,
        /// Estimated monetary cost for the planned spans, dollars.
        est_cost: f64,
    },
    /// A job segment began executing.
    SegmentStarted {
        /// Sim time, minutes.
        t: u64,
        /// Job index.
        job: u64,
        /// Segment ordinal for this job (0-based, counts every start
        /// including post-eviction retries).
        seg: u32,
        /// Capacity pool the segment runs in.
        pool: PoolKind,
    },
    /// A job segment stopped executing (completed, plan boundary, or
    /// eviction).
    SegmentFinished {
        /// Sim time, minutes.
        t: u64,
        /// Job index.
        job: u64,
        /// Segment ordinal matching the corresponding
        /// [`Event::SegmentStarted`].
        seg: u32,
        /// Capacity pool the segment ran in.
        pool: PoolKind,
        /// Whether the work done in this segment counts toward the job
        /// (as known *at finish time*: an eviction that abandons a plan
        /// marks the aborted segment not useful, but cannot retract
        /// already-emitted events for earlier segments).
        useful: bool,
    },
    /// An elastic job's worker width changed at a slice boundary.
    ///
    /// Emitted only for [`PlanMode::Elastic`] plans, immediately before
    /// the [`Event::SegmentStarted`] it applies to (same `t`, same
    /// `seg`), and only when the width actually differs from the
    /// previous slice's (`prev` is 0 before the first slice). Streams
    /// from non-elastic runs never contain this event.
    WidthChanged {
        /// Sim time, minutes.
        t: u64,
        /// Job index.
        job: u64,
        /// Segment ordinal matching the upcoming
        /// [`Event::SegmentStarted`].
        seg: u32,
        /// New worker width (multiplier on the job's base CPUs).
        width: u64,
        /// Previous worker width (0 when this is the first slice).
        prev: u64,
    },
    /// A job running on spot capacity was evicted.
    SpotEvicted {
        /// Sim time, minutes.
        t: u64,
        /// Job index.
        job: u64,
    },
    /// A job finished all of its work.
    JobCompleted {
        /// Sim time, minutes.
        t: u64,
        /// Job index.
        job: u64,
        /// Minutes spent not running: completion − arrival − length.
        wait: u64,
        /// Slowdown factor: (finish − arrival) / length.
        stretch: f64,
    },
    /// A sweep cell was handed to a worker. **Not deterministic.**
    CellStarted {
        /// Cell index in grid order.
        idx: u64,
        /// Stable scenario key.
        key: String,
    },
    /// A sweep cell finished. **Not deterministic** (wall-clock fields).
    CellFinished {
        /// Cell index in grid order.
        idx: u64,
        /// Stable scenario key.
        key: String,
        /// `"completed"` or `"failed"`.
        status: String,
        /// Seconds the cell waited in the work queue.
        queue_wait_s: f64,
        /// Seconds the cell spent executing.
        exec_s: f64,
    },
    /// A fault-plan entry is armed for this run. Emitted once per entry at
    /// stream start (`t` is always 0) so the declared adversity is part of
    /// the deterministic trace.
    FaultInjected {
        /// Sim time, minutes (always 0: the plan is armed before the run).
        t: u64,
        /// Fault kind name (e.g. `"eviction_storm"`).
        kind: String,
        /// Fault window start, minutes.
        start: u64,
        /// Fault window end, minutes.
        end: u64,
        /// Kind-specific severity (multiplier, cap, gap hours, attempts).
        magnitude: f64,
    },
    /// The engine entered degraded mode: a forecast outage is active and
    /// policy decisions fall back to the persistence forecaster.
    DegradedModeEntered {
        /// Sim time, minutes.
        t: u64,
        /// When the triggering outage window ends, minutes.
        until: u64,
    },
    /// A sweep cell failed and was retried. **Not deterministic** only in
    /// emission order across workers; the attempt count itself is.
    CellRetried {
        /// Cell index in grid order.
        idx: u64,
        /// Stable scenario key.
        key: String,
        /// 1-based attempt number that failed.
        attempt: u64,
        /// The failure that triggered the retry.
        error: String,
    },
    /// A `TraceCache` lookup was served from memory.
    CacheHit {
        /// Which cache.
        kind: CacheKind,
        /// Human-readable cache key.
        key: String,
    },
    /// A `TraceCache` lookup had to generate its artifact.
    CacheMiss {
        /// Which cache.
        kind: CacheKind,
        /// Human-readable cache key.
        key: String,
    },
    /// A freshly computed artifact was persisted to a durable cache
    /// (today: per-cell sweep results, [`CacheKind::Result`]).
    CachePersist {
        /// Which cache.
        kind: CacheKind,
        /// Human-readable cache key.
        key: String,
    },
    /// A sweep shard began executing its slice of the grid.
    /// **Not deterministic** (orchestration-level, wall-clock ordering).
    ShardStarted {
        /// 0-based shard index.
        shard: u64,
        /// Total shard count.
        of: u64,
        /// Cells assigned to this shard.
        cells: u64,
    },
    /// A sweep shard finished its slice of the grid.
    /// **Not deterministic** (orchestration-level, wall-clock ordering).
    ShardFinished {
        /// 0-based shard index.
        shard: u64,
        /// Total shard count.
        of: u64,
        /// Cells that produced a summary (including recovered retries).
        completed: u64,
        /// Cells that exhausted their retry budget.
        failed: u64,
    },
    /// The serving layer accepted a job submission from a tenant.
    JobAccepted {
        /// Sim time, minutes (the submission instant on the service
        /// clock, which is also the job's arrival time).
        t: u64,
        /// Job index assigned by the service (dense, submission order).
        job: u64,
        /// Tenant that submitted the job.
        tenant: String,
    },
    /// The online planner ran incrementally for a newly accepted job.
    Replan {
        /// Sim time, minutes.
        t: u64,
        /// Job index the plan was computed for.
        job: u64,
        /// Jobs queued (accepted but not yet finished) when the planner
        /// ran, including this one.
        queued: u64,
    },
    /// The serving layer persisted a snapshot of the full engine state.
    SnapshotWritten {
        /// Sim time, minutes (the engine clock captured in the snapshot).
        t: u64,
        /// 1-based snapshot ordinal within the service's lifetime.
        seq: u64,
        /// Encoded snapshot size in bytes.
        bytes: u64,
    },
}

impl Event {
    /// Stable event name used as the JSONL `"ev"` discriminant.
    pub fn name(&self) -> &'static str {
        match self {
            Event::JobSubmitted { .. } => "job_submitted",
            Event::PlanChosen { .. } => "plan_chosen",
            Event::SegmentStarted { .. } => "segment_started",
            Event::SegmentFinished { .. } => "segment_finished",
            Event::WidthChanged { .. } => "width_changed",
            Event::SpotEvicted { .. } => "spot_evicted",
            Event::JobCompleted { .. } => "job_completed",
            Event::FaultInjected { .. } => "fault_injected",
            Event::DegradedModeEntered { .. } => "degraded_mode_entered",
            Event::CellStarted { .. } => "cell_started",
            Event::CellFinished { .. } => "cell_finished",
            Event::CellRetried { .. } => "cell_retried",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::CachePersist { .. } => "cache_persist",
            Event::ShardStarted { .. } => "shard_started",
            Event::ShardFinished { .. } => "shard_finished",
            Event::JobAccepted { .. } => "job_accepted",
            Event::Replan { .. } => "replan",
            Event::SnapshotWritten { .. } => "snapshot_written",
        }
    }

    /// Simulation timestamp in minutes, if this is a timestamped
    /// simulation event (sweep/cache events have no sim clock).
    pub fn timestamp(&self) -> Option<u64> {
        match *self {
            Event::JobSubmitted { t, .. }
            | Event::PlanChosen { t, .. }
            | Event::SegmentStarted { t, .. }
            | Event::SegmentFinished { t, .. }
            | Event::WidthChanged { t, .. }
            | Event::SpotEvicted { t, .. }
            | Event::JobCompleted { t, .. }
            | Event::FaultInjected { t, .. }
            | Event::DegradedModeEntered { t, .. }
            | Event::JobAccepted { t, .. }
            | Event::Replan { t, .. }
            | Event::SnapshotWritten { t, .. } => Some(t),
            Event::CellStarted { .. }
            | Event::CellFinished { .. }
            | Event::CellRetried { .. }
            | Event::CacheHit { .. }
            | Event::CacheMiss { .. }
            | Event::CachePersist { .. }
            | Event::ShardStarted { .. }
            | Event::ShardFinished { .. } => None,
        }
    }

    /// Job index, if this is a per-job event.
    pub fn job(&self) -> Option<u64> {
        match *self {
            Event::JobSubmitted { job, .. }
            | Event::PlanChosen { job, .. }
            | Event::SegmentStarted { job, .. }
            | Event::SegmentFinished { job, .. }
            | Event::WidthChanged { job, .. }
            | Event::SpotEvicted { job, .. }
            | Event::JobCompleted { job, .. }
            | Event::JobAccepted { job, .. }
            | Event::Replan { job, .. } => Some(job),
            _ => None,
        }
    }

    /// Serialize to a single JSON object (no trailing newline) with a
    /// fixed field order, e.g.
    /// `{"ev":"segment_started","t":360,"job":0,"seg":0,"pool":"reserved"}`.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ev\":\"");
        s.push_str(self.name());
        s.push('"');
        match self {
            Event::JobSubmitted { t, job, cpus, len } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "cpus", *cpus);
                push_u64(&mut s, "len", *len);
            }
            Event::PlanChosen {
                t,
                job,
                mode,
                start,
                segs,
                opportunistic,
                spot,
                est_carbon_g,
                est_cost,
            } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_str(&mut s, "mode", mode.as_str());
                push_u64(&mut s, "start", *start);
                push_u64(&mut s, "segs", u64::from(*segs));
                push_bool(&mut s, "opportunistic", *opportunistic);
                push_bool(&mut s, "spot", *spot);
                push_f64(&mut s, "est_carbon_g", *est_carbon_g);
                push_f64(&mut s, "est_cost", *est_cost);
            }
            Event::SegmentStarted { t, job, seg, pool } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "seg", u64::from(*seg));
                push_str(&mut s, "pool", pool.as_str());
            }
            Event::SegmentFinished {
                t,
                job,
                seg,
                pool,
                useful,
            } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "seg", u64::from(*seg));
                push_str(&mut s, "pool", pool.as_str());
                push_bool(&mut s, "useful", *useful);
            }
            Event::WidthChanged {
                t,
                job,
                seg,
                width,
                prev,
            } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "seg", u64::from(*seg));
                push_u64(&mut s, "width", *width);
                push_u64(&mut s, "prev", *prev);
            }
            Event::SpotEvicted { t, job } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
            }
            Event::JobCompleted {
                t,
                job,
                wait,
                stretch,
            } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "wait", *wait);
                push_f64(&mut s, "stretch", *stretch);
            }
            Event::CellStarted { idx, key } => {
                push_u64(&mut s, "idx", *idx);
                push_str(&mut s, "key", key);
            }
            Event::CellFinished {
                idx,
                key,
                status,
                queue_wait_s,
                exec_s,
            } => {
                push_u64(&mut s, "idx", *idx);
                push_str(&mut s, "key", key);
                push_str(&mut s, "status", status);
                push_f64(&mut s, "queue_wait_s", *queue_wait_s);
                push_f64(&mut s, "exec_s", *exec_s);
            }
            Event::FaultInjected {
                t,
                kind,
                start,
                end,
                magnitude,
            } => {
                push_u64(&mut s, "t", *t);
                push_str(&mut s, "kind", kind);
                push_u64(&mut s, "start", *start);
                push_u64(&mut s, "end", *end);
                push_f64(&mut s, "magnitude", *magnitude);
            }
            Event::DegradedModeEntered { t, until } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "until", *until);
            }
            Event::CellRetried {
                idx,
                key,
                attempt,
                error,
            } => {
                push_u64(&mut s, "idx", *idx);
                push_str(&mut s, "key", key);
                push_u64(&mut s, "attempt", *attempt);
                push_str(&mut s, "error", error);
            }
            Event::CacheHit { kind, key } => {
                push_str(&mut s, "kind", kind.as_str());
                push_str(&mut s, "key", key);
            }
            Event::CacheMiss { kind, key } => {
                push_str(&mut s, "kind", kind.as_str());
                push_str(&mut s, "key", key);
            }
            Event::CachePersist { kind, key } => {
                push_str(&mut s, "kind", kind.as_str());
                push_str(&mut s, "key", key);
            }
            Event::ShardStarted { shard, of, cells } => {
                push_u64(&mut s, "shard", *shard);
                push_u64(&mut s, "of", *of);
                push_u64(&mut s, "cells", *cells);
            }
            Event::ShardFinished {
                shard,
                of,
                completed,
                failed,
            } => {
                push_u64(&mut s, "shard", *shard);
                push_u64(&mut s, "of", *of);
                push_u64(&mut s, "completed", *completed);
                push_u64(&mut s, "failed", *failed);
            }
            Event::JobAccepted { t, job, tenant } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_str(&mut s, "tenant", tenant);
            }
            Event::Replan { t, job, queued } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "job", *job);
                push_u64(&mut s, "queued", *queued);
            }
            Event::SnapshotWritten { t, seq, bytes } => {
                push_u64(&mut s, "t", *t);
                push_u64(&mut s, "seq", *seq);
                push_u64(&mut s, "bytes", *bytes);
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line produced by [`Event::to_json_line`].
    ///
    /// Tolerates unknown field order (any valid JSON object with the
    /// expected fields) but rejects unknown event names and missing or
    /// mistyped fields.
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        let value = json::parse(line)?;
        let ev = req_str(&value, "ev")?;
        match ev.as_str() {
            "job_submitted" => Ok(Event::JobSubmitted {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                cpus: req_u64(&value, "cpus")?,
                len: req_u64(&value, "len")?,
            }),
            "plan_chosen" => Ok(Event::PlanChosen {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                mode: PlanMode::parse(&req_str(&value, "mode")?)
                    .ok_or_else(|| format!("unknown plan mode in: {line}"))?,
                start: req_u64(&value, "start")?,
                segs: req_u32(&value, "segs")?,
                opportunistic: req_bool(&value, "opportunistic")?,
                spot: req_bool(&value, "spot")?,
                est_carbon_g: req_f64(&value, "est_carbon_g")?,
                est_cost: req_f64(&value, "est_cost")?,
            }),
            "segment_started" => Ok(Event::SegmentStarted {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                seg: req_u32(&value, "seg")?,
                pool: PoolKind::parse(&req_str(&value, "pool")?)
                    .ok_or_else(|| format!("unknown pool in: {line}"))?,
            }),
            "segment_finished" => Ok(Event::SegmentFinished {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                seg: req_u32(&value, "seg")?,
                pool: PoolKind::parse(&req_str(&value, "pool")?)
                    .ok_or_else(|| format!("unknown pool in: {line}"))?,
                useful: req_bool(&value, "useful")?,
            }),
            "width_changed" => Ok(Event::WidthChanged {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                seg: req_u32(&value, "seg")?,
                width: req_u64(&value, "width")?,
                prev: req_u64(&value, "prev")?,
            }),
            "spot_evicted" => Ok(Event::SpotEvicted {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
            }),
            "job_completed" => Ok(Event::JobCompleted {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                wait: req_u64(&value, "wait")?,
                stretch: req_f64(&value, "stretch")?,
            }),
            "cell_started" => Ok(Event::CellStarted {
                idx: req_u64(&value, "idx")?,
                key: req_str(&value, "key")?,
            }),
            "cell_finished" => Ok(Event::CellFinished {
                idx: req_u64(&value, "idx")?,
                key: req_str(&value, "key")?,
                status: req_str(&value, "status")?,
                queue_wait_s: req_f64(&value, "queue_wait_s")?,
                exec_s: req_f64(&value, "exec_s")?,
            }),
            "fault_injected" => Ok(Event::FaultInjected {
                t: req_u64(&value, "t")?,
                kind: req_str(&value, "kind")?,
                start: req_u64(&value, "start")?,
                end: req_u64(&value, "end")?,
                magnitude: req_f64(&value, "magnitude")?,
            }),
            "degraded_mode_entered" => Ok(Event::DegradedModeEntered {
                t: req_u64(&value, "t")?,
                until: req_u64(&value, "until")?,
            }),
            "cell_retried" => Ok(Event::CellRetried {
                idx: req_u64(&value, "idx")?,
                key: req_str(&value, "key")?,
                attempt: req_u64(&value, "attempt")?,
                error: req_str(&value, "error")?,
            }),
            "cache_hit" => Ok(Event::CacheHit {
                kind: CacheKind::parse(&req_str(&value, "kind")?)
                    .ok_or_else(|| format!("unknown cache kind in: {line}"))?,
                key: req_str(&value, "key")?,
            }),
            "cache_miss" => Ok(Event::CacheMiss {
                kind: CacheKind::parse(&req_str(&value, "kind")?)
                    .ok_or_else(|| format!("unknown cache kind in: {line}"))?,
                key: req_str(&value, "key")?,
            }),
            "cache_persist" => Ok(Event::CachePersist {
                kind: CacheKind::parse(&req_str(&value, "kind")?)
                    .ok_or_else(|| format!("unknown cache kind in: {line}"))?,
                key: req_str(&value, "key")?,
            }),
            "shard_started" => Ok(Event::ShardStarted {
                shard: req_u64(&value, "shard")?,
                of: req_u64(&value, "of")?,
                cells: req_u64(&value, "cells")?,
            }),
            "shard_finished" => Ok(Event::ShardFinished {
                shard: req_u64(&value, "shard")?,
                of: req_u64(&value, "of")?,
                completed: req_u64(&value, "completed")?,
                failed: req_u64(&value, "failed")?,
            }),
            "job_accepted" => Ok(Event::JobAccepted {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                tenant: req_str(&value, "tenant")?,
            }),
            "replan" => Ok(Event::Replan {
                t: req_u64(&value, "t")?,
                job: req_u64(&value, "job")?,
                queued: req_u64(&value, "queued")?,
            }),
            "snapshot_written" => Ok(Event::SnapshotWritten {
                t: req_u64(&value, "t")?,
                seq: req_u64(&value, "seq")?,
                bytes: req_u64(&value, "bytes")?,
            }),
            other => Err(format!("unknown event name {other:?}")),
        }
    }
}

fn push_key(s: &mut String, key: &str) {
    s.push(',');
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    push_key(s, key);
    s.push_str(&v.to_string());
}

fn push_bool(s: &mut String, key: &str, v: bool) {
    push_key(s, key);
    s.push_str(if v { "true" } else { "false" });
}

fn push_f64(s: &mut String, key: &str, v: f64) {
    push_key(s, key);
    if v.is_finite() {
        // Shortest representation that round-trips through f64 parsing,
        // so a parse-and-reserialize cycle is byte-stable.
        s.push_str(&format!("{v}"));
        // `format!` omits the ".0" for integral floats; that is fine for
        // JSON (still a number) and stable, so leave it as-is.
    } else {
        s.push_str("null");
    }
}

fn push_str(s: &mut String, key: &str, v: &str) {
    push_key(s, key);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, String> {
    value
        .get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(value: &Value, key: &str) -> Result<u64, String> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn req_u32(value: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(req_u64(value, key)?).map_err(|_| format!("field {key:?} overflows u32"))
}

fn req_f64(value: &Value, key: &str) -> Result<f64, String> {
    let v = field(value, key)?;
    // Non-finite floats serialize as null; map them back to NaN so the
    // round-trip stays total.
    if matches!(v, Value::Null) {
        return Ok(f64::NAN);
    }
    v.as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn req_bool(value: &Value, key: &str) -> Result<bool, String> {
    field(value, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a bool"))
}

fn req_str(value: &Value, key: &str) -> Result<String, String> {
    field(value, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::JobSubmitted {
                t: 0,
                job: 3,
                cpus: 2,
                len: 180,
            },
            Event::PlanChosen {
                t: 0,
                job: 3,
                mode: PlanMode::Segments,
                start: 120,
                segs: 4,
                opportunistic: true,
                spot: false,
                est_carbon_g: 1234.5678901234,
                est_cost: 0.1,
            },
            Event::SegmentStarted {
                t: 120,
                job: 3,
                seg: 0,
                pool: PoolKind::Reserved,
            },
            Event::SegmentFinished {
                t: 180,
                job: 3,
                seg: 0,
                pool: PoolKind::Reserved,
                useful: true,
            },
            Event::SpotEvicted { t: 200, job: 4 },
            Event::JobCompleted {
                t: 480,
                job: 3,
                wait: 300,
                stretch: 2.6666666666666665,
            },
            Event::CellStarted {
                idx: 7,
                key: "Carbon-Time/SA-AU/Alibaba/week/s42".into(),
            },
            Event::CellFinished {
                idx: 7,
                key: "Carbon-Time/SA-AU/Alibaba/week/s42".into(),
                status: "completed".into(),
                queue_wait_s: 0.25,
                exec_s: 1.5,
            },
            Event::FaultInjected {
                t: 0,
                kind: "eviction_storm".into(),
                start: 1440,
                end: 2880,
                magnitude: 8.0,
            },
            Event::DegradedModeEntered {
                t: 3600,
                until: 4320,
            },
            Event::CellRetried {
                idx: 7,
                key: "Carbon-Time/SA-AU/Alibaba/week/s42".into(),
                attempt: 1,
                error: "injected fault (attempt 1)".into(),
            },
            Event::CacheHit {
                kind: CacheKind::Carbon,
                key: "SA-AU/h10080".into(),
            },
            Event::CacheMiss {
                kind: CacheKind::Workload,
                key: "Alibaba/s42".into(),
            },
            Event::CachePersist {
                kind: CacheKind::Result,
                key: "Carbon-Time/SA-AU/Alibaba/week/s42".into(),
            },
            Event::ShardStarted {
                shard: 1,
                of: 3,
                cells: 8,
            },
            Event::ShardFinished {
                shard: 1,
                of: 3,
                completed: 8,
                failed: 0,
            },
            Event::JobAccepted {
                t: 120,
                job: 9,
                tenant: "acme".into(),
            },
            Event::Replan {
                t: 120,
                job: 9,
                queued: 3,
            },
            Event::SnapshotWritten {
                t: 1440,
                seq: 2,
                bytes: 8192,
            },
        ]
    }

    #[test]
    fn json_round_trip_is_exact() {
        for ev in samples() {
            let line = ev.to_json_line();
            let back = Event::from_json_line(&line).expect(&line);
            assert_eq!(back, ev, "line: {line}");
            // Re-serialization is byte-stable.
            assert_eq!(back.to_json_line(), line);
        }
    }

    #[test]
    fn field_order_is_fixed() {
        let ev = Event::SegmentStarted {
            t: 360,
            job: 0,
            seg: 0,
            pool: PoolKind::Reserved,
        };
        assert_eq!(
            ev.to_json_line(),
            r#"{"ev":"segment_started","t":360,"job":0,"seg":0,"pool":"reserved"}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event::CacheHit {
            kind: CacheKind::Carbon,
            key: "quote\" slash\\ tab\t".into(),
        };
        let line = ev.to_json_line();
        assert!(line.contains(r#"quote\" slash\\ tab\t"#), "{line}");
        assert_eq!(Event::from_json_line(&line).unwrap(), ev);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let ev = Event::JobCompleted {
            t: 10,
            job: 1,
            wait: 0,
            stretch: f64::INFINITY,
        };
        let line = ev.to_json_line();
        assert!(line.contains("\"stretch\":null"), "{line}");
        match Event::from_json_line(&line).unwrap() {
            Event::JobCompleted { stretch, .. } => assert!(stretch.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_event_name_is_rejected() {
        let err = Event::from_json_line(r#"{"ev":"mystery"}"#).unwrap_err();
        assert!(err.contains("unknown event name"), "{err}");
    }

    #[test]
    fn missing_field_is_rejected() {
        let err = Event::from_json_line(r#"{"ev":"spot_evicted","t":5}"#).unwrap_err();
        assert!(err.contains("job"), "{err}");
    }

    #[test]
    fn timestamps_and_names_are_consistent() {
        for ev in samples() {
            match &ev {
                Event::CellStarted { .. }
                | Event::CellFinished { .. }
                | Event::CellRetried { .. }
                | Event::CacheHit { .. }
                | Event::CacheMiss { .. }
                | Event::CachePersist { .. }
                | Event::ShardStarted { .. }
                | Event::ShardFinished { .. } => assert_eq!(ev.timestamp(), None),
                _ => assert!(ev.timestamp().is_some(), "{}", ev.name()),
            }
        }
    }
}
