//! Always-on flight recorder: a fixed-capacity ring of the last N
//! events, with wall-clock capture timestamps, dumpable to JSONL.
//!
//! Full tracing ([`crate::sink::JsonlSink`]) costs a write per event and
//! grows without bound; the flight recorder is the post-mortem
//! alternative: it keeps only the most recent [`FlightRecorder::capacity`]
//! events as compact plain-data [`FlightFrame`]s and is cheap enough to
//! leave on in production. The daemon dumps it on demand (the `flight`
//! protocol verb), on SIGTERM, and from a panic hook — so an operator
//! always has the last seconds of engine history, even when the process
//! died without ever enabling tracing.
//!
//! # Hot-path design
//!
//! [`FlightSink`] wraps any inner [`Sink`] and captures each emitted
//! event into a frame: a fixed-size record of the event name (a
//! `&'static str`, so no allocation), the sim timestamp, and two
//! variant-specific integers. Frames accumulate in a writer-local
//! buffer; [`Sink::sync`] — called once per request by the serving
//! layer — flushes the batch into the shared ring under one mutex
//! acquisition. The wall clock is read once per request (on the first
//! emit after a sync), not per event. Per-event cost is therefore a
//! `Vec` push of a 5-word struct; the lock and the clock are amortized
//! across the whole request. `telemetry_overhead` (wired into
//! `scripts/bench_obs.sh`) holds this to ≤2% of serving throughput.
//!
//! The ring itself is a mutex-guarded `Vec`, not a lock-free structure:
//! frames are multi-word records, `gaia-obs` forbids `unsafe`, and the
//! amortization above already makes contention a non-issue (one
//! uncontended lock per request; the only other acquirers are rare
//! dump/len calls). See DESIGN.md §15 for the full argument.
//!
//! # Determinism contract
//!
//! Frames carry wall-clock timestamps, so the flight recorder is —
//! deliberately — outside the determinism contract. The data only ever
//! flows *out* (dumps, metrics exposition); nothing in the engine,
//! session, snapshot, or wire-response path reads it back.
//! `gaia-serve`'s telemetry proptests pin that down byte-for-byte.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::event::Event;
use crate::sink::Sink;

/// Microseconds since the Unix epoch; 0 if the system clock is before
/// the epoch (metrics must not panic).
pub fn wall_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// One recorded event: the compact, allocation-free projection of an
/// [`Event`] the flight recorder retains.
///
/// `job` and `aux` are variant-specific (see [`FlightFrame::capture`]);
/// string payloads (tenant names, cache keys) are dropped — the flight
/// recorder answers "what was the engine doing just before it died",
/// not "replay the run".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightFrame {
    /// Wall-clock capture time, microseconds since the Unix epoch.
    /// Shared by every frame of one request batch.
    pub wall_us: u64,
    /// Stable event name ([`Event::name`]).
    pub kind: &'static str,
    /// Sim timestamp in minutes; 0 for events without a sim clock.
    pub t: u64,
    /// Job index, cell index, or snapshot ordinal — the variant's
    /// primary identifier; 0 where there is none.
    pub job: u64,
    /// Secondary payload: segment ordinal, queue depth, wait minutes,
    /// snapshot bytes, outage end — whichever single integer carries
    /// the most post-mortem signal for the variant.
    pub aux: u64,
}

impl FlightFrame {
    /// Project an event into a frame stamped with `wall_us`.
    pub fn capture(wall_us: u64, event: &Event) -> Self {
        let (job, aux) = match event {
            Event::JobSubmitted { job, len, .. } => (*job, *len),
            Event::PlanChosen { job, start, .. } => (*job, *start),
            Event::SegmentStarted { job, seg, .. } => (*job, u64::from(*seg)),
            Event::WidthChanged { job, width, .. } => (*job, *width),
            Event::SegmentFinished { job, seg, .. } => (*job, u64::from(*seg)),
            Event::SpotEvicted { job, .. } => (*job, 0),
            Event::JobCompleted { job, wait, .. } => (*job, *wait),
            Event::CellStarted { idx, .. } => (*idx, 0),
            Event::CellFinished { idx, .. } => (*idx, 0),
            Event::CellRetried { idx, attempt, .. } => (*idx, *attempt),
            Event::CacheHit { .. } | Event::CacheMiss { .. } | Event::CachePersist { .. } => (0, 0),
            Event::ShardStarted { shard, of, .. } => (*shard, *of),
            Event::ShardFinished { shard, of, .. } => (*shard, *of),
            Event::FaultInjected { start, end, .. } => (*start, *end),
            Event::DegradedModeEntered { until, .. } => (0, *until),
            Event::JobAccepted { job, .. } => (*job, 0),
            Event::Replan { job, queued, .. } => (*job, *queued),
            Event::SnapshotWritten { seq, bytes, .. } => (*seq, *bytes),
        };
        FlightFrame {
            wall_us,
            kind: event.name(),
            t: event.timestamp().unwrap_or(0),
            job,
            aux,
        }
    }

    /// One JSON object, fixed field order — the dump format
    /// `gaia trace flight` validates.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"wall_us\":{},\"ev\":\"{}\",\"t\":{},\"job\":{},\"aux\":{}}}",
            self.wall_us, self.kind, self.t, self.job, self.aux
        )
    }
}

/// Interior of the ring: a wrap-around vector plus the next write slot.
#[derive(Debug)]
struct RingState {
    frames: Vec<FlightFrame>,
    next: usize,
}

/// The shared fixed-capacity event ring.
///
/// Created once per daemon and shared (`Arc`) between the engine
/// thread's [`FlightSink`], the dump paths (protocol verb, SIGTERM,
/// panic hook), and the metrics exposition thread. All methods take
/// `&self`.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<RingState>,
    total: AtomicU64,
}

impl FlightRecorder {
    /// New empty recorder retaining the last `capacity` frames.
    /// Storage is allocated up front so recording never allocates.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            capacity,
            state: Mutex::new(RingState {
                frames: Vec::with_capacity(capacity),
                next: 0,
            }),
            total: AtomicU64::new(0),
        })
    }

    /// Append a batch of frames under one lock acquisition, overwriting
    /// the oldest frames once the ring is full.
    pub fn push_batch(&self, batch: &[FlightFrame]) {
        if self.capacity == 0 || batch.is_empty() {
            return;
        }
        self.total.fetch_add(batch.len() as u64, Ordering::Relaxed);
        // A batch larger than the ring keeps only its newest frames.
        let batch = &batch[batch.len().saturating_sub(self.capacity)..];
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for frame in batch {
            if state.frames.len() < self.capacity {
                state.frames.push(*frame);
            } else {
                let slot = state.next;
                state.frames[slot] = *frame;
            }
            state.next = (state.next + 1) % self.capacity;
        }
    }

    /// Retained frames, oldest first.
    pub fn snapshot(&self) -> Vec<FlightFrame> {
        let state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if state.frames.len() < self.capacity {
            state.frames.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&state.frames[state.next..]);
            out.extend_from_slice(&state.frames[..state.next]);
            out
        }
    }

    /// Frames currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .frames
            .len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Write the retained frames as JSONL, oldest first; returns the
    /// number of frames written.
    pub fn dump_jsonl<W: Write>(&self, mut writer: W) -> io::Result<u64> {
        let frames = self.snapshot();
        for frame in &frames {
            let mut line = frame.to_json_line();
            line.push('\n');
            writer.write_all(line.as_bytes())?;
        }
        writer.flush()?;
        Ok(frames.len() as u64)
    }

    /// Dump to a file path (created or truncated). Used by the daemon's
    /// SIGTERM and panic-hook paths, so it must not itself panic:
    /// errors are returned, never thrown.
    pub fn dump_to_path(&self, path: &Path) -> io::Result<u64> {
        let file = std::fs::File::create(path)?;
        self.dump_jsonl(io::BufWriter::new(file))
    }
}

/// A [`Sink`] adapter that records every event into a shared
/// [`FlightRecorder`] while forwarding to an inner sink.
///
/// Frames buffer locally and flush to the ring on [`Sink::sync`]; see
/// the module docs for the amortization argument. Events emitted after
/// the last `sync` of the process are lost with the buffer — the
/// serving layer syncs after every request, so at most one request's
/// frames are in flight.
#[derive(Debug)]
pub struct FlightSink<S: Sink> {
    inner: S,
    recorder: Arc<FlightRecorder>,
    buf: Vec<FlightFrame>,
    stamp_us: u64,
}

impl<S: Sink> FlightSink<S> {
    /// Wrap `inner`, recording into `recorder`.
    pub fn new(recorder: Arc<FlightRecorder>, inner: S) -> Self {
        FlightSink {
            inner,
            recorder,
            buf: Vec::with_capacity(64),
            stamp_us: 0,
        }
    }

    /// Flush any buffered frames and return the inner sink (for its own
    /// teardown, e.g. [`crate::sink::JsonlSink::finish`]).
    pub fn into_inner(mut self) -> S {
        self.sync();
        self.inner
    }

    /// The shared ring this sink records into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }
}

impl<S: Sink> Sink for FlightSink<S> {
    fn emit(&mut self, event: &Event) {
        if self.buf.is_empty() {
            // One clock read per request batch, not per event.
            self.stamp_us = wall_micros();
        }
        self.buf.push(FlightFrame::capture(self.stamp_us, event));
        self.inner.emit(event);
    }

    fn sync(&mut self) {
        if !self.buf.is_empty() {
            self.recorder.push_batch(&self.buf);
            self.buf.clear();
        }
        self.inner.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PoolKind;
    use crate::sink::{CountingSink, NullSink};

    fn seg_started(t: u64, job: u64) -> Event {
        Event::SegmentStarted {
            t,
            job,
            seg: 0,
            pool: PoolKind::Spot,
        }
    }

    #[test]
    fn ring_keeps_the_newest_frames() {
        let rec = FlightRecorder::new(4);
        let frames: Vec<FlightFrame> = (0..10)
            .map(|i| FlightFrame::capture(1_000 + i, &seg_started(i, i)))
            .collect();
        for chunk in frames.chunks(3) {
            rec.push_batch(chunk);
        }
        assert_eq!(rec.total_recorded(), 10);
        assert_eq!(rec.len(), 4);
        let kept = rec.snapshot();
        let ts: Vec<u64> = kept.iter().map(|f| f.t).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "oldest first, newest retained");
    }

    #[test]
    fn oversized_batch_keeps_its_tail() {
        let rec = FlightRecorder::new(3);
        let frames: Vec<FlightFrame> = (0..8)
            .map(|i| FlightFrame::capture(0, &seg_started(i, i)))
            .collect();
        rec.push_batch(&frames);
        let ts: Vec<u64> = rec.snapshot().iter().map(|f| f.t).collect();
        assert_eq!(ts, vec![5, 6, 7]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let rec = FlightRecorder::new(0);
        rec.push_batch(&[FlightFrame::capture(0, &seg_started(1, 1))]);
        assert!(rec.is_empty());
        assert_eq!(rec.total_recorded(), 0);
    }

    #[test]
    fn flight_sink_buffers_until_sync_and_forwards() {
        let rec = FlightRecorder::new(16);
        let mut sink = FlightSink::new(Arc::clone(&rec), CountingSink::new());
        sink.emit(&seg_started(10, 1));
        sink.emit(&seg_started(11, 1));
        assert_eq!(rec.len(), 0, "frames buffer until sync");
        sink.sync();
        assert_eq!(rec.len(), 2);
        sink.sync(); // idempotent on an empty buffer
        assert_eq!(rec.len(), 2);
        let inner = sink.into_inner();
        assert_eq!(inner.total(), 2, "events still reach the inner sink");
    }

    #[test]
    fn frames_in_one_batch_share_one_wall_stamp() {
        let rec = FlightRecorder::new(16);
        let mut sink = FlightSink::new(Arc::clone(&rec), NullSink);
        sink.emit(&seg_started(1, 1));
        sink.emit(&seg_started(2, 1));
        sink.sync();
        std::thread::sleep(std::time::Duration::from_millis(2));
        sink.emit(&seg_started(3, 1));
        sink.sync();
        let frames = rec.snapshot();
        assert_eq!(frames[0].wall_us, frames[1].wall_us);
        assert!(frames[2].wall_us > frames[1].wall_us);
    }

    #[test]
    fn capture_projects_variant_payloads() {
        let f = FlightFrame::capture(
            7,
            &Event::Replan {
                t: 30,
                job: 5,
                queued: 12,
            },
        );
        assert_eq!(
            f,
            FlightFrame {
                wall_us: 7,
                kind: "replan",
                t: 30,
                job: 5,
                aux: 12
            }
        );
        let f = FlightFrame::capture(
            0,
            &Event::SnapshotWritten {
                t: 60,
                seq: 3,
                bytes: 4096,
            },
        );
        assert_eq!((f.job, f.aux), (3, 4096));
    }

    #[test]
    fn dump_is_valid_jsonl_with_fixed_fields() {
        let rec = FlightRecorder::new(8);
        rec.push_batch(&[
            FlightFrame::capture(1_000_000, &seg_started(10, 2)),
            FlightFrame::capture(
                2_000_000,
                &Event::JobCompleted {
                    t: 90,
                    job: 2,
                    wait: 30,
                    stretch: 1.5,
                },
            ),
        ]);
        let mut out = Vec::new();
        let written = rec.dump_jsonl(&mut out).unwrap();
        assert_eq!(written, 2);
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            let value = crate::json::parse(line).expect(line);
            for key in ["wall_us", "ev", "t", "job", "aux"] {
                assert!(value.get(key).is_some(), "{line} missing {key}");
            }
        }
        assert!(text.contains("\"ev\":\"job_completed\",\"t\":90,\"job\":2,\"aux\":30"));
    }
}
