//! Event sinks: where emitted [`Event`]s go.
//!
//! [`Sink`] is statically dispatched — the engine is generic over `S:
//! Sink` — and carries an associated `const ACTIVE`. Instrumentation
//! sites guard both event construction and emission with
//! `if S::ACTIVE { ... }`, so for [`NullSink`] (`ACTIVE = false`) the
//! whole block is a compile-time-dead branch and the traced engine
//! monomorphizes to the same machine code as an uninstrumented one.
//! `crates/bench/benches/obs_overhead.rs` holds that claim to ≤2%.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Destination for structured events.
///
/// Implementors receive every event an instrumented component emits.
/// The associated [`Sink::ACTIVE`] constant lets instrumentation sites
/// skip event *construction* (not just delivery) when tracing is off.
pub trait Sink {
    /// Whether instrumentation sites should construct and emit events.
    /// Leave at the default `true` for every real sink; only
    /// [`NullSink`] turns it off.
    const ACTIVE: bool = true;

    /// Deliver one event.
    fn emit(&mut self, event: &Event);

    /// A request/batch boundary: a good moment to flush writer-local
    /// buffers to shared or durable destinations. The serving layer
    /// calls this once per applied request; sinks without buffers keep
    /// the default no-op. Must be cheap when there is nothing to flush.
    fn sync(&mut self) {}
}

/// The disabled sink: all instrumentation compiles out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: &Event) {}
}

/// Collects events in memory; for tests and in-process analysis.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events emitted so far, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consume the sink, returning the collected events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Sink for VecSink {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Counts events per kind without storing them; for overhead benches
/// and cheap sanity checks.
#[derive(Debug, Default)]
pub struct CountingSink {
    total: u64,
    job_submitted: u64,
    plan_chosen: u64,
    segment_started: u64,
    segment_finished: u64,
    spot_evicted: u64,
    job_completed: u64,
    other: u64,
}

impl CountingSink {
    /// New zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one event kind by its stable name; kinds this sink does
    /// not track individually are pooled under `"other"`.
    pub fn count(&self, name: &str) -> u64 {
        match name {
            "job_submitted" => self.job_submitted,
            "plan_chosen" => self.plan_chosen,
            "segment_started" => self.segment_started,
            "segment_finished" => self.segment_finished,
            "spot_evicted" => self.spot_evicted,
            "job_completed" => self.job_completed,
            "other" => self.other,
            _ => 0,
        }
    }
}

impl Sink for CountingSink {
    fn emit(&mut self, event: &Event) {
        self.total += 1;
        match event {
            Event::JobSubmitted { .. } => self.job_submitted += 1,
            Event::PlanChosen { .. } => self.plan_chosen += 1,
            Event::SegmentStarted { .. } => self.segment_started += 1,
            Event::SegmentFinished { .. } => self.segment_finished += 1,
            Event::SpotEvicted { .. } => self.spot_evicted += 1,
            Event::JobCompleted { .. } => self.job_completed += 1,
            _ => self.other += 1,
        }
    }
}

/// Writes one JSON object per line to a [`Write`] destination.
///
/// I/O errors are sticky: the first error is stored and later emits are
/// dropped, so the hot path never panics. Call [`JsonlSink::finish`] to
/// flush and surface any stored error.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer. For files, pass a `BufWriter` — emits are one
    /// small write per event.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the inner writer, or the first emit/flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json_line();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(err) => self.error = Some(err),
        }
    }

    /// Flush buffered lines so `tail`-style consumers (`gaia trace
    /// summarize --follow`) see complete events at request boundaries.
    /// Errors stay sticky, surfaced by [`JsonlSink::finish`].
    fn sync(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(err) = self.writer.flush() {
            self.error = Some(err);
        }
    }
}

/// Object-safe subset of [`Sink`] for dynamic dispatch.
///
/// `Sink` itself is not object-safe (it has an associated const), so
/// shared multi-writer scenarios use this subtrait; every `Sink` is an
/// `EmitSink` via the blanket impl.
pub trait EmitSink {
    /// Deliver one event.
    fn emit_event(&mut self, event: &Event);

    /// Forward of [`Sink::sync`] for trait objects.
    fn sync_events(&mut self);
}

impl<S: Sink> EmitSink for S {
    fn emit_event(&mut self, event: &Event) {
        self.emit(event);
    }

    fn sync_events(&mut self) {
        self.sync();
    }
}

/// A cloneable, thread-safe handle to one shared sink.
///
/// Used for coarse-grained streams written from several threads (the
/// sweep-level `CellStarted`/`CellFinished`/cache events); hot per-cell
/// simulation streams keep their own private statically-dispatched sink
/// instead, so this mutex is never on the simulation fast path.
#[derive(Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<dyn EmitSink + Send>>,
}

impl SharedSink {
    /// Share a sink between threads.
    pub fn new<S: Sink + Send + 'static>(sink: S) -> Self {
        Self {
            inner: Arc::new(Mutex::new(sink)),
        }
    }
}

impl Sink for SharedSink {
    fn emit(&mut self, event: &Event) {
        // A panic while holding the lock only loses buffered telemetry,
        // so recover the guard instead of propagating the poison.
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.emit_event(event);
    }

    fn sync(&mut self) {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.sync_events();
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PoolKind;

    fn sample() -> Event {
        Event::SegmentStarted {
            t: 60,
            job: 1,
            seg: 0,
            pool: PoolKind::Spot,
        }
    }

    #[test]
    // Asserting the consts is the point: ACTIVE drives the compile-out.
    #[allow(clippy::assertions_on_constants)]
    fn null_sink_is_inactive() {
        assert!(!NullSink::ACTIVE);
        assert!(VecSink::ACTIVE);
        NullSink.emit(&sample());
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        sink.emit(&sample());
        sink.emit(&Event::SpotEvicted { t: 90, job: 1 });
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[1], Event::SpotEvicted { t: 90, job: 1 });
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut sink = CountingSink::new();
        sink.emit(&sample());
        sink.emit(&sample());
        sink.emit(&Event::SpotEvicted { t: 90, job: 1 });
        sink.emit(&Event::CacheHit {
            kind: crate::event::CacheKind::Carbon,
            key: "k".into(),
        });
        assert_eq!(sink.total(), 4);
        assert_eq!(sink.count("segment_started"), 2);
        assert_eq!(sink.count("spot_evicted"), 1);
        assert_eq!(sink.count("other"), 1);
        assert_eq!(sink.count("job_completed"), 0);
    }

    #[test]
    fn jsonl_sink_writes_lines_and_finishes() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&sample());
        sink.emit(&Event::SpotEvicted { t: 90, job: 1 });
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().expect("no io errors on Vec");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::from_json_line(lines[0]).unwrap(), sample());
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors() {
        #[derive(Debug)]
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.emit(&sample());
        sink.emit(&sample()); // dropped after the first error
        assert_eq!(sink.written(), 0);
        let err = sink.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn shared_sink_fans_in_from_clones() {
        let shared = SharedSink::new(CountingSink::new());
        let mut a = shared.clone();
        let mut b = shared;
        let handle = std::thread::spawn(move || {
            for _ in 0..10 {
                a.emit(&Event::SpotEvicted { t: 1, job: 0 });
            }
        });
        for _ in 0..5 {
            b.emit(&Event::SpotEvicted { t: 2, job: 1 });
        }
        handle.join().unwrap();
        // Read back through the trait object.
        let guard = b.inner.lock().unwrap_or_else(|p| p.into_inner());
        drop(guard); // count checked via a fresh VecSink-based test below
    }

    #[test]
    fn shared_sink_delivers_all_events() {
        // VecSink behind the shared handle, checked by draining.
        let sink = Arc::new(Mutex::new(VecSink::new()));
        struct Probe(Arc<Mutex<VecSink>>);
        impl Sink for Probe {
            fn emit(&mut self, event: &Event) {
                self.0.lock().unwrap().emit(event);
            }
        }
        let shared = SharedSink::new(Probe(Arc::clone(&sink)));
        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let mut s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    s.emit(&Event::SpotEvicted { t: i, job: worker });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.lock().unwrap().events().len(), 100);
    }
}
