//! Reconstructs per-job statistics from a serialized event stream.
//!
//! This is the analysis half of the tracing layer: `gaia trace
//! summarize events.jsonl` parses the stream back into typed
//! [`Event`]s, validates it (monotone timestamps, every
//! `SegmentStarted` matched by a `SegmentFinished`), and aggregates
//! wait/eviction/pool breakdowns. For a deterministic input the
//! rendered summary is byte-stable, which CI exploits by diffing the
//! summary of a traced reference run against a committed golden file.

use std::collections::BTreeMap;
use std::io::BufRead;

use crate::event::{Event, PoolKind};

/// Upper bounds (hours) of the wait-time breakdown in [`TraceSummary`].
pub const WAIT_BOUNDS_HOURS: [f64; 5] = [1.0, 4.0, 12.0, 24.0, 48.0];

#[derive(Debug, Default, Clone)]
struct JobState {
    submitted: bool,
    open_segments: Vec<u32>,
    completed: bool,
}

/// Aggregated statistics reconstructed from an event stream.
#[derive(Debug, Default, Clone)]
pub struct TraceSummary {
    /// Total events read.
    pub events: u64,
    /// Timestamp of the first/last simulation event, minutes.
    pub first_t: Option<u64>,
    /// See [`TraceSummary::first_t`].
    pub last_t: Option<u64>,
    /// `JobSubmitted` count.
    pub jobs_submitted: u64,
    /// `JobCompleted` count.
    pub jobs_completed: u64,
    /// `PlanChosen` count.
    pub plans_chosen: u64,
    /// `SpotEvicted` count.
    pub evictions: u64,
    /// `SegmentStarted` count.
    pub segments_started: u64,
    /// `SegmentFinished` count.
    pub segments_finished: u64,
    /// Segments finished with `useful == false`.
    pub segments_wasted: u64,
    /// `WidthChanged` count (elastic plans only; 0 for every
    /// non-elastic stream, which keeps their rendering byte-stable).
    pub width_changes: u64,
    /// `SegmentStarted` counts by pool.
    pub segments_by_pool: BTreeMap<&'static str, u64>,
    /// Sum of `JobCompleted.wait`, minutes.
    pub total_wait_min: u64,
    /// Sum of `JobCompleted.stretch`.
    pub total_stretch: f64,
    /// Wait-time histogram: one bucket per [`WAIT_BOUNDS_HOURS`] entry
    /// plus an overflow bucket.
    pub wait_buckets: Vec<u64>,
    /// Jobs with at least one eviction.
    pub jobs_evicted: u64,
    /// `FaultInjected` count (armed fault-plan entries).
    pub faults_injected: u64,
    /// `DegradedModeEntered` count (forecast-outage fallbacks).
    pub degraded_entries: u64,
    /// Sweep cells finished with status `"completed"` / `"retried"` /
    /// `"failed"` — retried cells recovered and count as completed, with
    /// their retry provenance tallied in
    /// [`TraceSummary::cells_retried`].
    pub cells_completed: u64,
    /// See [`TraceSummary::cells_completed`].
    pub cells_failed: u64,
    /// Cells that finished with status `"retried"`, plus `CellRetried`
    /// attempt events.
    pub cells_retried: u64,
    /// `CacheHit` / `CacheMiss` counts.
    pub cache_hits: u64,
    /// See [`TraceSummary::cache_hits`].
    pub cache_misses: u64,
    /// `CachePersist` count (durable result-cache writes).
    pub cache_persists: u64,
    /// `ShardFinished` count (sweep shards observed in the stream).
    pub shards_finished: u64,
    /// `JobAccepted` count (serving-layer submissions).
    pub jobs_accepted: u64,
    /// `Replan` count (incremental planner runs in the serving layer).
    pub replans: u64,
    /// `SnapshotWritten` count.
    pub snapshots_written: u64,
    /// Stream validation failures (non-monotone timestamps, unbalanced
    /// segments, duplicate lifecycle events). Empty for a well-formed
    /// trace.
    pub issues: Vec<String>,
}

impl TraceSummary {
    /// Summarize an in-memory event sequence.
    pub fn from_events<'a, I>(events: I) -> TraceSummary
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut builder = Builder::default();
        for event in events {
            builder.push(event);
        }
        builder.finish()
    }

    /// Parse and summarize a JSONL stream; blank lines are skipped.
    /// Returns an error only on I/O or parse failure — semantic stream
    /// problems are collected into [`TraceSummary::issues`].
    pub fn from_jsonl<R: BufRead>(reader: R) -> Result<TraceSummary, String> {
        let mut builder = Builder::default();
        for (idx, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("read error on line {}: {e}", idx + 1))?;
            if line.trim().is_empty() {
                continue;
            }
            let event =
                Event::from_json_line(&line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            builder.push(&event);
        }
        Ok(builder.finish())
    }

    /// Mean stretch over completed jobs, or `None` if none completed.
    pub fn mean_stretch(&self) -> Option<f64> {
        (self.jobs_completed > 0).then(|| self.total_stretch / self.jobs_completed as f64)
    }

    /// Render the deterministic plain-text summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("trace summary\n");
        out.push_str(&format!("  events            {}\n", self.events));
        if let (Some(first), Some(last)) = (self.first_t, self.last_t) {
            out.push_str(&format!(
                "  sim time span     {first}..{last} min ({:.1} h)\n",
                (last - first) as f64 / 60.0
            ));
        }
        out.push_str("\njobs\n");
        out.push_str(&format!("  submitted         {}\n", self.jobs_submitted));
        out.push_str(&format!("  plans chosen      {}\n", self.plans_chosen));
        out.push_str(&format!("  completed         {}\n", self.jobs_completed));
        out.push_str(&format!(
            "  total wait        {} min ({:.1} h)\n",
            self.total_wait_min,
            self.total_wait_min as f64 / 60.0
        ));
        if self.jobs_completed > 0 {
            out.push_str(&format!(
                "  mean wait         {:.1} min\n",
                self.total_wait_min as f64 / self.jobs_completed as f64
            ));
            out.push_str(&format!(
                "  mean stretch      {:.3}\n",
                self.total_stretch / self.jobs_completed as f64
            ));
        }
        out.push_str("\nwait breakdown (completed jobs)\n");
        let mut lower = 0.0;
        for (i, count) in self.wait_buckets.iter().enumerate() {
            let label = match WAIT_BOUNDS_HOURS.get(i) {
                Some(upper) => format!("{lower:>5.0}h - {upper:>3.0}h"),
                None => format!("  over {lower:>3.0}h"),
            };
            out.push_str(&format!("  {label}      {count}\n"));
            if let Some(upper) = WAIT_BOUNDS_HOURS.get(i) {
                lower = *upper;
            }
        }
        out.push_str("\nsegments\n");
        out.push_str(&format!("  started           {}\n", self.segments_started));
        out.push_str(&format!("  finished          {}\n", self.segments_finished));
        out.push_str(&format!("  wasted            {}\n", self.segments_wasted));
        if self.width_changes > 0 {
            out.push_str(&format!("  width changes     {}\n", self.width_changes));
        }
        for pool in [PoolKind::Reserved, PoolKind::OnDemand, PoolKind::Spot] {
            let count = self
                .segments_by_pool
                .get(pool.as_str())
                .copied()
                .unwrap_or(0);
            out.push_str(&format!("  on {:<10}     {count}\n", pool.as_str()));
        }
        out.push_str("\nevictions\n");
        out.push_str(&format!("  spot evictions    {}\n", self.evictions));
        out.push_str(&format!("  jobs evicted      {}\n", self.jobs_evicted));
        if self.faults_injected + self.degraded_entries > 0 {
            out.push_str("\nfaults\n");
            out.push_str(&format!("  injected          {}\n", self.faults_injected));
            out.push_str(&format!("  degraded entries  {}\n", self.degraded_entries));
        }
        if self.jobs_accepted + self.replans + self.snapshots_written > 0 {
            out.push_str("\nserving\n");
            out.push_str(&format!("  jobs accepted     {}\n", self.jobs_accepted));
            out.push_str(&format!("  replans           {}\n", self.replans));
            out.push_str(&format!("  snapshots written {}\n", self.snapshots_written));
        }
        if self.cells_completed + self.cells_failed + self.cache_hits + self.cache_misses > 0 {
            out.push_str("\nsweep\n");
            out.push_str(&format!("  cells completed   {}\n", self.cells_completed));
            out.push_str(&format!("  cells failed      {}\n", self.cells_failed));
            if self.cells_retried > 0 {
                out.push_str(&format!("  retry attempts    {}\n", self.cells_retried));
            }
            out.push_str(&format!("  cache hits        {}\n", self.cache_hits));
            out.push_str(&format!("  cache misses      {}\n", self.cache_misses));
            if self.cache_persists > 0 {
                out.push_str(&format!("  cache persists    {}\n", self.cache_persists));
            }
            if self.shards_finished > 0 {
                out.push_str(&format!("  shards finished   {}\n", self.shards_finished));
            }
        }
        if self.issues.is_empty() {
            out.push_str("\nstream checks: ok\n");
        } else {
            out.push_str(&format!(
                "\nstream checks: {} issue(s)\n",
                self.issues.len()
            ));
            for issue in &self.issues {
                out.push_str(&format!("  - {issue}\n"));
            }
        }
        out
    }
}

/// Incremental summarizer for live tailing (`gaia trace summarize
/// --follow`): feed lines (or events) as they are appended and render
/// an up-to-date [`TraceSummary`] at any point, without re-reading the
/// stream from the start.
///
/// [`SummaryStream::summary`] finalizes a *copy* of the running state,
/// so end-of-stream checks (unmatched segment starts, completions
/// without submissions) reflect "if the stream ended here" — on a live
/// trace an open segment is expected mid-run and disappears from the
/// next render once its finish event arrives.
#[derive(Debug, Default, Clone)]
pub struct SummaryStream {
    builder: Builder,
    lines: u64,
}

impl SummaryStream {
    /// Empty stream; equivalent to `SummaryStream::default()`.
    pub fn new() -> Self {
        SummaryStream::default()
    }

    /// Parse and absorb one JSONL line. Blank lines are skipped (and
    /// not counted); a malformed line is an error and absorbs nothing.
    pub fn push_line(&mut self, line: &str) -> Result<(), String> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let event = Event::from_json_line(line)?;
        self.lines += 1;
        self.builder.push(&event);
        Ok(())
    }

    /// Absorb one already-parsed event.
    pub fn push_event(&mut self, event: &Event) {
        self.lines += 1;
        self.builder.push(event);
    }

    /// Non-blank lines (or events) absorbed so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Summary of everything absorbed so far, with end-of-stream checks
    /// applied as if the stream ended here.
    pub fn summary(&self) -> TraceSummary {
        self.builder.clone().finish()
    }
}

#[derive(Debug, Default, Clone)]
struct Builder {
    summary: TraceSummary,
    jobs: BTreeMap<u64, JobState>,
    evicted_jobs: BTreeMap<u64, u64>,
}

impl Builder {
    fn push(&mut self, event: &Event) {
        let s = &mut self.summary;
        s.events += 1;
        if let Some(t) = event.timestamp() {
            if s.first_t.is_none() {
                s.first_t = Some(t);
            }
            if let Some(last) = s.last_t {
                if t < last {
                    s.issues.push(format!(
                        "non-monotone timestamp: {} at t={t} after t={last}",
                        event.name()
                    ));
                }
            }
            s.last_t = Some(s.last_t.map_or(t, |last| last.max(t)));
        }
        match event {
            Event::JobSubmitted { job, .. } => {
                s.jobs_submitted += 1;
                let state = self.jobs.entry(*job).or_default();
                if state.submitted {
                    s.issues.push(format!("job {job} submitted twice"));
                }
                state.submitted = true;
            }
            Event::PlanChosen { .. } => s.plans_chosen += 1,
            Event::SegmentStarted { job, seg, pool, .. } => {
                s.segments_started += 1;
                *s.segments_by_pool.entry(pool.as_str()).or_insert(0) += 1;
                let state = self.jobs.entry(*job).or_default();
                if state.open_segments.contains(seg) {
                    s.issues
                        .push(format!("job {job} segment {seg} started twice"));
                }
                state.open_segments.push(*seg);
            }
            Event::SegmentFinished {
                job, seg, useful, ..
            } => {
                s.segments_finished += 1;
                if !*useful {
                    s.segments_wasted += 1;
                }
                let state = self.jobs.entry(*job).or_default();
                match state.open_segments.iter().position(|o| o == seg) {
                    Some(pos) => {
                        state.open_segments.remove(pos);
                    }
                    None => s
                        .issues
                        .push(format!("job {job} segment {seg} finished without a start")),
                }
            }
            Event::WidthChanged { .. } => s.width_changes += 1,
            Event::SpotEvicted { job, .. } => {
                s.evictions += 1;
                *self.evicted_jobs.entry(*job).or_insert(0) += 1;
            }
            Event::JobCompleted {
                job, wait, stretch, ..
            } => {
                s.jobs_completed += 1;
                s.total_wait_min += wait;
                if stretch.is_finite() {
                    s.total_stretch += stretch;
                }
                let wait_hours = *wait as f64 / 60.0;
                let idx = WAIT_BOUNDS_HOURS.partition_point(|b| wait_hours > *b);
                if s.wait_buckets.is_empty() {
                    s.wait_buckets = vec![0; WAIT_BOUNDS_HOURS.len() + 1];
                }
                s.wait_buckets[idx] += 1;
                let state = self.jobs.entry(*job).or_default();
                if state.completed {
                    s.issues.push(format!("job {job} completed twice"));
                }
                state.completed = true;
            }
            Event::FaultInjected { .. } => s.faults_injected += 1,
            Event::DegradedModeEntered { .. } => s.degraded_entries += 1,
            Event::CellFinished { status, .. } => {
                // A retried cell recovered on a later attempt: it completed.
                if status == "completed" || status == "retried" {
                    s.cells_completed += 1;
                } else {
                    s.cells_failed += 1;
                }
            }
            Event::CellRetried { .. } => s.cells_retried += 1,
            Event::CellStarted { .. } | Event::ShardStarted { .. } => {}
            Event::ShardFinished { .. } => s.shards_finished += 1,
            Event::CacheHit { .. } => s.cache_hits += 1,
            Event::CacheMiss { .. } => s.cache_misses += 1,
            Event::CachePersist { .. } => s.cache_persists += 1,
            Event::JobAccepted { .. } => s.jobs_accepted += 1,
            Event::Replan { .. } => s.replans += 1,
            Event::SnapshotWritten { .. } => s.snapshots_written += 1,
        }
    }

    fn finish(mut self) -> TraceSummary {
        if self.summary.wait_buckets.is_empty() {
            self.summary.wait_buckets = vec![0; WAIT_BOUNDS_HOURS.len() + 1];
        }
        for (job, state) in &self.jobs {
            if !state.open_segments.is_empty() {
                self.summary.issues.push(format!(
                    "job {job} has {} unmatched segment start(s)",
                    state.open_segments.len()
                ));
            }
            if state.completed && !state.submitted {
                self.summary
                    .issues
                    .push(format!("job {job} completed without a submission"));
            }
        }
        self.summary.jobs_evicted = self.evicted_jobs.len() as u64;
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PlanMode, PoolKind};

    fn well_formed() -> Vec<Event> {
        vec![
            Event::JobSubmitted {
                t: 0,
                job: 0,
                cpus: 1,
                len: 60,
            },
            Event::PlanChosen {
                t: 0,
                job: 0,
                mode: PlanMode::Once,
                start: 30,
                segs: 1,
                opportunistic: false,
                spot: true,
                est_carbon_g: 10.0,
                est_cost: 0.5,
            },
            Event::SegmentStarted {
                t: 30,
                job: 0,
                seg: 0,
                pool: PoolKind::Spot,
            },
            Event::SpotEvicted { t: 45, job: 0 },
            Event::SegmentFinished {
                t: 45,
                job: 0,
                seg: 0,
                pool: PoolKind::Spot,
                useful: false,
            },
            Event::SegmentStarted {
                t: 50,
                job: 0,
                seg: 1,
                pool: PoolKind::OnDemand,
            },
            Event::SegmentFinished {
                t: 110,
                job: 0,
                seg: 1,
                pool: PoolKind::OnDemand,
                useful: true,
            },
            Event::JobCompleted {
                t: 110,
                job: 0,
                wait: 50,
                stretch: 110.0 / 60.0,
            },
        ]
    }

    #[test]
    fn aggregates_well_formed_stream() {
        let summary = TraceSummary::from_events(&well_formed());
        assert!(summary.issues.is_empty(), "{:?}", summary.issues);
        assert_eq!(summary.events, 8);
        assert_eq!(summary.jobs_submitted, 1);
        assert_eq!(summary.jobs_completed, 1);
        assert_eq!(summary.plans_chosen, 1);
        assert_eq!(summary.evictions, 1);
        assert_eq!(summary.jobs_evicted, 1);
        assert_eq!(summary.segments_started, 2);
        assert_eq!(summary.segments_finished, 2);
        assert_eq!(summary.segments_wasted, 1);
        assert_eq!(summary.total_wait_min, 50);
        assert_eq!(summary.segments_by_pool.get("spot"), Some(&1));
        assert_eq!(summary.segments_by_pool.get("on-demand"), Some(&1));
        assert_eq!(summary.wait_buckets, vec![1, 0, 0, 0, 0, 0]);
        assert_eq!(summary.first_t, Some(0));
        assert_eq!(summary.last_t, Some(110));
    }

    #[test]
    fn summary_stream_matches_batch_and_is_resumable() {
        let events = well_formed();
        let mut stream = SummaryStream::new();
        // Mid-stream render: the open segment shows up as an issue now…
        for ev in &events[..3] {
            stream.push_event(ev);
        }
        let midway = stream.summary();
        assert!(
            midway
                .issues
                .iter()
                .any(|i| i.contains("unmatched segment")),
            "{:?}",
            midway.issues
        );
        // …and is gone once the rest of the stream arrives.
        for ev in &events[3..] {
            stream.push_event(ev);
        }
        assert_eq!(stream.lines(), events.len() as u64);
        let done = stream.summary();
        assert!(done.issues.is_empty(), "{:?}", done.issues);
        assert_eq!(done.render(), TraceSummary::from_events(&events).render());
    }

    #[test]
    fn summary_stream_accepts_lines_and_skips_blanks() {
        let mut stream = SummaryStream::new();
        stream
            .push_line(&Event::SpotEvicted { t: 5, job: 1 }.to_json_line())
            .unwrap();
        stream.push_line("   ").unwrap();
        assert!(stream.push_line("{not json").is_err());
        assert_eq!(stream.lines(), 1);
        assert_eq!(stream.summary().evictions, 1);
    }

    #[test]
    fn jsonl_round_trip_matches_in_memory() {
        let events = well_formed();
        let mut text = String::new();
        for ev in &events {
            text.push_str(&ev.to_json_line());
            text.push('\n');
        }
        let from_jsonl = TraceSummary::from_jsonl(text.as_bytes()).unwrap();
        let from_events = TraceSummary::from_events(&events);
        assert_eq!(from_jsonl.render(), from_events.render());
    }

    #[test]
    fn detects_non_monotone_timestamps() {
        let events = vec![
            Event::SpotEvicted { t: 100, job: 0 },
            Event::SpotEvicted { t: 50, job: 0 },
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.issues.len(), 1);
        assert!(
            summary.issues[0].contains("non-monotone"),
            "{:?}",
            summary.issues
        );
    }

    #[test]
    fn detects_unbalanced_segments() {
        let events = vec![Event::SegmentStarted {
            t: 0,
            job: 3,
            seg: 0,
            pool: PoolKind::Reserved,
        }];
        let summary = TraceSummary::from_events(&events);
        assert!(
            summary
                .issues
                .iter()
                .any(|i| i.contains("unmatched segment")),
            "{:?}",
            summary.issues
        );
    }

    #[test]
    fn detects_finish_without_start() {
        let events = vec![Event::SegmentFinished {
            t: 0,
            job: 3,
            seg: 2,
            pool: PoolKind::Reserved,
            useful: true,
        }];
        let summary = TraceSummary::from_events(&events);
        assert!(
            summary
                .issues
                .iter()
                .any(|i| i.contains("finished without a start")),
            "{:?}",
            summary.issues
        );
    }

    #[test]
    fn render_is_deterministic_and_mentions_sections() {
        let summary = TraceSummary::from_events(&well_formed());
        let a = summary.render();
        let b = summary.render();
        assert_eq!(a, b);
        assert!(a.contains("trace summary"), "{a}");
        assert!(a.contains("stream checks: ok"), "{a}");
        // No sweep events -> no sweep section.
        assert!(!a.contains("sweep\n"), "{a}");
    }

    #[test]
    fn sweep_events_populate_sweep_section() {
        let events = vec![
            Event::CellStarted {
                idx: 0,
                key: "k".into(),
            },
            Event::CellFinished {
                idx: 0,
                key: "k".into(),
                status: "completed".into(),
                queue_wait_s: 0.0,
                exec_s: 0.1,
            },
            Event::CacheHit {
                kind: crate::event::CacheKind::Carbon,
                key: "c".into(),
            },
            Event::CacheMiss {
                kind: crate::event::CacheKind::Workload,
                key: "w".into(),
            },
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.cells_completed, 1);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 1);
        let text = summary.render();
        assert!(text.contains("cells completed   1"), "{text}");
        // No fault or retry events -> neither section nor line appears.
        assert!(!text.contains("faults\n"), "{text}");
        assert!(!text.contains("retry attempts"), "{text}");
    }

    #[test]
    fn fault_events_populate_fault_section_and_retries_count_completed() {
        let events = vec![
            Event::FaultInjected {
                t: 0,
                kind: "eviction_storm".into(),
                start: 0,
                end: 1440,
                magnitude: 8.0,
            },
            Event::DegradedModeEntered { t: 60, until: 120 },
            Event::CellRetried {
                idx: 0,
                key: "k".into(),
                attempt: 1,
                error: "injected fault (attempt 1)".into(),
            },
            Event::CellFinished {
                idx: 0,
                key: "k".into(),
                status: "retried".into(),
                queue_wait_s: 0.0,
                exec_s: 0.1,
            },
        ];
        let summary = TraceSummary::from_events(&events);
        assert!(summary.issues.is_empty(), "{:?}", summary.issues);
        assert_eq!(summary.faults_injected, 1);
        assert_eq!(summary.degraded_entries, 1);
        assert_eq!(summary.cells_retried, 1);
        assert_eq!(summary.cells_completed, 1, "retried cells recovered");
        assert_eq!(summary.cells_failed, 0);
        let text = summary.render();
        assert!(text.contains("injected          1"), "{text}");
        assert!(text.contains("retry attempts    1"), "{text}");
    }
}
