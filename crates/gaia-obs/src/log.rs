//! Leveled stderr logging controlled by the `GAIA_LOG` environment
//! variable.
//!
//! `GAIA_LOG` accepts `error`, `warn`, `info` (the default), or `debug`;
//! unknown values fall back to `info`. The level is read once per
//! process. Messages print to stderr as `gaia: <message>` for warn/info
//! and `gaia[<level>]: <message>` for error/debug, keeping the default
//! output format identical to the `eprintln!` lines this replaces.
//!
//! Use through the macros:
//!
//! ```
//! gaia_obs::info!("sweep finished: {} cells", 24);
//! gaia_obs::debug!("cache key {:?}", "SA-AU/h10080");
//! ```

use std::sync::OnceLock;

/// Log verbosity, ordered from quietest to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or must-see problems.
    Error,
    /// Suspicious but non-fatal conditions.
    Warn,
    /// Progress and result summaries (default).
    Info,
    /// Diagnostic detail for debugging.
    Debug,
}

impl Level {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

static MAX_LEVEL: OnceLock<Level> = OnceLock::new();

/// The active maximum level, from `GAIA_LOG` (default [`Level::Info`]).
pub fn max_level() -> Level {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("GAIA_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    })
}

/// Whether messages at `level` are currently printed.
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Print one already-formatted message (macro implementation detail).
#[doc(hidden)]
pub fn print(level: Level, args: std::fmt::Arguments<'_>) {
    match level {
        // Warn/info keep the bare `gaia:` prefix the previous
        // eprintln!-based diagnostics used, so existing output (and the
        // CLI tests that grep it) are unchanged at the default level.
        Level::Warn | Level::Info => eprintln!("gaia: {args}"),
        Level::Error | Level::Debug => eprintln!("gaia[{}]: {args}", level.as_str()),
    }
}

/// Log at an explicit [`Level`].
#[macro_export]
macro_rules! log {
    ($level:expr, $($arg:tt)*) => {{
        let level = $level;
        if $crate::log::enabled(level) {
            $crate::log::print(level, format_args!($($arg)*));
        }
    }};
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Error, $($arg)*) };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Warn, $($arg)*) };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Info, $($arg)*) };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Debug, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse(" WARN "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("Debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn default_level_enables_info_not_debug() {
        // GAIA_LOG is unset in the test environment, so the default
        // applies. (Process-wide OnceLock; tests that need other levels
        // exercise them through the CLI binary instead.)
        if std::env::var("GAIA_LOG").is_err() {
            assert_eq!(max_level(), Level::Info);
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Info));
            assert!(!enabled(Level::Debug));
        }
    }

    #[test]
    fn macros_expand_without_side_effects_needed() {
        // Just exercise each macro arm; output goes to stderr.
        crate::log!(Level::Debug, "hidden at default level {}", 1);
        crate::debug!("also hidden {}", 2);
    }
}
