//! Named monotonic counters and fixed-bucket histograms.
//!
//! The registry is shared across sweep workers, so all state is atomic
//! and all accumulation is commutative: counters are plain atomic adds,
//! and histogram sums are stored in fixed-point (milli-units) so the
//! total is independent of observation order. That makes
//! [`MetricsRegistry::snapshot_json`] byte-identical for any worker
//! count — the same property `tests/determinism.rs` already enforces
//! for the sweep's CSV artifacts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed-point scale for histogram sums: 1/1000 of a unit.
const SUM_SCALE: f64 = 1000.0;

/// A named monotonic counter handle; cheap to clone and thread-safe.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle; cheap to clone and thread-safe.
///
/// Buckets are non-cumulative: bucket `i` counts observations `v` with
/// `bounds[i-1] < v <= bounds[i]`, plus one overflow bucket above the
/// last bound. The sum is kept in fixed-point milli-units so concurrent
/// observation order cannot perturb it.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_milli: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_milli: AtomicU64::new(0),
        }
    }

    /// Record one observation. Negative and non-finite values clamp to
    /// zero (they indicate upstream bugs, but metrics must not panic).
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let milli = (v * SUM_SCALE).round() as u64;
        self.sum_milli.fetch_add(milli, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, reconstructed from fixed-point storage.
    pub fn sum(&self) -> f64 {
        self.sum_milli.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Per-bucket counts, one entry per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// Registry of named counters and histograms.
///
/// Handles are created on first use and shared afterwards; snapshots
/// iterate names in sorted (BTreeMap) order for deterministic output.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().expect("metrics registry lock");
        let cell = counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Get or create the histogram with this name.
    ///
    /// # Panics
    /// If the name already exists with different bounds — that would
    /// silently merge incompatible distributions.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("metrics registry lock");
        let hist = histograms
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)));
        assert_eq!(
            hist.bounds(),
            bounds,
            "histogram {name:?} registered twice with different bounds"
        );
        Arc::clone(hist)
    }

    /// Snapshot every metric as a deterministic JSON document.
    ///
    /// Counters come first, then histograms, each sorted by name;
    /// histogram buckets carry `"le"` upper bounds with `null` for the
    /// overflow bucket.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.counters.lock().expect("metrics registry lock");
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value.load(Ordering::Relaxed).to_string());
        }
        drop(counters);
        out.push_str("\n  },\n  \"histograms\": {");
        let histograms = self.histograms.lock().expect("metrics registry lock");
        for (i, (name, hist)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": {\"count\": ");
            out.push_str(&hist.count().to_string());
            out.push_str(", \"sum\": ");
            out.push_str(&format!("{}", hist.sum()));
            out.push_str(", \"buckets\": [");
            let counts = hist.bucket_counts();
            for (j, count) in counts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"le\": ");
                match hist.bounds().get(j) {
                    Some(bound) => out.push_str(&format!("{bound}")),
                    None => out.push_str("null"),
                }
                out.push_str(", \"count\": ");
                out.push_str(&count.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        drop(histograms);
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("sweep.cells");
        let b = reg.counter("sweep.cells");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("sweep.cells").get(), 3);
        assert_eq!(reg.counter("sweep.other").get(), 0);
    }

    #[test]
    fn histogram_buckets_observations() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait_hours", &[1.0, 4.0, 12.0]);
        h.observe(0.5); // bucket 0 (<= 1)
        h.observe(1.0); // bucket 0 (<= 1, inclusive upper bound)
        h.observe(2.0); // bucket 1
        h.observe(100.0); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 0, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 103.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_pathological_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[1.0]);
        h.observe(-5.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.bucket_counts(), vec![3, 0]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_rebind_with_different_bounds_panics() {
        let reg = MetricsRegistry::new();
        reg.histogram("h", &[1.0]);
        reg.histogram("h", &[2.0]);
    }

    #[test]
    fn snapshot_is_order_independent() {
        // Build the same metrics in two different observation orders and
        // from multiple threads; snapshots must be byte-identical.
        let build = |reverse: bool| {
            let reg = Arc::new(MetricsRegistry::new());
            let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
            let mut handles = Vec::new();
            for chunk in values.chunks(25) {
                let reg = Arc::clone(&reg);
                let mut chunk = chunk.to_vec();
                if reverse {
                    chunk.reverse();
                }
                handles.push(std::thread::spawn(move || {
                    let h = reg.histogram("v", &[5.0, 20.0]);
                    let c = reg.counter("n");
                    for v in chunk {
                        h.observe(v);
                        c.inc();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            reg.snapshot_json()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn snapshot_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.histogram("b.hist", &[1.0]).observe(0.25);
        let snap = reg.snapshot_json();
        assert!(snap.contains("\"a.count\": 7"), "{snap}");
        assert!(
            snap.contains("\"b.hist\": {\"count\": 1, \"sum\": 0.25"),
            "{snap}"
        );
        assert!(snap.contains("{\"le\": null, \"count\": 0}"), "{snap}");
    }
}
