//! Named monotonic counters and log2-bucketed streaming histograms.
//!
//! The registry is shared across sweep workers and, since the serving
//! telemetry work, between a daemon's engine thread and its metrics
//! exposition thread — so all state is atomic and all accumulation is
//! commutative: counters are plain atomic adds, and histogram sums are
//! stored in fixed-point (micro-units) so the total is independent of
//! observation order. That makes [`MetricsRegistry::snapshot_json`]
//! byte-identical for any worker count — the same property
//! `tests/determinism.rs` already enforces for the sweep's CSV
//! artifacts.
//!
//! # Bucket scheme
//!
//! [`Histogram`] replaced an earlier fixed-bounds design whose
//! milli-unit resolution collapsed every sub-millisecond serving
//! latency into the first bucket. Buckets are now geometric with no
//! configuration: observations are converted to integer micro-units
//! (`value × 1e6`, rounded) and bucket `i ≥ 1` covers micro-values in
//! `(2^(i-1), 2^i]`; bucket `0` covers `0` and `1`. With 64 buckets the
//! range spans sub-microsecond to ~146 millennia of seconds-denominated
//! latency, every bucket's relative width is 2×, and two histograms
//! merge by adding bucket counts — no bounds negotiation, no rebinning.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed-point scale: one unit is `1e6` micro-units.
const SUM_SCALE: f64 = 1e6;

/// Number of log2 buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A named monotonic counter handle; cheap to clone and thread-safe.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed streaming histogram; thread-safe and mergeable.
///
/// Observations are stored as integer micro-units. Bucket `0` counts
/// micro-values `≤ 1`; bucket `i` counts micro-values in
/// `(2^(i-1), 2^i]`; the last bucket additionally absorbs everything
/// above its lower bound. The sum is kept in fixed-point micro-units so
/// concurrent observation order cannot perturb it, and quantile queries
/// return the (inclusive) upper bound of the covering bucket — an
/// over-estimate by at most 2×, which is the scheme's stated
/// resolution.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micro: AtomicU64,
}

/// Bucket index for an observation of `micro` micro-units.
#[inline]
fn bucket_index(micro: u64) -> usize {
    if micro <= 1 {
        0
    } else {
        // ceil(log2(micro)) = 64 - leading_zeros(micro - 1), clamped
        // into the last bucket.
        (64 - (micro - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, in micro-units.
#[inline]
pub fn bucket_upper_micro(i: usize) -> u64 {
    1u64 << i
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }

    /// Record one observation in units. Negative and non-finite values
    /// clamp to zero (they indicate upstream bugs, but metrics must not
    /// panic).
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.observe_micros((v * SUM_SCALE).round() as u64);
    }

    /// Record one observation already expressed in micro-units — the
    /// allocation-free hot path the serving latency telemetry uses
    /// (`Instant::elapsed().as_micros()` when the unit is seconds).
    #[inline]
    pub fn observe_micros(&self, micro: u64) {
        self.buckets[bucket_index(micro)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in units, reconstructed from fixed-point
    /// storage.
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Sum of observations in micro-units.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micro.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, all [`HISTOGRAM_BUCKETS`] of them.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) as the inclusive upper bound of
    /// the covering bucket, in micro-units. Returns 0 for an empty
    /// histogram. The true value lies within a factor of 2 below the
    /// returned bound (exact for bucket 0).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_micro(i);
            }
        }
        // Concurrent observers can make `count` read ahead of the
        // buckets; answer with the last non-empty bucket's bound.
        bucket_upper_micro(HISTOGRAM_BUCKETS - 1)
    }

    /// The `q`-quantile in units; see [`Histogram::quantile_micros`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.quantile_micros(q) as f64 / SUM_SCALE
    }

    /// Fold another histogram into this one — the merge used when
    /// combining per-shard telemetry. Bucket-wise addition: the result
    /// is identical to having observed both streams into one histogram.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_micro
            .fetch_add(other.sum_micro.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Fold raw histogram state into this one: per-bucket counts plus
    /// the total count and fixed-point sum. This is the deserialization
    /// half of [`Histogram::merge_from`] — a shard or result-cache entry
    /// stores `(bucket_counts, count, sum_micros)` and replays it here,
    /// producing the same state as having observed the original stream.
    /// `buckets` beyond [`HISTOGRAM_BUCKETS`] entries are ignored.
    pub fn merge_raw(&self, buckets: &[u64], count: u64, sum_micro: u64) {
        for (mine, &n) in self.buckets.iter().zip(buckets.iter()) {
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum_micro.fetch_add(sum_micro, Ordering::Relaxed);
    }

    /// Append this histogram's state to a JSON string: count, sum (in
    /// units), and the non-empty buckets as `{"le": <units>, "count"}`
    /// pairs. Sparse on purpose — 64 mostly-empty buckets would bloat
    /// every snapshot — and still worker-count-invariant because which
    /// buckets are non-empty depends only on the merged totals.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\": ");
        out.push_str(&self.count().to_string());
        out.push_str(", \"sum\": ");
        out.push_str(&format!("{}", self.sum()));
        out.push_str(", \"buckets\": [");
        let mut first = true;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str("{\"le\": ");
            out.push_str(&format!("{}", bucket_upper_micro(i) as f64 / SUM_SCALE));
            out.push_str(", \"count\": ");
            out.push_str(&n.to_string());
            out.push('}');
        }
        out.push_str("]}");
    }
}

/// Registry of named counters and histograms.
///
/// Handles are created on first use and shared afterwards; snapshots
/// iterate names in sorted (BTreeMap) order for deterministic output.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().expect("metrics registry lock");
        let cell = counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Get or create the histogram with this name. All histograms share
    /// the log2 micro-unit bucket scheme, so there is no bounds
    /// argument and re-registration cannot conflict.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("metrics registry lock");
        let hist = histograms
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new()));
        Arc::clone(hist)
    }

    /// Snapshot every metric as a deterministic JSON document.
    ///
    /// Counters come first, then histograms, each sorted by name;
    /// histogram buckets carry `"le"` upper bounds in units (micro-unit
    /// powers of two divided by 1e6), non-empty buckets only.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.counters.lock().expect("metrics registry lock");
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value.load(Ordering::Relaxed).to_string());
        }
        drop(counters);
        out.push_str("\n  },\n  \"histograms\": {");
        let histograms = self.histograms.lock().expect("metrics registry lock");
        for (i, (name, hist)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": ");
            hist.write_json(&mut out);
        }
        drop(histograms);
        out.push_str("\n  }\n}\n");
        out
    }

    /// Every counter as `(name, value)`, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let counters = self.counters.lock().expect("metrics registry lock");
        counters
            .iter()
            .map(|(name, value)| (name.clone(), value.load(Ordering::Relaxed)))
            .collect()
    }

    /// Every histogram handle as `(name, histogram)`, sorted by name.
    pub fn histogram_values(&self) -> Vec<(String, Arc<Histogram>)> {
        let histograms = self.histograms.lock().expect("metrics registry lock");
        histograms
            .iter()
            .map(|(name, hist)| (name.clone(), Arc::clone(hist)))
            .collect()
    }

    /// Fold another registry into this one: counters add, histograms
    /// merge bucket-wise. Metrics accumulation is commutative, so
    /// merging per-cell or per-shard registries in any order yields the
    /// same state as observing everything into one registry — the
    /// property that keeps `metrics.json` byte-identical across worker
    /// and shard counts.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        for (name, value) in other.counter_values() {
            if value > 0 {
                self.counter(&name).add(value);
            } else {
                // Still materialize the name so snapshots list the same
                // metric set regardless of observed values.
                self.counter(&name);
            }
        }
        for (name, hist) in other.histogram_values() {
            self.histogram(&name).merge_from(&hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("sweep.cells");
        let b = reg.counter("sweep.cells");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("sweep.cells").get(), 3);
        assert_eq!(reg.counter("sweep.other").get(), 0);
    }

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's upper bound lands in its own bucket.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_micro(i)), i, "bucket {i}");
            assert_eq!(bucket_index(bucket_upper_micro(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_resolves_sub_milli_values() {
        // The old milli-unit fixed buckets collapsed everything below
        // 1ms into one bucket; the log2 µs scheme must keep 2µs and
        // 500µs distinguishable.
        let h = Histogram::new();
        h.observe_micros(2);
        h.observe_micros(500);
        let counts = h.bucket_counts();
        let non_empty: Vec<usize> = (0..counts.len()).filter(|&i| counts[i] > 0).collect();
        assert_eq!(non_empty, vec![1, 9], "2µ → (1,2], 500µ → (256,512]");
    }

    #[test]
    fn histogram_sum_and_count_track_observations() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait_hours");
        h.observe(0.5);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(100.0);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 103.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_pathological_values() {
        let h = Histogram::new();
        h.observe(-5.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.bucket_counts()[0], 3);
    }

    #[test]
    fn quantiles_return_covering_bucket_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile_micros(0.5), 0, "empty histogram");
        for micro in [10u64, 20, 30, 40, 1000, 2000, 4000, 8000, 100_000, 900_000] {
            h.observe_micros(micro);
        }
        // p50 rank is the 5th of 10 → 1000µ, bucket (512, 1024].
        assert_eq!(h.quantile_micros(0.50), 1024);
        // p99 rank is the 10th → 900000µ, bucket (524288, 1048576].
        assert_eq!(h.quantile_micros(0.99), 1 << 20);
        // Bounds over-estimate by at most 2×.
        assert!(h.quantile(0.5) >= 1000.0 / SUM_SCALE);
        assert!(h.quantile(0.5) <= 2.0 * 1000.0 / SUM_SCALE);
    }

    #[test]
    fn merge_equals_single_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let merged = Histogram::new();
        for i in 0..200u64 {
            let v = i * i * 37;
            if i % 2 == 0 {
                a.observe_micros(v);
            } else {
                b.observe_micros(v);
            }
            merged.observe_micros(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), merged.count());
        assert_eq!(a.sum_micros(), merged.sum_micros());
        assert_eq!(a.bucket_counts(), merged.bucket_counts());
    }

    #[test]
    fn registry_merge_equals_single_registry() {
        let direct = MetricsRegistry::new();
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for i in 0..50u64 {
            let (part, whole) = if i % 3 == 0 {
                (&a, &direct)
            } else {
                (&b, &direct)
            };
            part.counter("n").inc();
            whole.counter("n").inc();
            part.histogram("v").observe_micros(i * 97);
            whole.histogram("v").observe_micros(i * 97);
        }
        a.counter("only_zero"); // name without increments still merges
        direct.counter("only_zero");
        let merged = MetricsRegistry::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.snapshot_json(), direct.snapshot_json());
    }

    #[test]
    fn merge_raw_replays_serialized_state() {
        let src = Histogram::new();
        for micro in [3u64, 700, 15_000, 2_000_000] {
            src.observe_micros(micro);
        }
        let dst = Histogram::new();
        dst.observe_micros(42);
        let replay = Histogram::new();
        replay.observe_micros(42);
        replay.merge_from(&src);
        dst.merge_raw(&src.bucket_counts(), src.count(), src.sum_micros());
        assert_eq!(dst.bucket_counts(), replay.bucket_counts());
        assert_eq!(dst.count(), replay.count());
        assert_eq!(dst.sum_micros(), replay.sum_micros());
    }

    #[test]
    fn snapshot_is_order_independent() {
        // Build the same metrics in two different observation orders and
        // from multiple threads; snapshots must be byte-identical.
        let build = |reverse: bool| {
            let reg = Arc::new(MetricsRegistry::new());
            let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
            let mut handles = Vec::new();
            for chunk in values.chunks(25) {
                let reg = Arc::clone(&reg);
                let mut chunk = chunk.to_vec();
                if reverse {
                    chunk.reverse();
                }
                handles.push(std::thread::spawn(move || {
                    let h = reg.histogram("v");
                    let c = reg.counter("n");
                    for v in chunk {
                        h.observe(v);
                        c.inc();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            reg.snapshot_json()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn snapshot_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.histogram("b.hist").observe(0.25);
        let snap = reg.snapshot_json();
        assert!(snap.contains("\"a.count\": 7"), "{snap}");
        assert!(
            snap.contains("\"b.hist\": {\"count\": 1, \"sum\": 0.25"),
            "{snap}"
        );
        // 0.25 units = 250000µ → bucket (131072, 262144], le 0.262144.
        assert!(snap.contains("{\"le\": 0.262144, \"count\": 1}"), "{snap}");
        // Empty buckets are omitted.
        assert!(!snap.contains("\"count\": 0}"), "{snap}");
    }
}
