//! Scoped phase timers for self-profiling.
//!
//! A [`Profiler`] aggregates named phases; [`Profiler::phase`] returns a
//! [`TimerGuard`] that records the elapsed wall-clock time when dropped.
//! Phase timings measure real time and are therefore the one explicitly
//! **non-deterministic** output of this crate: they are reported in the
//! per-run phase table and `manifest.json` (already exempt from the
//! byte-identity contract), never in event streams or `metrics.json`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Phase {
    name: &'static str,
    total: Duration,
    count: u64,
}

/// Aggregates scoped phase timings by name, preserving first-use order.
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Mutex<Vec<Phase>>,
}

impl Profiler {
    /// New empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start timing a phase; the elapsed time is recorded when the
    /// returned guard drops. Re-entering the same name accumulates.
    pub fn phase(&self, name: &'static str) -> TimerGuard<'_> {
        TimerGuard {
            profiler: self,
            name,
            start: Instant::now(),
        }
    }

    fn record(&self, name: &'static str, elapsed: Duration) {
        let mut phases = self.phases.lock().expect("profiler lock");
        if let Some(phase) = phases.iter_mut().find(|p| p.name == name) {
            phase.total += elapsed;
            phase.count += 1;
        } else {
            phases.push(Phase {
                name,
                total: elapsed,
                count: 1,
            });
        }
    }

    /// `(name, total, calls)` per phase in first-use order.
    pub fn snapshot(&self) -> Vec<(&'static str, Duration, u64)> {
        let phases = self.phases.lock().expect("profiler lock");
        phases.iter().map(|p| (p.name, p.total, p.count)).collect()
    }

    /// Render the phase table, e.g. for stderr:
    ///
    /// ```text
    /// phase            total      calls   mean
    /// load_carbon      12.3ms         1   12.3ms
    /// event_loop       1.204s         1   1.204s
    /// ```
    pub fn table(&self) -> String {
        let snapshot = self.snapshot();
        let name_width = snapshot
            .iter()
            .map(|(name, _, _)| name.len())
            .chain(std::iter::once("phase".len()))
            .max()
            .unwrap_or(5);
        let mut out = format!(
            "{:<name_width$}  {:>10}  {:>7}  {:>10}\n",
            "phase", "total", "calls", "mean"
        );
        for (name, total, count) in snapshot {
            let mean = total / u32::try_from(count.max(1)).unwrap_or(u32::MAX);
            out.push_str(&format!(
                "{name:<name_width$}  {:>10}  {count:>7}  {:>10}\n",
                fmt_duration(total),
                fmt_duration(mean),
            ));
        }
        out
    }

    /// Phase timings as a JSON array (for the manifest's profile block).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (name, total, count)) in self.snapshot().into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"phase\": \"{name}\", \"total_ms\": {:.3}, \"calls\": {count}}}",
                total.as_secs_f64() * 1000.0
            ));
        }
        out.push(']');
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Records the time since [`Profiler::phase`] when dropped.
#[must_use = "the phase is timed until this guard is dropped"]
#[derive(Debug)]
pub struct TimerGuard<'p> {
    profiler: &'p Profiler,
    name: &'static str,
    start: Instant,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        self.profiler.record(self.name, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_preserve_order() {
        let prof = Profiler::new();
        {
            let _g = prof.phase("beta");
        }
        {
            let _g = prof.phase("alpha");
        }
        {
            let _g = prof.phase("beta");
        }
        let snap = prof.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "beta");
        assert_eq!(snap[0].2, 2);
        assert_eq!(snap[1].0, "alpha");
        assert_eq!(snap[1].2, 1);
    }

    #[test]
    fn guard_records_elapsed_time() {
        let prof = Profiler::new();
        {
            let _g = prof.phase("sleep");
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = prof.snapshot();
        assert!(snap[0].1 >= Duration::from_millis(4), "{:?}", snap[0].1);
    }

    #[test]
    fn table_and_json_render() {
        let prof = Profiler::new();
        {
            let _g = prof.phase("load");
        }
        let table = prof.table();
        assert!(table.starts_with("phase"), "{table}");
        assert!(table.contains("load"), "{table}");
        let json = prof.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"phase\": \"load\""), "{json}");
        assert!(json.contains("\"calls\": 1"), "{json}");
    }

    #[test]
    fn fmt_duration_scales() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0us");
    }
}
