//! Structured tracing, metrics, and self-profiling for the GAIA stack.
//!
//! The paper's analysis sections (§6–§7) explain *why* policies win by
//! reasoning about per-job decisions — waiting-time breakdowns, spot
//! evictions, slot choices — which the engine computes and, before this
//! crate existed, threw away. `gaia-obs` is the observability substrate
//! that keeps them:
//!
//! * **Event tracing** ([`event`], [`sink`]) — typed lifecycle events
//!   ([`Event`]) emitted by the simulation engine and the sweep
//!   pipeline into a statically dispatched [`Sink`]. The [`NullSink`]
//!   sets [`Sink::ACTIVE`]` = false`, so every instrumentation site
//!   (guarded by `if S::ACTIVE`) is removed at compile time: disabled
//!   tracing costs nothing. [`JsonlSink`] serializes one JSON object
//!   per line; [`CountingSink`] and [`VecSink`] support tests and
//!   overhead benches.
//! * **Flight recorder** ([`flight`]) — a fixed-capacity ring
//!   ([`FlightRecorder`]) retaining the last N events with wall-clock
//!   capture stamps, fed by wrapping any sink in a [`FlightSink`]
//!   (writer-local buffering, one amortized clock read and one ring
//!   push per request). The serving daemon dumps it to JSONL on
//!   demand, on SIGTERM, and from a panic hook — a post-mortem trace
//!   without paying for full tracing.
//! * **Metrics** ([`metrics`]) — a registry of named monotonic counters
//!   and log2-bucketed, mergeable, quantile-queryable histograms
//!   ([`Histogram`]). Sums are accumulated in fixed-point so totals
//!   are independent of observation order, which makes the
//!   [`MetricsRegistry::snapshot_json`] output byte-identical for any
//!   sweep worker count.
//! * **Self-profiling** ([`profile`]) — scoped [`TimerGuard`] phase
//!   timers aggregated into a per-run phase table. Profiling measures
//!   wall-clock time and is the *only* non-deterministic part of this
//!   crate; its output never feeds the deterministic artifacts.
//! * **Leveled logging** ([`mod@log`]) — an `obs::log!` macro family
//!   honoring the `GAIA_LOG={error,warn,info,debug}` environment
//!   variable, replacing ad-hoc `eprintln!` diagnostics.
//! * **Trace analysis** ([`trace_summary`], [`json`]) — parses a JSONL
//!   event stream back into typed events and reconstructs per-job
//!   wait/eviction statistics (the `gaia trace summarize` subcommand).
//!
//! # Determinism contract
//!
//! Every event payload is a pure function of simulation state: sim
//! timestamps are integer minutes on the simulated clock, never wall
//! time. A traced run therefore produces a byte-identical `events.jsonl`
//! on every execution, and sweep per-cell streams are byte-identical for
//! any worker count. The two explicit exceptions, which never enter
//! per-cell streams, are the profiling phase table and the sweep-level
//! `CellStarted`/`CellFinished` wall-clock fields.
//!
//! # Example
//!
//! ```
//! use gaia_obs::{Event, PoolKind, VecSink, Sink};
//!
//! let mut sink = VecSink::new();
//! sink.emit(&Event::JobSubmitted { t: 0, job: 7, cpus: 2, len: 120 });
//! sink.emit(&Event::SegmentStarted { t: 30, job: 7, seg: 0, pool: PoolKind::Spot });
//! let line = sink.events()[0].to_json_line();
//! assert_eq!(Event::from_json_line(&line).unwrap(), sink.events()[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod trace_summary;

pub use event::{CacheKind, Event, PlanMode, PoolKind};
pub use flight::{FlightFrame, FlightRecorder, FlightSink};
pub use metrics::{Counter, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use profile::{Profiler, TimerGuard};
pub use sink::{CountingSink, EmitSink, JsonlSink, NullSink, SharedSink, Sink, VecSink};
pub use trace_summary::{SummaryStream, TraceSummary};
