//! End-to-end tests of the `gaia` binary.

use std::process::Command;

fn gaia() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gaia"))
}

fn run_ok(args: &[&str]) -> String {
    let output = gaia().args(args).output().expect("binary runs");
    assert!(
        output.status.success(),
        "gaia {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["--help"]);
    assert!(out.contains("USAGE"));
    assert!(out.contains("--policy"));
    assert!(out.contains("--res-first"));
}

#[test]
fn default_run_prints_summary_table() {
    let out = run_ok(&["--trace", "section3", "--seed", "1"]);
    assert!(out.contains("Carbon-Time"));
    assert!(out.contains("carbon (kg)"));
    assert!(out.contains("cost ($)"));
}

#[test]
fn baseline_flag_adds_relative_metrics() {
    let out = run_ok(&["--trace", "section3", "--baseline", "--seed", "1"]);
    assert!(out.contains("NoWait"));
    assert!(out.contains("relative to NoWait"));
}

#[test]
fn artifact_examples_from_appendix_a5() {
    // Example 1: carbon- and cost-agnostic.
    let out = run_ok(&[
        "--trace",
        "section3",
        "--scheduling-policy",
        "cost",
        "-w",
        "0x0",
    ]);
    assert!(out.contains("NoWait"));
    // Example 2: lowest carbon window with 6x24 waits.
    let out = run_ok(&[
        "--trace",
        "section3",
        "--scheduling-policy",
        "carbon",
        "-w",
        "6x24",
    ]);
    assert!(out.contains("Lowest-Window"));
}

#[test]
fn composed_policy_names_appear() {
    let out = run_ok(&[
        "--trace",
        "section3",
        "--policy",
        "carbon-time",
        "--res-first",
        "--spot",
        "2",
        "--reserved",
        "3",
        "--seed",
        "1",
    ]);
    assert!(out.contains("Spot-RES-Carbon-Time"));
}

#[test]
fn csv_output_and_details_file() {
    let details = std::env::temp_dir().join("gaia_cli_test_details.csv");
    let details_path = details.to_str().expect("utf-8 temp path");
    let out = run_ok(&[
        "--trace",
        "section3",
        "--csv",
        "--details",
        details_path,
        "--seed",
        "1",
    ]);
    assert!(out.starts_with("policy,"));
    let contents = std::fs::read_to_string(&details).expect("details written");
    assert!(contents.starts_with("job_id,arrival_min"));
    assert!(contents.lines().count() > 10);
    std::fs::remove_file(&details).ok();
}

#[test]
fn extension_policies_run() {
    let out = run_ok(&[
        "--trace",
        "section3",
        "--policy",
        "carbon-time-sr",
        "--baseline",
    ]);
    assert!(out.contains("Carbon-Time-SR"));
    let out = run_ok(&[
        "--trace",
        "section3",
        "--policy",
        "carbon-tax",
        "--tax",
        "2.0",
        "--delay-value",
        "0.1",
        "--baseline",
    ]);
    assert!(out.contains("Carbon-Tax"));
}

#[test]
fn checkpoint_and_overhead_flags_run() {
    let out = run_ok(&[
        "--trace",
        "section3",
        "--policy",
        "lowest-window",
        "--spot",
        "24",
        "--eviction",
        "0.2",
        "--checkpoint",
        "1x5",
        "--overheads",
        "2x1",
        "--baseline",
        "--seed",
        "1",
    ]);
    assert!(out.contains("Spot-First-Lowest-Window"));
    // With a 20% hourly eviction rate and 4-hour mean jobs on spot, some
    // evictions are near-certain in this trace.
    let evictions: u64 = out
        .lines()
        .find(|l| l.starts_with("Spot-First"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("evictions column");
    assert!(evictions > 0, "expected evictions in output:\n{out}");
}

#[test]
fn artifact_output_files_are_written() {
    let dir = std::env::temp_dir();
    let agg = dir.join("gaia_cli_test_aggregate.csv");
    let runtime = dir.join("gaia_cli_test_runtime.csv");
    run_ok(&[
        "--trace",
        "section3",
        "--seed",
        "1",
        "--aggregate",
        agg.to_str().expect("utf-8"),
        "--runtime",
        runtime.to_str().expect("utf-8"),
    ]);
    let agg_text = std::fs::read_to_string(&agg).expect("aggregate written");
    assert!(agg_text.starts_with("jobs,carbon_g"));
    assert_eq!(agg_text.lines().count(), 2);
    let runtime_text = std::fs::read_to_string(&runtime).expect("runtime written");
    assert!(runtime_text.starts_with("hour,reserved_cpus"));
    assert!(runtime_text.lines().count() > 24);
    std::fs::remove_file(&agg).ok();
    std::fs::remove_file(&runtime).ok();
}

#[test]
fn rejects_unknown_flags_with_failure_exit() {
    let output = gaia().arg("--frobnicate").output().expect("binary runs");
    assert!(!output.status.success());
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("unknown flag"));
}

#[test]
fn audit_flag_passes_on_a_clean_run() {
    let output = gaia()
        .args(["--trace", "section3", "--seed", "1", "--audit"])
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "clean run audits clean: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("no violations"), "stderr: {err}");
}

#[test]
fn bad_plan_policy_exits_with_a_typed_error_not_an_abort() {
    let output = gaia()
        .args(["--trace", "section3", "--seed", "1", "--policy", "badplan"])
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(1),
        "typed simulation errors exit 1, not a panic abort"
    );
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("invalid policy decision"), "stderr: {err}");
    assert!(!err.contains("panicked"), "no panic backtrace: {err}");
}

#[test]
fn sweep_with_bad_plan_cell_exits_two_and_keeps_healthy_cells() {
    let dir = std::env::temp_dir().join("gaia_cli_test_sweep_badplan");
    let output = gaia()
        .args([
            "sweep",
            "--policies",
            "badplan,nowait",
            "--seeds",
            "1",
            "--workers",
            "2",
            "--no-progress",
            "--out",
            dir.to_str().expect("utf-8"),
            "--name",
            "badplan",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(2),
        "a failed cell maps to exit 2: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("failed"), "stderr names the failure: {err}");
    let csv = std::fs::read_to_string(dir.join("badplan/scenarios.csv")).expect("csv written");
    assert!(csv.contains("ok"), "the healthy cell still completes");
    assert!(csv.contains("failed: invalid policy decision"));
    let manifest =
        std::fs::read_to_string(dir.join("badplan/manifest.json")).expect("manifest written");
    assert!(manifest.contains("\"failed_cells\": 1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_audits_clean_by_default() {
    let dir = std::env::temp_dir().join("gaia_cli_test_sweep_clean");
    let output = gaia()
        .args([
            "sweep",
            "--policies",
            "nowait,carbon-time",
            "--seeds",
            "1",
            "--workers",
            "2",
            "--no-progress",
            "--out",
            dir.to_str().expect("utf-8"),
            "--name",
            "clean",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "reference policies audit clean: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("cells clean"), "stderr: {err}");
    let manifest =
        std::fs::read_to_string(dir.join("clean/manifest.json")).expect("manifest written");
    assert!(manifest.contains("\"audit\": {\"enabled\": true, \"violations\": 0"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn csv_traces_round_trip_through_the_cli() {
    use gaia_carbon::CarbonTrace;
    let dir = std::env::temp_dir();
    let carbon_path = dir.join("gaia_cli_test_carbon.csv");
    let workload_path = dir.join("gaia_cli_test_workload.csv");

    let carbon =
        CarbonTrace::from_hourly((0..200).map(|h| 100.0 + (h % 24) as f64 * 20.0).collect())
            .expect("valid trace");
    let mut buf = Vec::new();
    gaia_carbon::io::write_trace_csv(&mut buf, &carbon).expect("serialize");
    std::fs::write(&carbon_path, buf).expect("write carbon csv");

    let workload = gaia_workload::synth::section3_workload(5);
    let mut buf = Vec::new();
    gaia_workload::io::write_trace_csv(&mut buf, &workload).expect("serialize");
    std::fs::write(&workload_path, buf).expect("write workload csv");

    let out = run_ok(&[
        "--carbon-csv",
        carbon_path.to_str().expect("utf-8"),
        "--workload-csv",
        workload_path.to_str().expect("utf-8"),
        "--baseline",
    ]);
    assert!(out.contains("relative to NoWait"));
    std::fs::remove_file(&carbon_path).ok();
    std::fs::remove_file(&workload_path).ok();
}

#[test]
fn run_trace_is_byte_identical_across_runs_and_summarizes_clean() {
    // Acceptance scenario: `gaia run --trace` on the CLI defaults
    // (Carbon-Time / SA-AU / Alibaba week_long_1k / seed 42) must write
    // the same bytes on every invocation.
    let dir = std::env::temp_dir().join("gaia_cli_test_run_trace");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let first = dir.join("a.jsonl");
    let second = dir.join("b.jsonl");
    run_ok(&["run", "--trace", first.to_str().expect("utf-8")]);
    run_ok(&["run", "--trace", second.to_str().expect("utf-8")]);
    let bytes = std::fs::read(&first).expect("trace written");
    assert!(!bytes.is_empty(), "trace has events");
    assert_eq!(
        bytes,
        std::fs::read(&second).expect("trace written"),
        "traced runs are byte-identical"
    );

    // `gaia trace summarize` validates the stream and exits 0.
    let out = run_ok(&["trace", "summarize", first.to_str().expect("utf-8")]);
    assert!(out.contains("trace summary"), "stdout: {out}");
    assert!(out.contains("submitted"), "stdout: {out}");
    assert!(out.contains("stream checks: ok"), "stdout: {out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_metrics_prints_snapshot_and_phase_table() {
    let output = gaia()
        .args(["run", "--workload", "section3", "--seed", "1", "--metrics"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("\"sim.jobs\""), "stdout: {out}");
    assert!(out.contains("\"sim.wait_hours\""), "stdout: {out}");
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("phase timings"), "stderr: {err}");
    assert!(err.contains("event_loop"), "stderr: {err}");
}

#[test]
fn trace_summarize_reports_missing_file_with_failure_exit() {
    let output = gaia()
        .args(["trace", "summarize", "/nonexistent/gaia-events.jsonl"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("cannot open"), "stderr: {err}");
}

#[test]
fn sweep_trace_dir_and_metrics_are_worker_count_invariant() {
    let dir = std::env::temp_dir().join("gaia_cli_test_sweep_obs");
    std::fs::remove_dir_all(&dir).ok();
    for workers in ["1", "2"] {
        let traces = dir.join(format!("traces-{workers}"));
        let output = gaia()
            .args([
                "sweep",
                "--policies",
                "nowait,carbon-time",
                "--seeds",
                "1",
                "--workers",
                workers,
                "--no-progress",
                "--metrics",
                "--trace-dir",
                traces.to_str().expect("utf-8"),
                "--out",
                dir.to_str().expect("utf-8"),
                "--name",
                workers,
            ])
            .output()
            .expect("binary runs");
        assert_eq!(
            output.status.code(),
            Some(0),
            "observed sweep is clean: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let metrics_1 = std::fs::read(dir.join("1/metrics.json")).expect("metrics written");
    let metrics_2 = std::fs::read(dir.join("2/metrics.json")).expect("metrics written");
    assert!(!metrics_1.is_empty());
    assert_eq!(metrics_1, metrics_2, "metrics.json is worker-invariant");
    let manifest = std::fs::read_to_string(dir.join("1/manifest.json")).expect("manifest");
    assert!(manifest.contains("\"profile\": ["), "manifest: {manifest}");

    let mut names: Vec<String> = std::fs::read_dir(dir.join("traces-1"))
        .expect("trace dir written")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf-8"))
        .collect();
    names.sort();
    assert_eq!(names.len(), 2, "one trace per cell: {names:?}");
    for name in &names {
        let serial = std::fs::read(dir.join("traces-1").join(name)).expect("trace");
        let parallel = std::fs::read(dir.join("traces-2").join(name)).expect("trace");
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "{name} is worker-invariant");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gaia_log_warn_silences_info_diagnostics() {
    let output = gaia()
        .args(["--trace", "section3", "--seed", "1", "--audit"])
        .env("GAIA_LOG", "warn")
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(
        !err.contains("no violations"),
        "GAIA_LOG=warn hides the info-level audit line: {err}"
    );
    // Errors still surface at the same level.
    let output = gaia()
        .arg("--frobnicate")
        .env("GAIA_LOG", "warn")
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("unknown flag"), "stderr: {err}");
}
