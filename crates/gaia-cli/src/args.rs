//! Hand-rolled argument parsing for the `gaia` binary (keeps the CLI
//! dependency-free; the flag set mirrors the paper artifact's `run.py`).

use gaia_carbon::Region;
use gaia_core::catalog::BasePolicyKind;
use gaia_time::Minutes;

/// Help text printed for `--help`.
pub const HELP: &str = "\
gaia — carbon-, performance-, and cost-aware batch scheduling simulator

USAGE:
    gaia [OPTIONS]              run one experiment (legacy flag set)
    gaia run [OPTIONS]          same, but --trace <PATH> writes a JSONL
                                event trace and --workload <FAMILY>
                                selects the workload family
    gaia sweep [OPTIONS]        run a cartesian experiment grid
    gaia trace summarize <F>    summarize a JSONL event trace

POLICY:
    --policy <NAME>        nowait | allwait | waitawhile | ecovisor |
                           lowest-slot | lowest-window | carbon-time |
                           carbon-scale | carbon-time-sr | carbon-tax
                           (default: carbon-time)
    --res-first            work-conserving use of reserved instances
    --spot [JMAX_HOURS]    run jobs up to JMAX_HOURS (default 2) on spot
    -w SHORTxLONG          max waiting times in hours (default: 6x24)
    --tax <RATE>           carbon tax in $/kg CO2eq (carbon-tax policy;
                           default 0.5)
    --delay-value <RATE>   monetized delay in $/hour (carbon-tax policy;
                           default 0.05)

ENVIRONMENT:
    --region <CODE>        SE | ON-CA | SA-AU | CA-US | NL | KY-US
                           (default: SA-AU)
    --trace <FAMILY>       alibaba | azure | mustang | section3
                           (default: alibaba)
    --scale <week|year>    week-long 1k-job or year-long trace (default week)
    --jobs <N>             job count for year-long traces (default 100000)
    --reserved <N>         reserved CPU instances (default 0)
    --eviction <RATE>      hourly spot eviction rate in [0,1] (default 0)
    --checkpoint IxO       spot checkpointing: interval I hours, overhead
                           O minutes per checkpoint (default: off)
    --overheads SxT        instance boot S and wind-down T minutes
                           (default: 0x0, the paper-simulator behaviour)
    --seed <N>             seed for traces and evictions (default 42)
    --carbon-csv <PATH>    hourly carbon trace CSV instead of synthesis
    --workload-csv <PATH>  workload CSV instead of synthesis

OUTPUT:
    --baseline             also run NoWait and report relative metrics
    --details <PATH>       write the per-job details CSV (artifact A.6)
    --aggregate <PATH>     write the aggregate totals CSV (artifact A.6)
    --runtime <PATH>       write the hourly allocation CSV (artifact A.6)
    --csv                  print the summary as CSV
    --audit                validate the finished run against the engine's
                           invariant audit (segment coverage, occupancy,
                           accounting, work conservation, timing)
    --help                 show this message

FAULT INJECTION:
    --faults <FILE>        JSON fault plan replayed deterministically
                           inside the run: eviction storms, forecast
                           outages (persistence fallback), price spikes,
                           capacity drops, carbon-trace gaps. An empty
                           plan leaves results byte-identical; chaos_cell
                           specs only apply to `gaia sweep`.

OBSERVABILITY:
    --trace-out <PATH>     write the primary run's lifecycle events as
                           JSONL (one object per line; deterministic in
                           the seed). Under `gaia run`, --trace <PATH>
                           is the same flag.
    --metrics              print a metrics snapshot (counters and
                           histograms, JSON) after the summary table and
                           report per-phase self-profiling on stderr
    GAIA_LOG=<LEVEL>       stderr verbosity: error | warn | info | debug
                           (default info)

EXIT CODES:
    0  success
    1  usage, I/O, or simulation error
    2  the invariant audit found violations (with --audit)
";

/// Which policy drives the run: one of the paper's base policies or an
/// extension policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyChoice {
    /// One of Table 1's policies.
    Base(BasePolicyKind),
    /// The suspend-resume Carbon-Time extension.
    CarbonTimeSr,
    /// The carbon-tax extension.
    CarbonTax,
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    pub help: bool,
    pub policy: PolicyChoice,
    pub tax_per_kg: f64,
    pub delay_value_per_hour: f64,
    pub checkpoint: Option<(u64, u64)>,
    pub overheads: (u64, u64),
    pub res_first: bool,
    pub spot_j_max: Option<Minutes>,
    pub wait_short: Minutes,
    pub wait_long: Minutes,
    pub region: Region,
    pub trace: TraceChoice,
    pub scale: Scale,
    pub jobs: usize,
    pub reserved: u32,
    pub eviction: f64,
    pub seed: u64,
    pub carbon_csv: Option<String>,
    pub workload_csv: Option<String>,
    pub baseline: bool,
    pub details: Option<String>,
    pub aggregate: Option<String>,
    pub runtime: Option<String>,
    pub csv: bool,
    pub audit: bool,
    pub trace_out: Option<String>,
    pub metrics: bool,
    pub faults: Option<String>,
}

/// Which workload to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceChoice {
    Alibaba,
    Azure,
    Mustang,
    Section3,
}

/// Week-long prototype scale or year-long simulator scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Week,
    Year,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            help: false,
            policy: PolicyChoice::Base(BasePolicyKind::CarbonTime),
            tax_per_kg: 0.5,
            delay_value_per_hour: 0.05,
            checkpoint: None,
            overheads: (0, 0),
            res_first: false,
            spot_j_max: None,
            wait_short: Minutes::from_hours(6),
            wait_long: Minutes::from_hours(24),
            region: Region::SouthAustralia,
            trace: TraceChoice::Alibaba,
            scale: Scale::Week,
            jobs: 100_000,
            reserved: 0,
            eviction: 0.0,
            seed: 42,
            carbon_csv: None,
            workload_csv: None,
            baseline: false,
            details: None,
            aggregate: None,
            runtime: None,
            csv: false,
            audit: false,
            trace_out: None,
            metrics: false,
            faults: None,
        }
    }
}

impl Options {
    /// Parses command-line arguments (without the program name), legacy
    /// interface: `--trace` selects the workload family.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        Options::parse_mode(args, false)
    }

    /// Parses arguments for the `gaia run` subcommand: `--trace <PATH>`
    /// writes the JSONL event trace and the workload family is selected
    /// with `--workload` instead.
    pub fn parse_run(args: &[String]) -> Result<Options, String> {
        Options::parse_mode(args, true)
    }

    fn parse_mode(args: &[String], run_mode: bool) -> Result<Options, String> {
        let mut options = Options::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| {
                iter.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--help" | "-h" => options.help = true,
                "--policy" | "--carbon-policy" => {
                    let name = value("--policy")?;
                    let norm: String = name
                        .chars()
                        .filter(|c| c.is_ascii_alphanumeric())
                        .map(|c| c.to_ascii_lowercase())
                        .collect();
                    options.policy = match norm.as_str() {
                        "carbontimesr" | "carbontimesuspend" => PolicyChoice::CarbonTimeSr,
                        "carbontax" => PolicyChoice::CarbonTax,
                        _ => PolicyChoice::Base(
                            BasePolicyKind::parse(name)
                                .ok_or_else(|| format!("unknown policy {name:?}"))?,
                        ),
                    };
                }
                "--tax" => {
                    let rate: f64 = value("--tax")?
                        .parse()
                        .map_err(|_| "invalid --tax rate".to_owned())?;
                    if rate < 0.0 || !rate.is_finite() {
                        return Err("--tax must be non-negative".into());
                    }
                    options.tax_per_kg = rate;
                }
                "--delay-value" => {
                    let rate: f64 = value("--delay-value")?
                        .parse()
                        .map_err(|_| "invalid --delay-value rate".to_owned())?;
                    if rate < 0.0 || !rate.is_finite() {
                        return Err("--delay-value must be non-negative".into());
                    }
                    options.delay_value_per_hour = rate;
                }
                "--checkpoint" => {
                    let spec = value("--checkpoint")?;
                    let (interval, overhead) = spec
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("--checkpoint expects IxO, got {spec:?}"))?;
                    let interval: u64 = interval
                        .trim()
                        .parse()
                        .map_err(|_| "invalid checkpoint interval".to_owned())?;
                    let overhead: u64 = overhead
                        .trim()
                        .parse()
                        .map_err(|_| "invalid checkpoint overhead".to_owned())?;
                    if interval == 0 {
                        return Err("checkpoint interval must be positive".into());
                    }
                    options.checkpoint = Some((interval, overhead));
                }
                "--overheads" => {
                    let spec = value("--overheads")?;
                    let (startup, teardown) = spec
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("--overheads expects SxT, got {spec:?}"))?;
                    options.overheads = (
                        startup
                            .trim()
                            .parse()
                            .map_err(|_| "invalid startup minutes".to_owned())?,
                        teardown
                            .trim()
                            .parse()
                            .map_err(|_| "invalid teardown minutes".to_owned())?,
                    );
                }
                "--res-first" => options.res_first = true,
                "--spot" => {
                    // Optional numeric value.
                    let hours = match iter.peek() {
                        Some(next) if !next.starts_with('-') => {
                            let parsed = next
                                .parse::<u64>()
                                .map_err(|_| format!("invalid --spot hours {next:?}"))?;
                            iter.next();
                            parsed
                        }
                        _ => 2,
                    };
                    options.spot_j_max = Some(Minutes::from_hours(hours));
                }
                "-w" | "--waiting" => {
                    let spec = value("-w")?;
                    let (short, long) = spec
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("-w expects SHORTxLONG, got {spec:?}"))?;
                    let parse_wait = |s: &str| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|_| format!("invalid waiting hours {s:?}"))
                    };
                    // The artifact allows 0x0 (no waiting); map 0 to one
                    // minute so windows stay non-empty.
                    let short_h = parse_wait(short)?;
                    let long_h = parse_wait(long)?;
                    options.wait_short = if short_h == 0 {
                        Minutes::new(1)
                    } else {
                        Minutes::from_hours(short_h)
                    };
                    options.wait_long = if long_h == 0 {
                        Minutes::new(1)
                    } else {
                        Minutes::from_hours(long_h)
                    };
                }
                "--region" => {
                    let code = value("--region")?;
                    options.region = code
                        .parse()
                        .map_err(|_| format!("unknown region {code:?}"))?;
                }
                // `gaia run` reads `--trace` as the event-trace output
                // path; the legacy top-level interface keeps it as the
                // workload family. `--workload`/`--trace-out` name the
                // two meanings unambiguously in both modes.
                "--trace" if run_mode => {
                    options.trace_out = Some(value("--trace")?.to_owned());
                }
                "--trace-out" => options.trace_out = Some(value("--trace-out")?.to_owned()),
                "--faults" => options.faults = Some(value("--faults")?.to_owned()),
                "--metrics" => options.metrics = true,
                "--trace" | "--workload" => {
                    options.trace = match value("--trace")?.to_ascii_lowercase().as_str() {
                        "alibaba" | "alibaba-pai" | "pai" => TraceChoice::Alibaba,
                        "azure" | "azure-vm" => TraceChoice::Azure,
                        "mustang" | "mustang-hpc" | "lanl" => TraceChoice::Mustang,
                        "section3" | "synthetic" => TraceChoice::Section3,
                        other => return Err(format!("unknown trace {other:?}")),
                    };
                }
                "--scale" => {
                    options.scale = match value("--scale")?.to_ascii_lowercase().as_str() {
                        "week" => Scale::Week,
                        "year" => Scale::Year,
                        other => return Err(format!("unknown scale {other:?}")),
                    };
                }
                "--jobs" => {
                    options.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| "invalid --jobs count".to_owned())?;
                }
                "--reserved" => {
                    options.reserved = value("--reserved")?
                        .parse()
                        .map_err(|_| "invalid --reserved count".to_owned())?;
                }
                "--eviction" => {
                    let rate: f64 = value("--eviction")?
                        .parse()
                        .map_err(|_| "invalid --eviction rate".to_owned())?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err("--eviction rate must be in [0, 1]".into());
                    }
                    options.eviction = rate;
                }
                "--seed" => {
                    options.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "invalid --seed".to_owned())?;
                }
                "--carbon-csv" => options.carbon_csv = Some(value("--carbon-csv")?.to_owned()),
                "--workload-csv" => {
                    options.workload_csv = Some(value("--workload-csv")?.to_owned());
                }
                "--baseline" => options.baseline = true,
                "--details" => options.details = Some(value("--details")?.to_owned()),
                "--aggregate" => options.aggregate = Some(value("--aggregate")?.to_owned()),
                "--runtime" => options.runtime = Some(value("--runtime")?.to_owned()),
                "--csv" => options.csv = true,
                "--audit" => options.audit = true,
                // Artifact compatibility: `--scheduling-policy cost|carbon`.
                "--scheduling-policy" => {
                    match value("--scheduling-policy")?.to_ascii_lowercase().as_str() {
                        "cost" => options.policy = PolicyChoice::Base(BasePolicyKind::NoWait),
                        "carbon" => {
                            options.policy = PolicyChoice::Base(BasePolicyKind::LowestWindow)
                        }
                        other => return Err(format!("unknown scheduling policy {other:?}")),
                    }
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).expect("empty args");
        assert_eq!(o.policy, PolicyChoice::Base(BasePolicyKind::CarbonTime));
        assert_eq!(o.region, Region::SouthAustralia);
        assert_eq!(o.wait_short, Minutes::from_hours(6));
        assert_eq!(o.wait_long, Minutes::from_hours(24));
        assert!(!o.res_first);
        assert!(o.spot_j_max.is_none());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--policy",
            "lowest-window",
            "--res-first",
            "--spot",
            "6",
            "-w",
            "3x12",
            "--region",
            "ca-us",
            "--trace",
            "azure",
            "--scale",
            "year",
            "--jobs",
            "5000",
            "--reserved",
            "10",
            "--eviction",
            "0.1",
            "--seed",
            "7",
            "--baseline",
            "--csv",
        ])
        .expect("valid");
        assert_eq!(o.policy, PolicyChoice::Base(BasePolicyKind::LowestWindow));
        assert!(o.res_first);
        assert_eq!(o.spot_j_max, Some(Minutes::from_hours(6)));
        assert_eq!(o.wait_short, Minutes::from_hours(3));
        assert_eq!(o.wait_long, Minutes::from_hours(12));
        assert_eq!(o.region, Region::California);
        assert_eq!(o.trace, TraceChoice::Azure);
        assert_eq!(o.scale, Scale::Year);
        assert_eq!(o.jobs, 5000);
        assert_eq!(o.reserved, 10);
        assert!((o.eviction - 0.1).abs() < 1e-12);
        assert_eq!(o.seed, 7);
        assert!(o.baseline);
        assert!(o.csv);
    }

    #[test]
    fn spot_without_value_defaults_to_two_hours() {
        let o = parse(&["--spot", "--baseline"]).expect("valid");
        assert_eq!(o.spot_j_max, Some(Minutes::from_hours(2)));
        assert!(o.baseline);
    }

    #[test]
    fn zero_waits_map_to_one_minute() {
        let o = parse(&["-w", "0x0"]).expect("valid");
        assert_eq!(o.wait_short, Minutes::new(1));
        assert_eq!(o.wait_long, Minutes::new(1));
    }

    #[test]
    fn artifact_compat_scheduling_policy() {
        let o = parse(&["--scheduling-policy", "cost"]).expect("valid");
        assert_eq!(o.policy, PolicyChoice::Base(BasePolicyKind::NoWait));
        let o = parse(&["--scheduling-policy", "carbon"]).expect("valid");
        assert_eq!(o.policy, PolicyChoice::Base(BasePolicyKind::LowestWindow));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--policy", "magic"]).is_err());
        assert!(parse(&["--policy"]).is_err());
        assert!(parse(&["-w", "6"]).is_err());
        assert!(parse(&["--eviction", "2.0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--region", "atlantis"]).is_err());
    }

    #[test]
    fn help_flag() {
        assert!(parse(&["--help"]).expect("valid").help);
        assert!(parse(&["-h"]).expect("valid").help);
        assert!(HELP.contains("--policy"));
        assert!(HELP.contains("--audit"));
        assert!(HELP.contains("EXIT CODES"));
    }

    #[test]
    fn trace_flag_is_family_in_legacy_mode_and_path_in_run_mode() {
        let legacy = parse(&["--trace", "azure"]).expect("valid");
        assert_eq!(legacy.trace, TraceChoice::Azure);
        assert!(legacy.trace_out.is_none());

        let args: Vec<String> = ["--trace", "events.jsonl", "--workload", "azure"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let run = Options::parse_run(&args).expect("valid");
        assert_eq!(run.trace_out.as_deref(), Some("events.jsonl"));
        assert_eq!(run.trace, TraceChoice::Azure);

        // Both modes accept the unambiguous spellings.
        let legacy = parse(&[
            "--trace-out",
            "t.jsonl",
            "--workload",
            "mustang",
            "--metrics",
        ])
        .expect("valid");
        assert_eq!(legacy.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(legacy.trace, TraceChoice::Mustang);
        assert!(legacy.metrics);
    }

    #[test]
    fn faults_flag_takes_a_path() {
        assert!(parse(&[]).expect("valid").faults.is_none());
        let o = parse(&["--faults", "plan.json"]).expect("valid");
        assert_eq!(o.faults.as_deref(), Some("plan.json"));
        assert!(parse(&["--faults"]).is_err());
        assert!(HELP.contains("--faults"));
    }

    #[test]
    fn audit_flag_is_opt_in() {
        assert!(!parse(&[]).expect("valid").audit);
        assert!(parse(&["--audit"]).expect("valid").audit);
    }
}
