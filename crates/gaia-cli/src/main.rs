//! `gaia` — command-line experiment runner, mirroring the paper
//! artifact's `run.py` interface (§A.5):
//!
//! ```text
//! gaia --scheduling-policy carbon --carbon-policy waiting -w 6x24
//! ```
//!
//! Run `gaia --help` for the full flag reference.

use std::process::ExitCode;

mod args;
mod run;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args::Options::parse(&args) {
        Ok(options) => {
            if options.help {
                print!("{}", args::HELP);
                ExitCode::SUCCESS
            } else {
                run::execute(&options)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `gaia --help` for usage");
            ExitCode::FAILURE
        }
    }
}
