//! `gaia` — command-line experiment runner, mirroring the paper
//! artifact's `run.py` interface (§A.5):
//!
//! ```text
//! gaia --scheduling-policy carbon --carbon-policy waiting -w 6x24
//! ```
//!
//! plus the `sweep` subcommand for parallel experiment grids:
//!
//! ```text
//! gaia sweep --policies nowait,carbon-time --seeds 1,2,3 --workers 4
//! ```
//!
//! Run `gaia --help` / `gaia sweep --help` for the full flag reference.

use std::process::ExitCode;

mod args;
mod run;
mod sweep;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        return match sweep::SweepOptions::parse(&args[1..]) {
            Ok(options) => {
                if options.help {
                    print!("{}", sweep::HELP);
                    ExitCode::SUCCESS
                } else {
                    sweep::execute(&options)
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("run `gaia sweep --help` for usage");
                ExitCode::FAILURE
            }
        };
    }
    match args::Options::parse(&args) {
        Ok(options) => {
            if options.help {
                print!("{}", args::HELP);
                ExitCode::SUCCESS
            } else {
                run::execute(&options)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `gaia --help` for usage");
            ExitCode::FAILURE
        }
    }
}
