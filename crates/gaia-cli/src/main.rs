//! `gaia` — command-line experiment runner, mirroring the paper
//! artifact's `run.py` interface (§A.5):
//!
//! ```text
//! gaia --scheduling-policy carbon --carbon-policy waiting -w 6x24
//! ```
//!
//! plus the `sweep` subcommand for parallel experiment grids:
//!
//! ```text
//! gaia sweep --policies nowait,carbon-time --seeds 1,2,3 --workers 4
//! ```
//!
//! Run `gaia --help` / `gaia sweep --help` for the full flag reference.

use std::process::ExitCode;

mod args;
mod run;
mod serve;
mod sweep;
mod top;
mod trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        // `gaia sweep merge` recombines completed shard runs; plain
        // `gaia sweep` executes a grid (optionally one shard of it).
        Some("sweep") if args.get(1).map(String::as_str) == Some("merge") => {
            match sweep::MergeOptions::parse(&args[2..]) {
                Ok(options) => {
                    if options.help {
                        print!("{}", sweep::MERGE_HELP);
                        ExitCode::SUCCESS
                    } else {
                        sweep::execute_merge(&options)
                    }
                }
                Err(message) => {
                    gaia_obs::error!("{message}");
                    gaia_obs::error!("run `gaia sweep merge --help` for usage");
                    ExitCode::FAILURE
                }
            }
        }
        Some("sweep") => match sweep::SweepOptions::parse(&args[1..]) {
            Ok(options) => {
                if options.help {
                    print!("{}", sweep::HELP);
                    ExitCode::SUCCESS
                } else {
                    sweep::execute(&options)
                }
            }
            Err(message) => {
                gaia_obs::error!("{message}");
                gaia_obs::error!("run `gaia sweep --help` for usage");
                ExitCode::FAILURE
            }
        },
        Some("serve") => serve::execute(&args[1..]),
        Some("top") => top::execute(&args[1..]),
        Some("trace") => trace::execute(&args[1..]),
        // `gaia run` and the bare legacy interface share one flag set;
        // only the meaning of `--trace` differs (events path vs family).
        first => {
            let run_mode = first == Some("run");
            let rest = if run_mode { &args[1..] } else { &args[..] };
            let parsed = if run_mode {
                args::Options::parse_run(rest)
            } else {
                args::Options::parse(rest)
            };
            match parsed {
                Ok(options) => {
                    if options.help {
                        print!("{}", args::HELP);
                        ExitCode::SUCCESS
                    } else {
                        run::execute(&options)
                    }
                }
                Err(message) => {
                    gaia_obs::error!("{message}");
                    gaia_obs::error!("run `gaia --help` for usage");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
