//! The `gaia top` subcommand: a live terminal dashboard for a running
//! `gaia serve` daemon.
//!
//! Polls the daemon's `metrics` protocol verb (the JSON body rendered
//! by `gaia-serve`'s telemetry hub) over one persistent connection and
//! redraws a compact dashboard in place: engine gauges, request
//! counters, latency quantiles with a bucket sparkline, snapshot and
//! flight-recorder state, and a per-tenant SLO table (carbon saved vs.
//! cost premium against the carbon-agnostic baseline — the paper's core
//! trade-off, live).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use gaia_obs::json::{self, Value};

/// Help text printed for `gaia top --help`.
pub const HELP: &str = "\
gaia top — live dashboard for a running gaia serve daemon

USAGE:
    gaia top --connect <ADDR> [OPTIONS]

OPTIONS:
    --connect <ADDR>      daemon address (host:port), e.g. from the
                          daemon's --addr-file
    --interval-ms <N>     poll interval in milliseconds (default 1000)
    --iterations <N>      exit after N refreshes (default: run until
                          interrupted or the daemon goes away)
    --plain               print one frame per poll instead of redrawing
                          the terminal in place (for logs and scripts)

Each refresh sends {\"op\":\"metrics\"} and renders the reply: sim clock
and job gauges, per-verb request counts, submit/request latency
quantiles with a log2-bucket sparkline, snapshot and flight-recorder
state, and per-tenant carbon-saved / cost-premium fractions relative to
the run-immediately on-demand baseline.

EXIT CODES:
    0  completed the requested iterations (or clean interrupt)
    1  usage error, connection failure, or a malformed daemon reply
";

struct TopOptions {
    connect: String,
    interval: Duration,
    iterations: Option<u64>,
    plain: bool,
}

fn parse(args: &[String]) -> Result<Option<TopOptions>, String> {
    let mut connect = None;
    let mut interval_ms = 1000u64;
    let mut iterations = None;
    let mut plain = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--connect" => connect = Some(value("--connect")?.to_string()),
            "--interval-ms" => {
                interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|_| "invalid --interval-ms".to_owned())?;
            }
            "--iterations" => {
                let n: u64 = value("--iterations")?
                    .parse()
                    .map_err(|_| "invalid --iterations".to_owned())?;
                if n == 0 {
                    return Err("--iterations must be positive".into());
                }
                iterations = Some(n);
            }
            "--plain" => plain = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let connect = connect.ok_or("gaia top needs --connect <ADDR>")?;
    Ok(Some(TopOptions {
        connect,
        interval: Duration::from_millis(interval_ms),
        iterations,
        plain,
    }))
}

/// Runs the subcommand on the arguments following `gaia top`.
pub fn execute(args: &[String]) -> ExitCode {
    let options = match parse(args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            gaia_obs::error!("{message}");
            gaia_obs::error!("run `gaia top --help` for usage");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            gaia_obs::error!("{message}");
            ExitCode::FAILURE
        }
    }
}

fn run(options: &TopOptions) -> Result<(), String> {
    let addr = &options.connect;
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone the connection: {e}"))?;
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut shown = 0u64;
    loop {
        writer
            .write_all(b"{\"op\":\"metrics\"}\n")
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot poll {addr}: {e}"))?;
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read from {addr}: {e}"))?;
        if n == 0 {
            return Err(format!("the daemon at {addr} closed the connection"));
        }
        let reply =
            json::parse(line.trim_end()).map_err(|e| format!("malformed metrics reply: {e}"))?;
        let body = reply
            .get("data")
            .ok_or("metrics reply carries no data (is the daemon telemetry-enabled?)")?;
        let frame = render(addr, body);
        if options.plain {
            println!("{frame}");
        } else {
            // Clear + home; the frame repaints the whole screen area it
            // uses, so stale rows never linger.
            print!("\x1b[2J\x1b[H{frame}");
        }
        let _ = std::io::stdout().flush();
        shown += 1;
        if options.iterations.is_some_and(|total| shown >= total) {
            if !options.plain {
                println!();
            }
            return Ok(());
        }
        std::thread::sleep(options.interval);
    }
}

fn u(value: &Value, key: &str) -> u64 {
    value.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn f(value: &Value, key: &str) -> f64 {
    value.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}\u{b5}s")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

fn fmt_pct(value: Option<&Value>) -> String {
    match value.and_then(Value::as_f64) {
        Some(frac) => format!("{:+.1}%", frac * 100.0),
        None => "—".into(),
    }
}

/// Unicode sparkline over the non-empty log2 latency buckets
/// (`[[le_us, count], ...]`), tallest bucket normalized to a full
/// block.
fn sparkline(buckets: &Value) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let Value::Arr(entries) = buckets else {
        return String::new();
    };
    let counts: Vec<u64> = entries
        .iter()
        .filter_map(|pair| match pair {
            Value::Arr(kv) if kv.len() == 2 => kv[1].as_u64(),
            _ => None,
        })
        .collect();
    let max = counts.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return String::new();
    }
    counts
        .iter()
        .map(|&n| BARS[((n * (BARS.len() as u64 - 1)).div_ceil(max)) as usize])
        .collect()
}

fn render(addr: &str, body: &Value) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "gaia top \u{2014} {addr}   uptime {:.1}s\n\n",
        f(body, "uptime_s")
    ));
    if let Some(engine) = body.get("engine") {
        out.push_str(&format!(
            "engine    t={} min   submitted {}  completed {}  queued {}  cancelled {}\n",
            u(engine, "t"),
            u(engine, "submitted"),
            u(engine, "completed"),
            u(engine, "queued"),
            u(engine, "cancelled"),
        ));
        out.push_str(&format!(
            "          pending events {}   degraded {}\n",
            u(engine, "pending_events"),
            if u(engine, "degraded") == 1 {
                "YES"
            } else {
                "no"
            },
        ));
    }
    if let Some(requests) = body.get("requests") {
        out.push_str(&format!(
            "requests  submit {}  query {}  cancel {}  stats {}  drain {}  errors {}\n",
            u(requests, "submit"),
            u(requests, "query"),
            u(requests, "cancel"),
            u(requests, "stats"),
            u(requests, "drain"),
            u(requests, "errors"),
        ));
    }
    if let Some(latency) = body.get("latency_us") {
        for (label, key) in [("submit", "submit"), ("request", "request")] {
            if let Some(hist) = latency.get(key) {
                out.push_str(&format!(
                    "{label:<9} p50 {:>7}  p90 {:>7}  p99 {:>7}  (n={})\n",
                    fmt_us(u(hist, "p50")),
                    fmt_us(u(hist, "p90")),
                    fmt_us(u(hist, "p99")),
                    u(hist, "count"),
                ));
            }
        }
    }
    if let Some(buckets) = body.get("submit_latency_buckets") {
        let line = sparkline(buckets);
        if !line.is_empty() {
            out.push_str(&format!("submit latency buckets  {line}\n"));
        }
    }
    if let Some(snapshot) = body.get("snapshot") {
        out.push_str(&format!(
            "snapshot  seq {}  bytes {}\n",
            u(snapshot, "seq"),
            u(snapshot, "bytes"),
        ));
    }
    if let Some(flight) = body.get("flight") {
        out.push_str(&format!(
            "flight    {}/{} frame(s) retained, {} recorded\n",
            u(flight, "len"),
            u(flight, "capacity"),
            u(flight, "recorded"),
        ));
    }
    if let Some(Value::Arr(tenants)) = body.get("tenants") {
        if !tenants.is_empty() {
            out.push_str(&format!(
                "\n{:<12} {:>6} {:>10} {:>10} {:>8} {:>9} {:>8} {:>9} {:>8}\n",
                "TENANT",
                "DONE",
                "CARBON g",
                "BASE g",
                "SAVED",
                "COST $",
                "BASE $",
                "PREMIUM",
                "WAITp50"
            ));
            for tenant in tenants {
                out.push_str(&format!(
                    "{:<12} {:>6} {:>10.1} {:>10.1} {:>8} {:>9.3} {:>8.3} {:>9} {:>7.1}h\n",
                    tenant.get("name").and_then(Value::as_str).unwrap_or("?"),
                    u(tenant, "completed"),
                    f(tenant, "carbon_g"),
                    f(tenant, "baseline_carbon_g"),
                    fmt_pct(tenant.get("carbon_saved_frac")),
                    f(tenant, "cost_usd"),
                    f(tenant, "baseline_cost_usd"),
                    fmt_pct(tenant.get("cost_premium_frac")),
                    f(tenant, "wait_p50_h"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_requires_connect() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["--iterations", "0"])).is_err());
        assert!(parse(&args(&["--frobnicate"])).is_err());
        let parsed = parse(&args(&[
            "--connect",
            "127.0.0.1:1",
            "--interval-ms",
            "50",
            "--iterations",
            "2",
            "--plain",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(parsed.connect, "127.0.0.1:1");
        assert_eq!(parsed.interval, Duration::from_millis(50));
        assert_eq!(parsed.iterations, Some(2));
        assert!(parsed.plain);
    }

    #[test]
    fn render_shows_engine_requests_and_tenants() {
        let body = json::parse(
            r#"{"uptime_s":1.5,
                "requests":{"submit":10,"query":2,"cancel":0,"stats":1,"drain":0,"snapshot":0,"metrics":3,"flight":0,"shutdown":0,"errors":1},
                "latency_us":{"submit":{"count":10,"sum_us":1000,"p50":64,"p90":128,"p99":2048},
                              "request":{"count":16,"sum_us":1200,"p50":32,"p90":128,"p99":1024}},
                "submit_latency_buckets":[[64,6],[128,3],[2048,1]],
                "engine":{"t":240,"submitted":10,"completed":7,"cancelled":0,"queued":3,"pending_events":2,"degraded":0},
                "snapshot":{"seq":2,"bytes":4096},
                "flight":{"len":40,"capacity":4096,"recorded":40},
                "tenants":[{"name":"acme","completed":7,"carbon_g":70.0,"baseline_carbon_g":100.0,
                            "carbon_saved_frac":0.3,"cost_usd":1.1,"baseline_cost_usd":1.0,
                            "cost_premium_frac":0.1,"wait_p50_h":1.5,"stretch_p50":1.2}]}"#,
        )
        .unwrap();
        let frame = render("127.0.0.1:9", &body);
        assert!(frame.contains("t=240 min"), "{frame}");
        assert!(frame.contains("submit 10"), "{frame}");
        assert!(frame.contains("p50    64\u{b5}s"), "{frame}");
        assert!(frame.contains("acme"), "{frame}");
        assert!(frame.contains("+30.0%"), "{frame}");
        assert!(frame.contains("+10.0%"), "{frame}");
        assert!(frame.contains("seq 2"), "{frame}");
        assert!(frame.contains("40/4096"), "{frame}");
        // Sparkline: three occupied buckets, tallest normalized to █.
        assert!(frame.contains('\u{2588}'), "{frame}");
    }

    #[test]
    fn sparkline_scales_to_the_tallest_bucket() {
        let buckets = json::parse("[[64,8],[128,4],[256,1]]").unwrap();
        let line = sparkline(&buckets);
        assert_eq!(line.chars().count(), 3);
        assert_eq!(line.chars().next(), Some('\u{2588}'));
    }

    #[test]
    fn formats_are_humane() {
        assert_eq!(fmt_us(12), "12\u{b5}s");
        assert_eq!(fmt_us(1_500), "1.5ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
        assert_eq!(fmt_pct(None), "\u{2014}");
    }

    #[test]
    fn help_mentions_every_flag() {
        for flag in ["--connect", "--interval-ms", "--iterations", "--plain"] {
            assert!(HELP.contains(flag), "{flag} missing from help");
        }
    }
}
