//! The `gaia trace` subcommand: offline analysis of JSONL event traces
//! written by `gaia run --trace` or `gaia sweep --trace-dir`.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use gaia_sim::TraceSummary;

/// Help text printed for `gaia trace --help`.
pub const HELP: &str = "\
gaia trace — analyze JSONL event traces

USAGE:
    gaia trace summarize <events.jsonl>

Reads a trace written by `gaia run --trace <PATH>` (or one per-cell file
from `gaia sweep --trace-dir <DIR>`), validates the stream (monotone
timestamps, balanced per-job segment start/finish pairs, no duplicate
lifecycle events), and prints deterministic aggregate statistics: job,
plan, segment, and eviction counts, waiting-time totals and breakdown,
and per-pool segment usage.

EXIT CODES:
    0  trace parsed and every stream check passed
    1  usage or I/O error, a malformed line, or a failed stream check
";

/// Runs the subcommand on the arguments following `gaia trace`.
pub fn execute(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            if args.is_empty() {
                gaia_obs::error!("missing trace subcommand");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("summarize") => summarize(&args[1..]),
        Some(other) => {
            gaia_obs::error!("unknown trace subcommand {other:?}");
            gaia_obs::error!("run `gaia trace --help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn summarize(args: &[String]) -> ExitCode {
    let [path] = args else {
        gaia_obs::error!("usage: gaia trace summarize <events.jsonl>");
        return ExitCode::FAILURE;
    };
    let file = match File::open(path) {
        Ok(file) => file,
        Err(error) => {
            gaia_obs::error!("cannot open {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match TraceSummary::from_jsonl(BufReader::new(file)) {
        Ok(summary) => summary,
        Err(error) => {
            gaia_obs::error!("cannot parse {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", summary.render());
    if summary.issues.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
