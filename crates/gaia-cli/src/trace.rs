//! The `gaia trace` subcommand: offline analysis of JSONL event traces
//! written by `gaia run --trace` or `gaia sweep --trace-dir`, live
//! tailing of a growing trace, and flight-recorder dump validation.

use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gaia_obs::SummaryStream;
use gaia_sim::TraceSummary;

/// Help text printed for `gaia trace --help`.
pub const HELP: &str = "\
gaia trace — analyze JSONL event traces

USAGE:
    gaia trace summarize <events.jsonl>      one-shot summary
    gaia trace summarize -                   summarize stdin
    gaia trace summarize --follow <PATH|->   tail a growing trace,
                                             re-rendering the summary as
                                             lines arrive
    gaia trace flight <dump.jsonl>           validate a flight-recorder
                                             dump (gaia serve --flight-*)

Reads a trace written by `gaia run --trace <PATH>` (or one per-cell file
from `gaia sweep --trace-dir <DIR>`), validates the stream (monotone
timestamps, balanced per-job segment start/finish pairs, no duplicate
lifecycle events), and prints deterministic aggregate statistics: job,
plan, segment, and eviction counts, waiting-time totals and breakdown,
and per-pool segment usage.

With --follow on a file, the summary is re-rendered whenever appended
lines are observed (polled; partial tail lines are held until their
newline arrives) and the command runs until interrupted. With --follow
on stdin (-), a final summary is rendered at EOF and the command exits.
Mid-stream renders report open segments as issues — they disappear once
the matching finish events arrive.

`gaia trace flight` checks a flight-recorder dump line by line: every
frame must carry the fixed fields (wall_us, ev, t, job, aux), and
wall-clock stamps must be nondecreasing (frames are dumped oldest
first).

EXIT CODES:
    0  trace parsed and every stream check passed
    1  usage or I/O error, a malformed line, or a failed stream check
";

/// How often `--follow` polls a file for appended bytes.
const FOLLOW_POLL: Duration = Duration::from_millis(200);
/// Follow mode renders at most this often while lines keep arriving.
const FOLLOW_RENDER_EVERY: Duration = Duration::from_millis(500);

/// Runs the subcommand on the arguments following `gaia trace`.
pub fn execute(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            if args.is_empty() {
                gaia_obs::error!("missing trace subcommand");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("summarize") => summarize(&args[1..]),
        Some("flight") => flight(&args[1..]),
        Some(other) => {
            gaia_obs::error!("unknown trace subcommand {other:?}");
            gaia_obs::error!("run `gaia trace --help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn summarize(args: &[String]) -> ExitCode {
    let mut follow = false;
    let mut path: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--follow" | "-f" => follow = true,
            other if (other == "-" || !other.starts_with('-')) && path.is_none() => {
                path = Some(other);
            }
            other => {
                gaia_obs::error!("unexpected argument {other:?}");
                gaia_obs::error!("usage: gaia trace summarize [--follow] <events.jsonl | ->");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        gaia_obs::error!("usage: gaia trace summarize [--follow] <events.jsonl | ->");
        return ExitCode::FAILURE;
    };
    match (follow, path) {
        (false, "-") => {
            let stdin = io::stdin();
            finish_summary(TraceSummary::from_jsonl(stdin.lock()), "stdin")
        }
        (false, path) => match File::open(path) {
            Ok(file) => finish_summary(TraceSummary::from_jsonl(BufReader::new(file)), path),
            Err(error) => {
                gaia_obs::error!("cannot open {path}: {error}");
                ExitCode::FAILURE
            }
        },
        (true, "-") => {
            let stdin = io::stdin();
            follow_stream(stdin.lock(), true, "stdin")
        }
        (true, path) => match File::open(path) {
            Ok(file) => follow_stream(BufReader::new(file), false, path),
            Err(error) => {
                gaia_obs::error!("cannot open {path}: {error}");
                ExitCode::FAILURE
            }
        },
    }
}

fn finish_summary(summary: Result<TraceSummary, String>, source: &str) -> ExitCode {
    match summary {
        Ok(summary) => {
            print!("{}", summary.render());
            if summary.issues.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(error) => {
            gaia_obs::error!("cannot parse {source}: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Tail a trace stream. On a file (`ends_at_eof == false`) EOF means
/// "no new data yet": render whatever is pending and poll again. On
/// stdin EOF is final: render and return. A line flushed halfway by the
/// writer is held in `partial` until its newline arrives.
fn follow_stream<R: BufRead>(mut reader: R, ends_at_eof: bool, source: &str) -> ExitCode {
    let mut stream = SummaryStream::new();
    let mut partial = String::new();
    let mut chunk = String::new();
    let mut pending = true; // render once even for an empty stream
    let mut last_render: Option<Instant> = None;
    loop {
        chunk.clear();
        match reader.read_line(&mut chunk) {
            Ok(0) => {
                if pending {
                    render_follow(&stream);
                    last_render = Some(Instant::now());
                    pending = false;
                }
                if ends_at_eof {
                    return if stream.summary().issues.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    };
                }
                std::thread::sleep(FOLLOW_POLL);
            }
            Ok(_) => {
                partial.push_str(&chunk);
                if !partial.ends_with('\n') {
                    continue;
                }
                if let Err(error) = stream.push_line(partial.trim_end()) {
                    gaia_obs::error!("cannot parse {source}: {error}");
                    return ExitCode::FAILURE;
                }
                partial.clear();
                pending = true;
                if last_render.is_none_or(|at| at.elapsed() >= FOLLOW_RENDER_EVERY) {
                    render_follow(&stream);
                    last_render = Some(Instant::now());
                    pending = false;
                }
            }
            Err(error) => {
                gaia_obs::error!("read error on {source}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
}

fn render_follow(stream: &SummaryStream) {
    println!("=== {} line(s) ===", stream.lines());
    print!("{}", stream.summary().render());
    println!();
}

/// Validate a flight-recorder dump: JSONL, fixed frame fields, and
/// nondecreasing wall-clock stamps (dumps are oldest-first).
fn flight(args: &[String]) -> ExitCode {
    let [path] = args else {
        gaia_obs::error!("usage: gaia trace flight <dump.jsonl>");
        return ExitCode::FAILURE;
    };
    let file = match File::open(path) {
        Ok(file) => file,
        Err(error) => {
            gaia_obs::error!("cannot open {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let mut frames = 0u64;
    let mut issues = 0u64;
    let mut first_us = None;
    let mut last_us: Option<u64> = None;
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            Err(error) => {
                gaia_obs::error!("read error on line {}: {error}", idx + 1);
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let value = match gaia_obs::json::parse(&line) {
            Ok(value) => value,
            Err(error) => {
                gaia_obs::error!("line {}: not JSON: {error}", idx + 1);
                issues += 1;
                continue;
            }
        };
        frames += 1;
        let wall_us = value.get("wall_us").and_then(|v| v.as_u64());
        if wall_us.is_none() {
            gaia_obs::error!("line {}: missing or non-integer wall_us", idx + 1);
            issues += 1;
        }
        if value
            .get("ev")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .is_empty()
        {
            gaia_obs::error!("line {}: missing event name (ev)", idx + 1);
            issues += 1;
        }
        for key in ["t", "job", "aux"] {
            if value.get(key).and_then(|v| v.as_u64()).is_none() {
                gaia_obs::error!("line {}: missing or non-integer {key}", idx + 1);
                issues += 1;
            }
        }
        if let Some(us) = wall_us {
            if first_us.is_none() {
                first_us = Some(us);
            }
            if let Some(last) = last_us {
                if us < last {
                    gaia_obs::error!(
                        "line {}: wall_us {us} decreases after {last} (dumps are oldest-first)",
                        idx + 1
                    );
                    issues += 1;
                }
            }
            last_us = Some(us);
        }
    }
    let span_ms = match (first_us, last_us) {
        (Some(first), Some(last)) => (last.saturating_sub(first)) as f64 / 1e3,
        _ => 0.0,
    };
    println!("flight dump: {frames} frame(s), {span_ms:.1} ms wall span, {issues} issue(s)");
    if issues == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
