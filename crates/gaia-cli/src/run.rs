//! Experiment execution for the `gaia` CLI.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

use gaia_carbon::synth::synthesize_region;
use gaia_carbon::CarbonTrace;
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_core::{BatchPolicy, CarbonTax, CarbonTimeSuspend, GaiaScheduler, SpotConfig};
use gaia_metrics::table::TextTable;
use gaia_metrics::{relative_to, Summary};
use gaia_obs::{JsonlSink, MetricsRegistry, NullSink, Profiler, Sink};
use gaia_sim::{
    CheckpointConfig, ClusterConfig, EvictionModel, FaultPlan, FaultSchedule, InstanceOverheads,
    SimRun, Simulation,
};
use gaia_time::Minutes;
use gaia_workload::synth::{section3_workload, TraceFamily};
use gaia_workload::{QueueSet, WorkloadTrace};

use crate::args::{Options, PolicyChoice, Scale, TraceChoice};

/// Runs the experiment described by `options`.
///
/// Exit codes: 0 on success, 1 on usage/I/O/simulation errors, 2 when
/// `--audit` finds invariant violations in the finished run.
pub fn execute(options: &Options) -> ExitCode {
    match try_execute(options) {
        Ok(code) => code,
        Err(message) => {
            gaia_obs::error!("{message}");
            ExitCode::FAILURE
        }
    }
}

fn try_execute(options: &Options) -> Result<ExitCode, String> {
    // Self-profiling rides with --metrics; phases cover trace loading,
    // the engine (plan + event loop), the audit, and artifact writes.
    let profiler = options.metrics.then(Profiler::new);
    let profiler = profiler.as_ref();
    let carbon = {
        let _t = profiler.map(|p| p.phase("load_carbon"));
        load_carbon(options)?
    };
    let workload = {
        let _t = profiler.map(|p| p.phase("load_workload"));
        load_workload(options)?
    };
    let queues = QueueSet::paper_defaults()
        .with_waits(options.wait_short, options.wait_long)
        .with_averages_from(workload.jobs());
    let faults = load_faults(options)?;
    let faults = faults.as_ref();

    let billing = billing_horizon(&workload);
    let mut config = ClusterConfig::default()
        .with_reserved(options.reserved)
        .with_eviction(EvictionModel::hourly(options.eviction))
        .with_seed(options.seed)
        .with_billing_horizon(billing)
        .with_overheads(InstanceOverheads {
            startup: Minutes::new(options.overheads.0),
            teardown: Minutes::new(options.overheads.1),
        });
    if let Some((interval_h, overhead_min)) = options.checkpoint {
        config = config.with_checkpointing(CheckpointConfig::every_hours(interval_h, overhead_min));
    }

    // The event trace covers the primary policy run only; the --baseline
    // comparison run stays untraced (NullSink: instrumentation compiles
    // out, so traced and untraced runs produce identical reports). The
    // invariant audit rides inside the same runner call when --audit is
    // set, so its phase timing lands next to plan/event_loop.
    let SimRun { report, audit } = match &options.trace_out {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let mut sink = JsonlSink::new(BufWriter::new(file));
            let run = run_choice(
                options,
                &workload,
                &carbon,
                config,
                queues,
                faults,
                &mut sink,
                profiler,
                options.audit,
            )?;
            let events = sink.written();
            sink.finish()
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            gaia_obs::info!("trace: {events} events written to {path}");
            run
        }
        None => run_choice(
            options,
            &workload,
            &carbon,
            config,
            queues,
            faults,
            &mut NullSink,
            profiler,
            options.audit,
        )?,
    };
    let summary = Summary::of(policy_name(options), &report);

    {
        let _t = profiler.map(|p| p.phase("write"));
        if let Some(path) = &options.details {
            write_csv(path, |w| gaia_sim::output::write_details_csv(w, &report))?;
        }
        if let Some(path) = &options.aggregate {
            write_csv(path, |w| gaia_sim::output::write_aggregate_csv(w, &report))?;
        }
        if let Some(path) = &options.runtime {
            write_csv(path, |w| {
                gaia_sim::output::write_runtime_csv(w, &report, &carbon)
            })?;
        }
    }

    let mut table = TextTable::new(vec![
        "policy",
        "carbon (kg)",
        "cost ($)",
        "mean wait (h)",
        "mean completion (h)",
        "reserved util",
        "evictions",
    ]);
    push_summary_row(&mut table, &summary);

    if options.baseline && summary.name != "NoWait" {
        let baseline_spec = PolicySpec::plain(BasePolicyKind::NoWait);
        // The baseline runs under the same fault plan so the relative
        // metrics compare policies, not fault exposure.
        let baseline_report = run(
            baseline_spec,
            &workload,
            &carbon,
            config,
            queues,
            faults,
            &mut NullSink,
            profiler,
            false,
        )?
        .report;
        let baseline = Summary::of("NoWait", &baseline_report);
        push_summary_row(&mut table, &baseline);
        print_table(options, &table);
        let rel = relative_to(&summary, &baseline);
        println!(
            "relative to NoWait: carbon {:.3}  cost {:.3}  ({:+.1}% carbon, {:+.1}% cost)",
            rel.carbon,
            rel.cost,
            (rel.carbon - 1.0) * 100.0,
            (rel.cost - 1.0) * 100.0,
        );
    } else {
        print_table(options, &table);
    }

    if options.metrics {
        let registry = MetricsRegistry::new();
        gaia_metrics::observe::observe_report(&registry, &report);
        println!("{}", registry.snapshot_json());
    }

    let audit_code = if let Some(audit) = audit {
        if audit.is_clean() {
            gaia_obs::info!("audit: {} checks, no violations", audit.checks_run);
            ExitCode::SUCCESS
        } else {
            for violation in &audit.violations {
                gaia_obs::error!("audit: {violation}");
            }
            gaia_obs::error!(
                "audit: {} violation(s) across {} checks",
                audit.violations.len(),
                audit.checks_run
            );
            ExitCode::from(2)
        }
    } else {
        ExitCode::SUCCESS
    };

    if let Some(p) = profiler {
        gaia_obs::info!("phase timings\n{}", p.table());
    }
    Ok(audit_code)
}

fn print_table(options: &Options, table: &TextTable) {
    if options.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{table}");
    }
}

fn push_summary_row(table: &mut TextTable, summary: &Summary) {
    table.row(vec![
        summary.name.clone(),
        format!("{:.1}", summary.carbon_kg()),
        format!("{:.2}", summary.total_cost),
        format!("{:.2}", summary.mean_wait_hours),
        format!("{:.2}", summary.mean_completion_hours),
        format!("{:.2}", summary.reserved_utilization),
        summary.evictions.to_string(),
    ]);
}

#[allow(clippy::too_many_arguments)]
fn run<S: Sink>(
    spec: PolicySpec,
    workload: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
    queues: QueueSet,
    faults: Option<&FaultSchedule>,
    sink: &mut S,
    profiler: Option<&Profiler>,
    audit: bool,
) -> Result<SimRun, String> {
    let mut scheduler = spec.build(queues);
    simulate(
        config,
        carbon,
        workload,
        &mut scheduler,
        faults,
        sink,
        profiler,
        audit,
    )
}

/// Builds and runs the selected policy, including the extension policies
/// that live outside the paper's Table 1 catalog. Invalid policy
/// decisions come back as an error (exit 1), not a process abort.
#[allow(clippy::too_many_arguments)]
fn run_choice<S: Sink>(
    options: &Options,
    workload: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
    queues: QueueSet,
    faults: Option<&FaultSchedule>,
    sink: &mut S,
    profiler: Option<&Profiler>,
    audit: bool,
) -> Result<SimRun, String> {
    let base: Box<dyn BatchPolicy> = match options.policy {
        PolicyChoice::Base(kind) => {
            let spec = PolicySpec {
                base: kind,
                res_first: options.res_first,
                spot: options.spot_j_max.map(|j_max| SpotConfig { j_max }),
            };
            return run(
                spec, workload, carbon, config, queues, faults, sink, profiler, audit,
            );
        }
        PolicyChoice::CarbonTimeSr => Box::new(CarbonTimeSuspend::new(queues)),
        PolicyChoice::CarbonTax => Box::new(CarbonTax::new(
            queues,
            options.tax_per_kg,
            options.delay_value_per_hour,
        )),
    };
    let mut scheduler = GaiaScheduler::new(base);
    if options.res_first {
        scheduler = scheduler.res_first();
    }
    if let Some(j_max) = options.spot_j_max {
        scheduler = scheduler.spot_first(SpotConfig { j_max });
    }
    simulate(
        config,
        carbon,
        workload,
        &mut scheduler,
        faults,
        sink,
        profiler,
        audit,
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate<S: Sink>(
    config: ClusterConfig,
    carbon: &CarbonTrace,
    workload: &WorkloadTrace,
    scheduler: &mut dyn gaia_sim::Scheduler,
    faults: Option<&FaultSchedule>,
    sink: &mut S,
    profiler: Option<&Profiler>,
    audit: bool,
) -> Result<SimRun, String> {
    let mut sim = Simulation::new(config, carbon);
    if let Some(schedule) = faults {
        sim = sim.with_faults(schedule);
    }
    if let Some(p) = profiler {
        sim = sim.with_profiler(p);
    }
    sim.runner(workload, scheduler)
        .sink(sink)
        .audit(audit)
        .execute()
        .map_err(|e| e.to_string())
}

/// Loads and compiles `--faults FILE` into an engine-ready schedule.
fn load_faults(options: &Options) -> Result<Option<FaultSchedule>, String> {
    let Some(path) = &options.faults else {
        return Ok(None);
    };
    let plan = FaultPlan::load(std::path::Path::new(path))
        .map_err(|e| format!("cannot load fault plan {path}: {e}"))?;
    let schedule = plan
        .compile()
        .map_err(|e| format!("invalid fault plan {path}: {e}"))?;
    gaia_obs::info!(
        "fault plan: {} spec(s) loaded from {path}",
        plan.specs().len()
    );
    Ok(Some(schedule))
}

/// The display name for the selected policy configuration.
fn policy_name(options: &Options) -> String {
    let base = match options.policy {
        PolicyChoice::Base(kind) => {
            return PolicySpec {
                base: kind,
                res_first: options.res_first,
                spot: options.spot_j_max.map(|j_max| SpotConfig { j_max }),
            }
            .name()
        }
        PolicyChoice::CarbonTimeSr => "Carbon-Time-SR",
        PolicyChoice::CarbonTax => "Carbon-Tax",
    };
    match (options.res_first, options.spot_j_max.is_some()) {
        (false, false) => base.to_owned(),
        (true, false) => format!("RES-First-{base}"),
        (false, true) => format!("Spot-First-{base}"),
        (true, true) => format!("Spot-RES-{base}"),
    }
}

fn load_carbon(options: &Options) -> Result<CarbonTrace, String> {
    if let Some(path) = &options.carbon_csv {
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        return gaia_carbon::io::read_trace_csv(BufReader::new(file))
            .map_err(|e| format!("cannot parse {path}: {e}"));
    }
    Ok(synthesize_region(options.region, options.seed))
}

fn load_workload(options: &Options) -> Result<WorkloadTrace, String> {
    if let Some(path) = &options.workload_csv {
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        return gaia_workload::io::read_trace_csv(BufReader::new(file))
            .map_err(|e| format!("cannot parse {path}: {e}"));
    }
    let trace = match (options.trace, options.scale) {
        (TraceChoice::Section3, _) => section3_workload(options.seed),
        (choice, Scale::Week) => family(choice).week_long_1k(options.seed),
        (choice, Scale::Year) => family(choice).year_long(options.jobs, options.seed),
    };
    Ok(trace)
}

fn family(choice: TraceChoice) -> TraceFamily {
    match choice {
        TraceChoice::Alibaba => TraceFamily::AlibabaPai,
        TraceChoice::Azure => TraceFamily::AzureVm,
        TraceChoice::Mustang => TraceFamily::MustangHpc,
        TraceChoice::Section3 => unreachable!("handled by the caller"),
    }
}

fn billing_horizon(workload: &WorkloadTrace) -> Minutes {
    // Contract period: the workload span rounded up to whole days, plus
    // two days of slack for delayed tails (identical across policies).
    let span_days = workload
        .nominal_makespan()
        .as_minutes()
        .div_ceil(gaia_time::MINUTES_PER_DAY);
    Minutes::from_days(span_days + 2)
}

fn write_csv(
    path: &str,
    write: impl FnOnce(&mut BufWriter<File>) -> std::io::Result<()>,
) -> Result<(), String> {
    let mut writer =
        BufWriter::new(File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?);
    write(&mut writer).map_err(|e| format!("cannot write {path}: {e}"))?;
    writer
        .flush()
        .map_err(|e| format!("cannot flush {path}: {e}"))
}
