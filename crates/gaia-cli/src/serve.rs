//! The `gaia serve` subcommand: run the online scheduling daemon, or
//! connect to one and replay a request log from stdin.

use std::io;
use std::path::PathBuf;
use std::process::ExitCode;

use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_serve::ServeOptions;
use gaia_time::Minutes;

/// Help text printed for `gaia serve --help`.
pub const HELP: &str = "\
gaia serve — online scheduling service over the GAIA event engine

USAGE:
    gaia serve [OPTIONS]                 run the daemon
    gaia serve --connect <ADDR>          replay stdin lines to a daemon

DAEMON OPTIONS:
    --listen <ADDR>         bind address (default 127.0.0.1:0; port 0
                            picks a free port — see --addr-file)
    --addr-file <PATH>      write the bound host:port here once listening
    --policy <NAME>         base policy (default carbon-time); same names
                            as `gaia run --policy`
    --res-first             prefer reserved capacity before on-demand
    --spot <J_MAX>          add a spot pool with eviction budget J_MAX
                            minutes
    --region <CODE>         carbon trace region (default SA-AU)
    --seed <N>              trace + eviction seed (default 42)
    --reserved <N>          reserved CPU instances (default 0)
    --expect-jobs <N>       pre-reserve state for N submissions at boot
    --snapshot-every <N>    snapshot after every N-th accepted submission
    --snapshot-path <PATH>  snapshot target (default gaia-serve.snap)
    --restore <FILE>        boot from a snapshot instead of empty state
    --trace <PATH>          stream JSONL trace events to this file
    --faults <FILE>         inject a JSON fault plan into the live service

TELEMETRY OPTIONS:
    --metrics-addr <ADDR>   serve the Prometheus text exposition over
                            HTTP here (port 0 picks a free port)
    --metrics-addr-file <PATH>
                            write the bound metrics host:port here
    --flight-capacity <N>   flight recorder ring size in frames
                            (default 4096; 0 disables it)
    --flight-dump <PATH>    where flight dumps land — the flight verb,
                            SIGTERM, and panics all write here
                            (default gaia-flight.jsonl)

PROTOCOL (newline-delimited JSON, one response line per request):
    {\"op\":\"submit\",\"tenant\":\"acme\",\"at\":120,\"len\":60,\"cpus\":2}
    {\"op\":\"query\",\"job\":7}
    {\"op\":\"cancel\",\"job\":7}
    {\"op\":\"stats\"}            (cluster)   {\"op\":\"stats\",\"tenant\":\"acme\"}
    {\"op\":\"drain\"}            run the engine until every job finishes
    {\"op\":\"snapshot\"}         write a snapshot now
    {\"op\":\"metrics\"}          live telemetry JSON (what gaia top polls)
    {\"op\":\"flight\"}           dump the flight recorder to --flight-dump
    {\"op\":\"shutdown\"}         stop the daemon

On SIGTERM the daemon finishes the in-flight request, dumps the flight
recorder, and exits cleanly. `metrics` and `flight` responses carry
wall-clock data and are the only responses outside the byte-identity
determinism contract.

Submissions must arrive in nondecreasing `at` order; the daemon advances
sim-time to each arrival and replans incrementally. Restoring a snapshot
and replaying the remaining request log produces responses and trace
events byte-identical to a daemon that never stopped.

EXIT CODES:
    0  clean shutdown (daemon) or full replay (client)
    1  usage, I/O, bind, or restore error
";

enum Mode {
    Daemon(Box<ServeOptions>),
    Connect(String),
    Help,
}

fn parse(args: &[String]) -> Result<Mode, String> {
    let mut options = ServeOptions::default();
    let mut connect = None;
    let mut base = BasePolicyKind::CarbonTime;
    let mut res_first = false;
    let mut spot = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(Mode::Help),
            "--connect" => connect = Some(value("--connect")?.to_string()),
            "--listen" => options.listen = value("--listen")?.to_string(),
            "--addr-file" => options.addr_file = Some(PathBuf::from(value("--addr-file")?)),
            "--policy" => {
                let name = value("--policy")?;
                base = BasePolicyKind::parse(name)
                    .ok_or_else(|| format!("unknown policy {name:?}"))?;
            }
            "--res-first" => res_first = true,
            "--spot" => {
                let j_max: u64 = value("--spot")?
                    .parse()
                    .map_err(|_| "invalid --spot J_MAX".to_owned())?;
                spot = Some(Minutes::new(j_max));
            }
            "--region" => {
                let code = value("--region")?;
                options.region = code
                    .parse()
                    .map_err(|_| format!("unknown region {code:?}"))?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_owned())?;
            }
            "--reserved" => {
                options.reserved = value("--reserved")?
                    .parse()
                    .map_err(|_| "invalid --reserved".to_owned())?;
            }
            "--expect-jobs" => {
                options.expect_jobs = Some(
                    value("--expect-jobs")?
                        .parse()
                        .map_err(|_| "invalid --expect-jobs".to_owned())?,
                );
            }
            "--snapshot-every" => {
                let every: u64 = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "invalid --snapshot-every".to_owned())?;
                if every == 0 {
                    return Err("--snapshot-every must be positive".into());
                }
                options.snapshot_every = Some(every);
            }
            "--snapshot-path" => {
                options.snapshot_path = PathBuf::from(value("--snapshot-path")?);
            }
            "--restore" => options.restore = Some(PathBuf::from(value("--restore")?)),
            "--trace" => options.trace_path = Some(PathBuf::from(value("--trace")?)),
            "--faults" => options.faults = Some(PathBuf::from(value("--faults")?)),
            "--metrics-addr" => {
                options.metrics_addr = Some(value("--metrics-addr")?.to_string());
            }
            "--metrics-addr-file" => {
                options.metrics_addr_file = Some(PathBuf::from(value("--metrics-addr-file")?));
            }
            "--flight-capacity" => {
                options.flight_capacity = value("--flight-capacity")?
                    .parse()
                    .map_err(|_| "invalid --flight-capacity".to_owned())?;
            }
            "--flight-dump" => {
                options.flight_dump = PathBuf::from(value("--flight-dump")?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if let Some(addr) = connect {
        return Ok(Mode::Connect(addr));
    }
    options.policy = match (res_first, spot) {
        (false, None) => PolicySpec::plain(base),
        (true, None) => PolicySpec::res_first(base),
        (false, Some(j_max)) => {
            let mut spec = PolicySpec::spot_first(base);
            if let Some(spot) = &mut spec.spot {
                spot.j_max = j_max;
            }
            spec
        }
        (true, Some(j_max)) => {
            let mut spec = PolicySpec::spot_res(base);
            if let Some(spot) = &mut spec.spot {
                spot.j_max = j_max;
            }
            spec
        }
    };
    Ok(Mode::Daemon(Box::new(options)))
}

/// Runs the subcommand on the arguments following `gaia serve`.
pub fn execute(args: &[String]) -> ExitCode {
    match parse(args) {
        Ok(Mode::Help) => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Ok(Mode::Connect(addr)) => {
            let stdin = io::stdin();
            let stdout = io::stdout();
            match gaia_serve::client::replay(&addr, stdin.lock(), stdout.lock()) {
                Ok(sent) => {
                    gaia_obs::info!("replayed {sent} request(s) to {addr}");
                    ExitCode::SUCCESS
                }
                Err(message) => {
                    gaia_obs::error!("{message}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Mode::Daemon(options)) => {
            install_sigterm_handler();
            match gaia_serve::run(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(message) => {
                    gaia_obs::error!("{message}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(message) => {
            gaia_obs::error!("{message}");
            gaia_obs::error!("run `gaia serve --help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Route SIGTERM to [`gaia_serve::request_termination`] so a daemon
/// killed by its supervisor flushes telemetry and dumps the flight
/// recorder instead of dying mid-request. The handler body only stores
/// one atomic, which is async-signal-safe; the engine loop polls the
/// flag between requests.
#[cfg(unix)]
fn install_sigterm_handler() {
    const SIGTERM: i32 = 15;
    extern "C" fn on_sigterm(_signum: i32) {
        gaia_serve::request_termination();
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal` is the libc prototype; the handler is a plain
    // `extern "C"` fn that touches nothing but an `AtomicBool`.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_carbon::Region;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_run_a_daemon() {
        let Ok(Mode::Daemon(options)) = parse(&args(&[])) else {
            panic!("defaults parse");
        };
        assert_eq!(options.listen, "127.0.0.1:0");
        assert_eq!(
            options.policy,
            PolicySpec::plain(BasePolicyKind::CarbonTime)
        );
        assert!(options.restore.is_none());
    }

    #[test]
    fn full_flag_set_parses() {
        let Ok(Mode::Daemon(options)) = parse(&args(&[
            "--listen",
            "127.0.0.1:7777",
            "--policy",
            "lowest-window",
            "--res-first",
            "--spot",
            "360",
            "--region",
            "ON-CA",
            "--seed",
            "9",
            "--reserved",
            "12",
            "--expect-jobs",
            "250000",
            "--snapshot-every",
            "500",
            "--snapshot-path",
            "/tmp/s.snap",
            "--restore",
            "/tmp/old.snap",
            "--trace",
            "/tmp/t.jsonl",
            "--metrics-addr",
            "127.0.0.1:0",
            "--metrics-addr-file",
            "/tmp/m.addr",
            "--flight-capacity",
            "1024",
            "--flight-dump",
            "/tmp/f.jsonl",
        ])) else {
            panic!("full flags parse");
        };
        assert_eq!(options.listen, "127.0.0.1:7777");
        assert_eq!(options.policy.base, BasePolicyKind::LowestWindow);
        assert!(options.policy.res_first);
        assert_eq!(options.policy.spot.map(|s| s.j_max.as_minutes()), Some(360));
        assert_eq!(options.region, Region::Ontario);
        assert_eq!(options.seed, 9);
        assert_eq!(options.reserved, 12);
        assert_eq!(options.expect_jobs, Some(250_000));
        assert_eq!(options.snapshot_every, Some(500));
        assert_eq!(options.restore, Some(PathBuf::from("/tmp/old.snap")));
        assert_eq!(options.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            options.metrics_addr_file,
            Some(PathBuf::from("/tmp/m.addr"))
        );
        assert_eq!(options.flight_capacity, 1024);
        assert_eq!(options.flight_dump, PathBuf::from("/tmp/f.jsonl"));
    }

    #[test]
    fn telemetry_defaults_are_on() {
        let Ok(Mode::Daemon(options)) = parse(&args(&[])) else {
            panic!("defaults parse");
        };
        assert_eq!(options.flight_capacity, 4096, "flight recorder defaults on");
        assert!(options.metrics_addr.is_none(), "HTTP exposition is opt-in");
    }

    #[test]
    fn connect_mode_wins() {
        let Ok(Mode::Connect(addr)) = parse(&args(&["--connect", "127.0.0.1:7777"])) else {
            panic!("connect parses");
        };
        assert_eq!(addr, "127.0.0.1:7777");
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse(&args(&["--policy", "magic"])).is_err());
        assert!(parse(&args(&["--snapshot-every", "0"])).is_err());
        assert!(parse(&args(&["--region", "atlantis"])).is_err());
        assert!(parse(&args(&["--frobnicate"])).is_err());
        assert!(parse(&args(&["--seed"])).is_err());
    }

    #[test]
    fn help_mentions_every_flag() {
        for flag in [
            "--listen",
            "--addr-file",
            "--policy",
            "--res-first",
            "--spot",
            "--region",
            "--seed",
            "--reserved",
            "--snapshot-every",
            "--snapshot-path",
            "--restore",
            "--trace",
            "--faults",
            "--connect",
            "--metrics-addr",
            "--metrics-addr-file",
            "--flight-capacity",
            "--flight-dump",
        ] {
            assert!(HELP.contains(flag), "{flag} missing from help");
        }
    }
}
