//! The `gaia sweep` subcommand: cartesian experiment grids on the
//! gaia-sweep worker pool, with artifacts written to a result store.
//!
//! `gaia sweep --shard I/N` runs one deterministic slice of the grid
//! and persists it under `<out>/<name>/shards/`; `gaia sweep merge`
//! recombines completed slices into the standard single-process
//! artifacts, byte-identical to a one-process run of the same grid.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gaia_carbon::Region;
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_metrics::table::TextTable;
use gaia_obs::{MetricsRegistry, Profiler};
use gaia_sweep::{
    default_workers, shard, ClusterSpec, Executor, FaultPlan, FaultSchedule, ObsHooks, QueueSpec,
    ResultStore, RetryPolicy, SweepGrid, SweepRun, TimingBench, TraceCache, TraceFamily,
};

/// Help text printed for `gaia sweep --help`.
pub const HELP: &str = "\
gaia sweep — run a cartesian experiment grid on the parallel sweep engine

USAGE:
    gaia sweep [OPTIONS]
    gaia sweep merge [OPTIONS] [SHARD_DIR ...]   (see gaia sweep merge --help)

GRID (comma-separated lists; each defaults to one paper-default entry):
    --policies <A,B,..>    policy names (default: nowait,lowest-slot,
                           lowest-window,carbon-time; the elastic
                           carbon-scale policy is accepted but opt-in)
    --regions <A,B,..>     region codes (default: SA-AU)
    --traces <A,B,..>      workload families: alibaba | azure | mustang
                           (default: alibaba)
    --seeds <A,B,..>       seeds (default: 42)
    --scale <week|year>    workload scale (default: week)
    --jobs <N>             job count for year-long traces (default 100000)
    --reserved <N>         reserved CPU instances (default 0)
    --eviction <RATE>      hourly spot eviction rate in [0,1] (default 0)
    -w SHORTxLONG          max waiting times in hours (default: 6x24)

EXECUTION:
    --workers <N>          worker threads (default: available parallelism,
                           or the GAIA_WORKERS environment variable)
    --bench                also run the grid serially and record the
                           serial-vs-parallel timing in the manifest
    --no-progress          suppress the stderr progress meter
    --audit                validate every completed cell against the
                           engine's invariant audit (default: on)
    --no-audit             skip the invariant audit

SHARDING & RESUMABILITY:
    --shard I/N            run only the cells a stable hash of each cell
                           key assigns to shard I of N (0-based); the
                           slice is written to <out>/<name>/shards/I-of-N/
                           instead of the run artifacts, and completed
                           shards are recombined with `gaia sweep merge`.
                           Incompatible with --bench (timing needs the
                           whole grid in one process)
    --cache-dir <DIR>      content-addressed on-disk result cache: every
                           completed cell is persisted under DIR keyed by
                           a fingerprint of its full inputs, and cells
                           already present are replayed instead of
                           recomputed — so re-running an interrupted
                           sweep with the same cache dir resumes where it
                           stopped, to byte-identical artifacts. Sharded
                           runs default to <out>/cache

OUTPUT:
    --out <DIR>            results root directory (default: results)
    --name <NAME>          run directory name (default: sweep)
    --help                 show this message

FAULT INJECTION & RESILIENCE:
    --faults <FILE>        JSON fault plan (see gaia-fault) replayed
                           deterministically inside every cell; chaos_cell
                           specs fail matching cells at the harness level
                           before the simulation starts
    --retries <N>          attempts per cell before it is recorded as
                           failed (default 1: no retries); recovered cells
                           keep retried:N provenance in scenarios.csv and
                           the manifest
    --retry-backoff-ms <MS> base backoff before the first retry, doubled
                           per attempt and capped at 30s (default 0)
    --cell-timeout-s <S>   wall-clock budget per attempt; an expired cell
                           fails (or retries). Timeouts trade determinism
                           for liveness: a cell near the limit may pass or
                           fail by machine speed, so leave this off when
                           byte-identical artifacts matter
    --cell-timeout-scale <N> multiply the budget by N per retry (capped at
                           1h) so a timed-out cell can recover under a
                           bigger budget; such cells keep BOTH provenances
                           in scenarios.csv (timed_out;retried:N)
                           (default 1)

OBSERVABILITY:
    --trace-dir <DIR>      write one JSONL event trace per cell into DIR
                           (<cell key with / replaced by _>.jsonl); each
                           file is deterministic in its scenario and
                           byte-identical for any --workers value
    --metrics              record counters/histograms across all cells
                           and snapshot them to <out>/<name>/metrics.json
                           (deterministic), plus a per-phase profile
                           block in the manifest (wall-clock)
    GAIA_LOG=<LEVEL>       stderr verbosity: error | warn | info | debug
                           (default info; warn also silences the
                           progress meter)

Artifacts written to <out>/<name>/: manifest.json, scenarios.csv,
aggregate.csv, aggregate.json, and metrics.json with --metrics. The
CSV/JSON results (metrics.json included) are byte-identical for any
--workers value; only wall-clock facts in manifest.json change.

EXIT CODES:
    0  every cell completed and the audit found no violations
    1  usage or I/O error
    2  at least one cell failed with a typed simulation error, or the
       audit found invariant violations
";

/// Parsed `gaia sweep` options.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    pub help: bool,
    pub policies: Vec<PolicySpec>,
    pub regions: Vec<Region>,
    pub families: Vec<TraceFamily>,
    pub seeds: Vec<u64>,
    pub year: bool,
    pub jobs: usize,
    pub reserved: u32,
    pub eviction: f64,
    pub queues: QueueSpec,
    pub workers: usize,
    pub bench: bool,
    pub progress: bool,
    pub audit: bool,
    pub out: String,
    pub name: String,
    pub shard: Option<(usize, usize)>,
    pub cache_dir: Option<String>,
    pub trace_dir: Option<String>,
    pub metrics: bool,
    pub faults: Option<String>,
    pub retries: u32,
    pub retry_backoff_ms: u64,
    pub cell_timeout_s: Option<f64>,
    pub cell_timeout_scale: u32,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            help: false,
            policies: vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::LowestSlot),
                PolicySpec::plain(BasePolicyKind::LowestWindow),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ],
            regions: vec![Region::SouthAustralia],
            families: vec![TraceFamily::AlibabaPai],
            seeds: vec![42],
            year: false,
            jobs: 100_000,
            reserved: 0,
            eviction: 0.0,
            queues: QueueSpec::default(),
            workers: default_workers(),
            bench: false,
            progress: true,
            audit: true,
            out: "results".to_owned(),
            name: "sweep".to_owned(),
            shard: None,
            cache_dir: None,
            trace_dir: None,
            metrics: false,
            faults: None,
            retries: 1,
            retry_backoff_ms: 0,
            cell_timeout_s: None,
            cell_timeout_scale: 1,
        }
    }
}

impl SweepOptions {
    /// Parses the arguments following `gaia sweep`.
    pub fn parse(args: &[String]) -> Result<SweepOptions, String> {
        let mut options = SweepOptions::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| {
                iter.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--help" | "-h" => options.help = true,
                "--policies" => {
                    options.policies = split(value("--policies")?)
                        .map(|name| {
                            BasePolicyKind::parse(name)
                                .map(PolicySpec::plain)
                                .ok_or_else(|| format!("unknown policy {name:?}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--regions" => {
                    options.regions = split(value("--regions")?)
                        .map(|code| code.parse().map_err(|_| format!("unknown region {code:?}")))
                        .collect::<Result<_, _>>()?;
                }
                "--traces" => {
                    options.families = split(value("--traces")?)
                        .map(parse_family)
                        .collect::<Result<_, _>>()?;
                }
                "--seeds" => {
                    options.seeds = split(value("--seeds")?)
                        .map(|s| s.parse().map_err(|_| format!("invalid seed {s:?}")))
                        .collect::<Result<_, _>>()?;
                }
                "--scale" => {
                    options.year = match value("--scale")?.to_ascii_lowercase().as_str() {
                        "week" => false,
                        "year" => true,
                        other => return Err(format!("unknown scale {other:?}")),
                    };
                }
                "--jobs" => {
                    options.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| "invalid --jobs count".to_owned())?;
                }
                "--reserved" => {
                    options.reserved = value("--reserved")?
                        .parse()
                        .map_err(|_| "invalid --reserved count".to_owned())?;
                }
                "--eviction" => {
                    let rate: f64 = value("--eviction")?
                        .parse()
                        .map_err(|_| "invalid --eviction rate".to_owned())?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err("--eviction rate must be in [0, 1]".into());
                    }
                    options.eviction = rate;
                }
                "-w" | "--waiting" => {
                    let spec = value("-w")?;
                    let (short, long) = spec
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("-w expects SHORTxLONG, got {spec:?}"))?;
                    options.queues = QueueSpec {
                        short_hours: short
                            .trim()
                            .parse()
                            .map_err(|_| format!("invalid waiting hours {short:?}"))?,
                        long_hours: long
                            .trim()
                            .parse()
                            .map_err(|_| format!("invalid waiting hours {long:?}"))?,
                    };
                }
                "--workers" => {
                    let n: usize = value("--workers")?
                        .parse()
                        .map_err(|_| "invalid --workers count".to_owned())?;
                    if n == 0 {
                        return Err("--workers must be at least 1".into());
                    }
                    options.workers = n;
                }
                "--bench" => options.bench = true,
                "--no-progress" => options.progress = false,
                "--audit" => options.audit = true,
                "--no-audit" => options.audit = false,
                "--out" => options.out = value("--out")?.to_owned(),
                "--name" => options.name = value("--name")?.to_owned(),
                "--shard" => {
                    let spec = value("--shard")?;
                    let (index, of) = spec
                        .split_once('/')
                        .ok_or_else(|| format!("--shard expects I/N, got {spec:?}"))?;
                    let index: usize = index
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid shard index {index:?}"))?;
                    let of: usize = of
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid shard count {of:?}"))?;
                    if of == 0 {
                        return Err("--shard count must be at least 1".into());
                    }
                    if index >= of {
                        return Err(format!(
                            "--shard index {index} out of range for {of} shard(s)"
                        ));
                    }
                    options.shard = Some((index, of));
                }
                "--cache-dir" => options.cache_dir = Some(value("--cache-dir")?.to_owned()),
                "--trace-dir" => options.trace_dir = Some(value("--trace-dir")?.to_owned()),
                "--metrics" => options.metrics = true,
                "--faults" => options.faults = Some(value("--faults")?.to_owned()),
                "--retries" => {
                    let n: u32 = value("--retries")?
                        .parse()
                        .map_err(|_| "invalid --retries count".to_owned())?;
                    if n == 0 {
                        return Err("--retries must be at least 1".into());
                    }
                    options.retries = n;
                }
                "--retry-backoff-ms" => {
                    options.retry_backoff_ms = value("--retry-backoff-ms")?
                        .parse()
                        .map_err(|_| "invalid --retry-backoff-ms value".to_owned())?;
                }
                "--cell-timeout-s" => {
                    let secs: f64 = value("--cell-timeout-s")?
                        .parse()
                        .map_err(|_| "invalid --cell-timeout-s value".to_owned())?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("--cell-timeout-s must be a positive number".into());
                    }
                    options.cell_timeout_s = Some(secs);
                }
                "--cell-timeout-scale" => {
                    let scale: u32 = value("--cell-timeout-scale")?
                        .parse()
                        .map_err(|_| "invalid --cell-timeout-scale value".to_owned())?;
                    if scale == 0 {
                        return Err("--cell-timeout-scale must be at least 1".into());
                    }
                    options.cell_timeout_scale = scale;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if options.policies.is_empty()
            || options.regions.is_empty()
            || options.families.is_empty()
            || options.seeds.is_empty()
        {
            return Err("grid dimensions must not be empty".into());
        }
        if options.bench && options.shard.is_some() {
            return Err(
                "--bench is incompatible with --shard: timing compares the whole \
                 grid in one process"
                    .into(),
            );
        }
        Ok(options)
    }

    /// The on-disk result cache to resume from, if any: an explicit
    /// `--cache-dir`, or the sharded-run default `<out>/cache` (shared
    /// by every shard of the sweep so a merge-then-rerun stays warm).
    pub fn resolved_cache_dir(&self) -> Option<PathBuf> {
        match (&self.cache_dir, self.shard) {
            (Some(dir), _) => Some(PathBuf::from(dir)),
            (None, Some(_)) => Some(Path::new(&self.out).join("cache")),
            (None, None) => None,
        }
    }

    /// Where shard `index` of `of` persists its slice.
    pub fn shard_dir(&self, index: usize, of: usize) -> PathBuf {
        Path::new(&self.out)
            .join(&self.name)
            .join("shards")
            .join(format!("{index}-of-{of}"))
    }

    /// The per-cell retry policy the flags describe.
    pub fn retry_policy(&self) -> RetryPolicy {
        let mut policy = RetryPolicy::attempts(self.retries)
            .with_backoff(Duration::from_millis(self.retry_backoff_ms));
        if let Some(secs) = self.cell_timeout_s {
            policy = policy.with_timeout(Duration::from_secs_f64(secs));
        }
        if self.cell_timeout_scale > 1 {
            policy = policy.with_timeout_scale(self.cell_timeout_scale);
        }
        policy
    }

    /// Loads and compiles `--faults FILE`, if given.
    pub fn fault_schedule(&self) -> Result<Option<FaultSchedule>, String> {
        let Some(path) = &self.faults else {
            return Ok(None);
        };
        let plan = FaultPlan::load(Path::new(path))
            .map_err(|e| format!("cannot load fault plan {path}: {e}"))?;
        let schedule = plan
            .compile()
            .map_err(|e| format!("invalid fault plan {path}: {e}"))?;
        gaia_obs::info!(
            "fault plan: {} spec(s) loaded from {path}",
            plan.specs().len()
        );
        Ok(Some(schedule))
    }

    /// Expands the options into a sweep grid.
    pub fn grid(&self) -> SweepGrid {
        let base = if self.year {
            // Year-long contracts: the paper's 368-day billing horizon.
            SweepGrid::year(self.jobs, 368)
        } else {
            SweepGrid::week(9)
        };
        let cluster = ClusterSpec::on_demand(if self.year { 368 } else { 9 })
            .with_reserved(self.reserved)
            .with_eviction(self.eviction);
        base.policies(self.policies.clone())
            .regions(self.regions.clone())
            .families(self.families.clone())
            .seeds(self.seeds.clone())
            .clusters(vec![cluster])
            .queue_specs(vec![self.queues])
    }
}

fn split(list: &str) -> impl Iterator<Item = &str> {
    list.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn parse_family(name: &str) -> Result<TraceFamily, String> {
    match name.to_ascii_lowercase().as_str() {
        "alibaba" | "alibaba-pai" | "pai" => Ok(TraceFamily::AlibabaPai),
        "azure" | "azure-vm" => Ok(TraceFamily::AzureVm),
        "mustang" | "mustang-hpc" | "lanl" => Ok(TraceFamily::MustangHpc),
        other => Err(format!("unknown trace {other:?}")),
    }
}

/// Runs the subcommand.
///
/// Exit codes: 0 for a clean sweep, 1 for usage/I/O errors, 2 when any
/// cell failed with a typed simulation error or the audit found
/// invariant violations.
pub fn execute(options: &SweepOptions) -> ExitCode {
    let grid = options.grid();
    gaia_obs::info!("sweep grid: {}", grid.describe());

    let executor = Executor::new(options.workers).with_progress(options.progress);
    let observed = options.metrics || options.trace_dir.is_some();
    // Observability state; consulted only on the observed path, but the
    // store write below always receives the (possibly empty) snapshots.
    let registry = MetricsRegistry::new();
    let profiler = Arc::new(Profiler::new());

    let schedule = match options.fault_schedule() {
        Ok(schedule) => schedule,
        Err(error) => {
            gaia_obs::error!("{error}");
            return ExitCode::FAILURE;
        }
    };
    let retry = options.retry_policy();

    // The serial bench leg stays uninstrumented (fresh trace cache, no
    // hooks, no result cache) so trace I/O and warm cache entries cannot
    // skew the timing comparison.
    let serial_secs = if options.bench {
        let mut serial = grid
            .runner()
            .executor(&Executor::new(1))
            .audit(options.audit)
            .retry(retry);
        if let Some(schedule) = schedule.as_ref() {
            serial = serial.faults(schedule);
        }
        match serial.execute() {
            Ok(run) => Some(run.wall.as_secs_f64()),
            Err(error) => {
                gaia_obs::error!("serial bench leg: {error}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let cache = TraceCache::new().with_profiler(Arc::clone(&profiler));
    let hooks = ObsHooks {
        metrics: options.metrics.then_some(&registry),
        profiler: options.metrics.then_some(&*profiler),
        trace_dir: options.trace_dir.as_deref().map(Path::new),
        sweep_sink: None,
    };
    let mut runner = grid
        .runner()
        .executor(&executor)
        .cache(&cache)
        .audit(options.audit)
        .retry(retry);
    if let Some(schedule) = schedule.as_ref() {
        runner = runner.faults(schedule);
    }
    if observed {
        runner = runner.obs(&hooks);
    }
    if let Some((index, of)) = options.shard {
        runner = runner.shard(index, of);
    }
    if let Some(dir) = options.resolved_cache_dir() {
        runner = runner.resume(dir);
    }
    let run = match runner.execute() {
        Ok(run) => run,
        Err(error) => {
            gaia_obs::error!("sweep: {error}");
            return ExitCode::FAILURE;
        }
    };

    for cell in run.retried_cells() {
        if let Some((attempts, timed_out, error)) = cell.retry_provenance() {
            gaia_obs::warn!(
                "cell {} recovered after {attempts} attempts{} (last failure: {error})",
                cell.key,
                if timed_out {
                    ", including a timeout"
                } else {
                    ""
                },
            );
        }
    }
    if let Some(stats) = run.disk_cache {
        gaia_obs::info!(
            "result cache: {} hit(s), {} miss(es), {} cell(s) persisted",
            stats.hits,
            stats.misses,
            stats.persists
        );
    }
    let timing = serial_secs.map(|serial_secs| {
        let parallel_secs = run.wall.as_secs_f64();
        TimingBench {
            serial_secs,
            parallel_secs,
            workers: run.workers,
            speedup: serial_secs / parallel_secs,
        }
    });
    if let Some(bench) = &timing {
        gaia_obs::info!(
            "bench: serial {:.2}s vs {} workers {:.2}s — speedup {:.2}x",
            bench.serial_secs,
            bench.workers,
            bench.parallel_secs,
            bench.speedup
        );
    }

    // A shard persists its slice for a later merge instead of writing
    // the (necessarily partial) run artifacts or aggregate table.
    if let Some((index, of)) = options.shard {
        let dir = options.shard_dir(index, of);
        return match shard::write_shard(&dir, &run, options.metrics.then_some(&registry)) {
            Ok(()) => {
                gaia_obs::info!(
                    "shard {index}/{of}: {} cell(s) written to {}",
                    run.results.len(),
                    dir.display()
                );
                audit_exit_code(&run)
            }
            Err(error) => {
                gaia_obs::error!("writing shard slice: {error}");
                ExitCode::FAILURE
            }
        };
    }

    print_group_table(&run);

    match ResultStore::create(&options.out, &options.name).and_then(|store| {
        store
            .write_observed(
                &run,
                timing,
                options.metrics.then_some(&registry),
                options.metrics.then_some(&*profiler),
            )
            .map(|()| store)
    }) {
        Ok(store) => {
            gaia_obs::info!("artifacts written to {}", store.dir().display());
            audit_exit_code(&run)
        }
        Err(error) => {
            gaia_obs::error!("writing results: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Prints the across-seed aggregate table shown after a full sweep or a
/// merge.
fn print_group_table(run: &SweepRun) {
    let mut table = TextTable::new(vec!["scenario", "carbon (kg)", "cost ($)", "wait (h)"]);
    for group in gaia_sweep::across_seed_groups(run) {
        table.row(vec![
            group.key.clone(),
            format!(
                "{:.1} ± {:.1}",
                group.stats.carbon_g.mean / 1000.0,
                group.stats.carbon_g.std_dev / 1000.0
            ),
            group.stats.total_cost.display(2),
            group.stats.mean_wait_hours.display(2),
        ]);
    }
    println!("{table}");
}

/// Help text printed for `gaia sweep merge --help`.
pub const MERGE_HELP: &str = "\
gaia sweep merge — recombine completed shard runs into one result set

USAGE:
    gaia sweep merge [OPTIONS] [SHARD_DIR ...]

With no SHARD_DIR arguments, every directory under <out>/<name>/shards/
is merged. The merge validates that the slices came from the same grid,
agree on the shard count, and cover every cell exactly once; it then
writes the standard run artifacts (manifest.json, scenarios.csv,
aggregate.csv, aggregate.json, plus metrics.json when every shard was
run with --metrics) to <out>/<name>/ — byte-identical to a
single-process `gaia sweep` of the same grid, except for wall-clock
facts that live only in manifest.json.

OPTIONS:
    --out <DIR>            results root directory (default: results)
    --name <NAME>          run directory name (default: sweep)
    --help                 show this message

EXIT CODES:
    0  every merged cell completed and the audit found no violations
    1  usage or I/O error, or an incomplete/inconsistent shard set
    2  the merged run records failed cells or audit violations
";

/// Parsed `gaia sweep merge` options.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOptions {
    pub help: bool,
    pub out: String,
    pub name: String,
    /// Explicit shard directories; when empty, `<out>/<name>/shards/*`
    /// is discovered instead.
    pub dirs: Vec<String>,
}

impl MergeOptions {
    /// Parses the arguments following `gaia sweep merge`.
    pub fn parse(args: &[String]) -> Result<MergeOptions, String> {
        let mut options = MergeOptions {
            help: false,
            out: "results".to_owned(),
            name: "sweep".to_owned(),
            dirs: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| {
                iter.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--help" | "-h" => options.help = true,
                "--out" => options.out = value("--out")?.to_owned(),
                "--name" => options.name = value("--name")?.to_owned(),
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other:?}"));
                }
                dir => options.dirs.push(dir.to_owned()),
            }
        }
        Ok(options)
    }

    /// The shard directories to merge: the explicit arguments, or every
    /// directory under `<out>/<name>/shards/` in name order.
    pub fn shard_dirs(&self) -> Result<Vec<PathBuf>, String> {
        if !self.dirs.is_empty() {
            return Ok(self.dirs.iter().map(PathBuf::from).collect());
        }
        let root = Path::new(&self.out).join(&self.name).join("shards");
        let entries = std::fs::read_dir(&root)
            .map_err(|e| format!("cannot list shard root {}: {e}", root.display()))?;
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.is_dir())
            .collect();
        dirs.sort();
        if dirs.is_empty() {
            return Err(format!("no shard directories under {}", root.display()));
        }
        Ok(dirs)
    }
}

/// Runs `gaia sweep merge`: validates and combines completed shard
/// slices, then writes the standard run artifacts.
pub fn execute_merge(options: &MergeOptions) -> ExitCode {
    let dirs = match options.shard_dirs() {
        Ok(dirs) => dirs,
        Err(error) => {
            gaia_obs::error!("{error}");
            return ExitCode::FAILURE;
        }
    };
    let merged = match shard::merge_shards(&dirs) {
        Ok(merged) => merged,
        Err(error) => {
            gaia_obs::error!("merge: {error}");
            return ExitCode::FAILURE;
        }
    };
    gaia_obs::info!(
        "merged {} shard(s): {} cell(s)",
        dirs.len(),
        merged.run.results.len()
    );

    print_group_table(&merged.run);

    match ResultStore::create(&options.out, &options.name).and_then(|store| {
        store
            .write_observed(&merged.run, None, merged.metrics.as_ref(), None)
            .map(|()| store)
    }) {
        Ok(store) => {
            gaia_obs::info!("artifacts written to {}", store.dir().display());
            audit_exit_code(&merged.run)
        }
        Err(error) => {
            gaia_obs::error!("writing results: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Reports failed cells and audit violations to stderr and maps them to
/// the exit-code contract: clean sweep → 0, any failure/violation → 2.
fn audit_exit_code(run: &gaia_sweep::SweepRun) -> ExitCode {
    let failed = run.failed_cells();
    for cell in &failed {
        gaia_obs::error!("cell {} failed: {}", cell.key, cell.error().unwrap_or("?"));
    }
    let mut violations = 0;
    for result in &run.results {
        if let Some(audit) = result.audit() {
            for violation in &audit.violations {
                gaia_obs::error!("audit: {}: {violation}", result.key);
            }
            violations += audit.violations.len();
        }
    }
    if failed.is_empty() && violations == 0 {
        if run.audited {
            gaia_obs::info!("audit: all {} cells clean", run.results.len());
        }
        ExitCode::SUCCESS
    } else {
        gaia_obs::error!(
            "audit: {} failed cell(s), {} violation(s)",
            failed.len(),
            violations
        );
        ExitCode::from(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepOptions, String> {
        SweepOptions::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_build_a_four_policy_grid() {
        let o = parse(&[]).expect("empty args");
        let grid = o.grid();
        assert_eq!(grid.len(), 4);
        assert!(o.workers >= 1);
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--policies",
            "nowait,carbon-time",
            "--regions",
            "sa-au,ca-us",
            "--traces",
            "alibaba,azure",
            "--seeds",
            "1,2,3",
            "--scale",
            "year",
            "--jobs",
            "500",
            "--reserved",
            "9",
            "--eviction",
            "0.05",
            "-w",
            "3x12",
            "--workers",
            "2",
            "--bench",
            "--out",
            "/tmp/x",
            "--name",
            "demo",
        ])
        .expect("valid");
        assert_eq!(o.policies.len(), 2);
        assert_eq!(o.regions, vec![Region::SouthAustralia, Region::California]);
        assert_eq!(
            o.families,
            vec![TraceFamily::AlibabaPai, TraceFamily::AzureVm]
        );
        assert_eq!(o.seeds, vec![1, 2, 3]);
        assert!(o.year);
        assert_eq!(o.jobs, 500);
        assert_eq!(o.reserved, 9);
        assert_eq!(
            o.queues,
            QueueSpec {
                short_hours: 3,
                long_hours: 12
            }
        );
        assert_eq!(o.workers, 2);
        assert!(o.bench);
        let grid = o.grid();
        assert_eq!(grid.len(), 2 * 2 * 2 * 3);
        assert_eq!(grid.clusters[0].reserved, 9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--policies", "magic"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--seeds", "x"]).is_err());
        assert!(parse(&["--traces", "borg"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        // Empty dimension lists must be a parse error, not a grid panic.
        assert!(parse(&["--seeds", ""]).is_err());
        assert!(parse(&["--policies", ""]).is_err());
        assert!(parse(&["--traces", ""]).is_err());
        assert!(parse(&["--regions", ""]).is_err());
    }

    #[test]
    fn help_flag() {
        assert!(parse(&["--help"]).expect("valid").help);
        assert!(HELP.contains("--workers"));
        assert!(HELP.contains("--no-audit"));
        assert!(HELP.contains("EXIT CODES"));
    }

    #[test]
    fn fault_and_retry_flags() {
        let o = parse(&[
            "--faults",
            "plan.json",
            "--retries",
            "3",
            "--retry-backoff-ms",
            "250",
            "--cell-timeout-s",
            "1.5",
        ])
        .expect("valid");
        assert_eq!(o.faults.as_deref(), Some("plan.json"));
        assert_eq!(
            o.retry_policy(),
            RetryPolicy::attempts(3)
                .with_backoff(Duration::from_millis(250))
                .with_timeout(Duration::from_secs_f64(1.5))
        );
        let scaled = parse(&[
            "--retries",
            "2",
            "--cell-timeout-s",
            "1.5",
            "--cell-timeout-scale",
            "4",
        ])
        .expect("valid");
        assert_eq!(
            scaled.retry_policy(),
            RetryPolicy::attempts(2)
                .with_timeout(Duration::from_secs_f64(1.5))
                .with_timeout_scale(4)
        );
        assert!(parse(&["--retries", "0"]).is_err());
        assert!(parse(&["--cell-timeout-s", "-2"]).is_err());
        assert!(parse(&["--cell-timeout-s", "nan"]).is_err());
        assert!(parse(&["--cell-timeout-scale", "0"]).is_err());
        assert!(parse(&["--cell-timeout-scale", "x"]).is_err());
        // Defaults: no faults, single attempt, no timeout.
        let defaults = parse(&[]).expect("valid");
        assert_eq!(defaults.retry_policy(), RetryPolicy::default());
        assert!(defaults
            .fault_schedule()
            .expect("no file to load")
            .is_none());
        assert!(HELP.contains("--faults"));
        assert!(HELP.contains("--cell-timeout-s"));
        assert!(HELP.contains("--cell-timeout-scale"));
    }

    #[test]
    fn audit_defaults_on_and_can_be_disabled() {
        assert!(parse(&[]).expect("valid").audit);
        assert!(!parse(&["--no-audit"]).expect("valid").audit);
        assert!(parse(&["--no-audit", "--audit"]).expect("valid").audit);
    }

    #[test]
    fn shard_and_cache_flags() {
        let o = parse(&["--shard", "1/3", "--out", "/tmp/x", "--name", "demo"]).expect("valid");
        assert_eq!(o.shard, Some((1, 3)));
        // Sharded runs share a result cache under the results root by
        // default, and persist their slice under the run directory.
        assert_eq!(o.resolved_cache_dir(), Some(PathBuf::from("/tmp/x/cache")));
        assert_eq!(
            o.shard_dir(1, 3),
            PathBuf::from("/tmp/x/demo/shards/1-of-3")
        );

        let explicit = parse(&["--cache-dir", "/tmp/warm"]).expect("valid");
        assert_eq!(explicit.shard, None);
        assert_eq!(
            explicit.resolved_cache_dir(),
            Some(PathBuf::from("/tmp/warm"))
        );
        // No shard and no --cache-dir: no disk cache at all.
        assert_eq!(parse(&[]).expect("valid").resolved_cache_dir(), None);

        assert!(parse(&["--shard", "3"]).is_err(), "missing the /N part");
        assert!(parse(&["--shard", "3/3"]).is_err(), "index out of range");
        assert!(parse(&["--shard", "0/0"]).is_err(), "zero shards");
        assert!(parse(&["--shard", "x/2"]).is_err(), "non-numeric index");
        assert!(
            parse(&["--shard", "0/2", "--bench"]).is_err(),
            "bench needs the whole grid in one process"
        );
        assert!(HELP.contains("--shard"));
        assert!(HELP.contains("--cache-dir"));
    }

    #[test]
    fn merge_options_parse() {
        let merge_parse = |args: &[&str]| {
            MergeOptions::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        let defaults = merge_parse(&[]).expect("valid");
        assert_eq!(defaults.out, "results");
        assert_eq!(defaults.name, "sweep");
        assert!(defaults.dirs.is_empty());

        let explicit = merge_parse(&["--out", "/tmp/x", "--name", "demo", "a/0-of-2", "a/1-of-2"])
            .expect("valid");
        assert_eq!(explicit.out, "/tmp/x");
        assert_eq!(explicit.dirs, vec!["a/0-of-2", "a/1-of-2"]);
        assert_eq!(
            explicit.shard_dirs().expect("explicit dirs"),
            vec![PathBuf::from("a/0-of-2"), PathBuf::from("a/1-of-2")]
        );

        assert!(merge_parse(&["--frobnicate"]).is_err());
        assert!(merge_parse(&["--help"]).expect("valid").help);
        assert!(MERGE_HELP.contains("byte-identical"));
    }
}
