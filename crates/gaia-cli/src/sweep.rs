//! The `gaia sweep` subcommand: cartesian experiment grids on the
//! gaia-sweep worker pool, with artifacts written to a result store.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gaia_carbon::Region;
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_metrics::table::TextTable;
use gaia_obs::{MetricsRegistry, Profiler};
use gaia_sweep::{
    default_workers, ClusterSpec, Executor, FaultOptions, FaultPlan, FaultSchedule, ObsHooks,
    QueueSpec, ResultStore, RetryPolicy, SweepGrid, TimingBench, TraceCache, TraceFamily,
};

/// Help text printed for `gaia sweep --help`.
pub const HELP: &str = "\
gaia sweep — run a cartesian experiment grid on the parallel sweep engine

USAGE:
    gaia sweep [OPTIONS]

GRID (comma-separated lists; each defaults to one paper-default entry):
    --policies <A,B,..>    policy names (default: nowait,lowest-slot,
                           lowest-window,carbon-time)
    --regions <A,B,..>     region codes (default: SA-AU)
    --traces <A,B,..>      workload families: alibaba | azure | mustang
                           (default: alibaba)
    --seeds <A,B,..>       seeds (default: 42)
    --scale <week|year>    workload scale (default: week)
    --jobs <N>             job count for year-long traces (default 100000)
    --reserved <N>         reserved CPU instances (default 0)
    --eviction <RATE>      hourly spot eviction rate in [0,1] (default 0)
    -w SHORTxLONG          max waiting times in hours (default: 6x24)

EXECUTION:
    --workers <N>          worker threads (default: available parallelism,
                           or the GAIA_WORKERS environment variable)
    --bench                also run the grid serially and record the
                           serial-vs-parallel timing in the manifest
    --no-progress          suppress the stderr progress meter
    --audit                validate every completed cell against the
                           engine's invariant audit (default: on)
    --no-audit             skip the invariant audit

OUTPUT:
    --out <DIR>            results root directory (default: results)
    --name <NAME>          run directory name (default: sweep)
    --help                 show this message

FAULT INJECTION & RESILIENCE:
    --faults <FILE>        JSON fault plan (see gaia-fault) replayed
                           deterministically inside every cell; chaos_cell
                           specs fail matching cells at the harness level
                           before the simulation starts
    --retries <N>          attempts per cell before it is recorded as
                           failed (default 1: no retries); recovered cells
                           keep retried:N provenance in scenarios.csv and
                           the manifest
    --retry-backoff-ms <MS> base backoff before the first retry, doubled
                           per attempt and capped at 30s (default 0)
    --cell-timeout-s <S>   wall-clock budget per attempt; an expired cell
                           fails (or retries). Timeouts trade determinism
                           for liveness: a cell near the limit may pass or
                           fail by machine speed, so leave this off when
                           byte-identical artifacts matter
    --cell-timeout-scale <N> multiply the budget by N per retry (capped at
                           1h) so a timed-out cell can recover under a
                           bigger budget; such cells keep BOTH provenances
                           in scenarios.csv (timed_out;retried:N)
                           (default 1)

OBSERVABILITY:
    --trace-dir <DIR>      write one JSONL event trace per cell into DIR
                           (<cell key with / replaced by _>.jsonl); each
                           file is deterministic in its scenario and
                           byte-identical for any --workers value
    --metrics              record counters/histograms across all cells
                           and snapshot them to <out>/<name>/metrics.json
                           (deterministic), plus a per-phase profile
                           block in the manifest (wall-clock)
    GAIA_LOG=<LEVEL>       stderr verbosity: error | warn | info | debug
                           (default info; warn also silences the
                           progress meter)

Artifacts written to <out>/<name>/: manifest.json, scenarios.csv,
aggregate.csv, aggregate.json, and metrics.json with --metrics. The
CSV/JSON results (metrics.json included) are byte-identical for any
--workers value; only wall-clock facts in manifest.json change.

EXIT CODES:
    0  every cell completed and the audit found no violations
    1  usage or I/O error
    2  at least one cell failed with a typed simulation error, or the
       audit found invariant violations
";

/// Parsed `gaia sweep` options.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    pub help: bool,
    pub policies: Vec<PolicySpec>,
    pub regions: Vec<Region>,
    pub families: Vec<TraceFamily>,
    pub seeds: Vec<u64>,
    pub year: bool,
    pub jobs: usize,
    pub reserved: u32,
    pub eviction: f64,
    pub queues: QueueSpec,
    pub workers: usize,
    pub bench: bool,
    pub progress: bool,
    pub audit: bool,
    pub out: String,
    pub name: String,
    pub trace_dir: Option<String>,
    pub metrics: bool,
    pub faults: Option<String>,
    pub retries: u32,
    pub retry_backoff_ms: u64,
    pub cell_timeout_s: Option<f64>,
    pub cell_timeout_scale: u32,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            help: false,
            policies: vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::LowestSlot),
                PolicySpec::plain(BasePolicyKind::LowestWindow),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ],
            regions: vec![Region::SouthAustralia],
            families: vec![TraceFamily::AlibabaPai],
            seeds: vec![42],
            year: false,
            jobs: 100_000,
            reserved: 0,
            eviction: 0.0,
            queues: QueueSpec::default(),
            workers: default_workers(),
            bench: false,
            progress: true,
            audit: true,
            out: "results".to_owned(),
            name: "sweep".to_owned(),
            trace_dir: None,
            metrics: false,
            faults: None,
            retries: 1,
            retry_backoff_ms: 0,
            cell_timeout_s: None,
            cell_timeout_scale: 1,
        }
    }
}

impl SweepOptions {
    /// Parses the arguments following `gaia sweep`.
    pub fn parse(args: &[String]) -> Result<SweepOptions, String> {
        let mut options = SweepOptions::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |flag: &str| {
                iter.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--help" | "-h" => options.help = true,
                "--policies" => {
                    options.policies = split(value("--policies")?)
                        .map(|name| {
                            BasePolicyKind::parse(name)
                                .map(PolicySpec::plain)
                                .ok_or_else(|| format!("unknown policy {name:?}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--regions" => {
                    options.regions = split(value("--regions")?)
                        .map(|code| code.parse().map_err(|_| format!("unknown region {code:?}")))
                        .collect::<Result<_, _>>()?;
                }
                "--traces" => {
                    options.families = split(value("--traces")?)
                        .map(parse_family)
                        .collect::<Result<_, _>>()?;
                }
                "--seeds" => {
                    options.seeds = split(value("--seeds")?)
                        .map(|s| s.parse().map_err(|_| format!("invalid seed {s:?}")))
                        .collect::<Result<_, _>>()?;
                }
                "--scale" => {
                    options.year = match value("--scale")?.to_ascii_lowercase().as_str() {
                        "week" => false,
                        "year" => true,
                        other => return Err(format!("unknown scale {other:?}")),
                    };
                }
                "--jobs" => {
                    options.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| "invalid --jobs count".to_owned())?;
                }
                "--reserved" => {
                    options.reserved = value("--reserved")?
                        .parse()
                        .map_err(|_| "invalid --reserved count".to_owned())?;
                }
                "--eviction" => {
                    let rate: f64 = value("--eviction")?
                        .parse()
                        .map_err(|_| "invalid --eviction rate".to_owned())?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err("--eviction rate must be in [0, 1]".into());
                    }
                    options.eviction = rate;
                }
                "-w" | "--waiting" => {
                    let spec = value("-w")?;
                    let (short, long) = spec
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("-w expects SHORTxLONG, got {spec:?}"))?;
                    options.queues = QueueSpec {
                        short_hours: short
                            .trim()
                            .parse()
                            .map_err(|_| format!("invalid waiting hours {short:?}"))?,
                        long_hours: long
                            .trim()
                            .parse()
                            .map_err(|_| format!("invalid waiting hours {long:?}"))?,
                    };
                }
                "--workers" => {
                    let n: usize = value("--workers")?
                        .parse()
                        .map_err(|_| "invalid --workers count".to_owned())?;
                    if n == 0 {
                        return Err("--workers must be at least 1".into());
                    }
                    options.workers = n;
                }
                "--bench" => options.bench = true,
                "--no-progress" => options.progress = false,
                "--audit" => options.audit = true,
                "--no-audit" => options.audit = false,
                "--out" => options.out = value("--out")?.to_owned(),
                "--name" => options.name = value("--name")?.to_owned(),
                "--trace-dir" => options.trace_dir = Some(value("--trace-dir")?.to_owned()),
                "--metrics" => options.metrics = true,
                "--faults" => options.faults = Some(value("--faults")?.to_owned()),
                "--retries" => {
                    let n: u32 = value("--retries")?
                        .parse()
                        .map_err(|_| "invalid --retries count".to_owned())?;
                    if n == 0 {
                        return Err("--retries must be at least 1".into());
                    }
                    options.retries = n;
                }
                "--retry-backoff-ms" => {
                    options.retry_backoff_ms = value("--retry-backoff-ms")?
                        .parse()
                        .map_err(|_| "invalid --retry-backoff-ms value".to_owned())?;
                }
                "--cell-timeout-s" => {
                    let secs: f64 = value("--cell-timeout-s")?
                        .parse()
                        .map_err(|_| "invalid --cell-timeout-s value".to_owned())?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("--cell-timeout-s must be a positive number".into());
                    }
                    options.cell_timeout_s = Some(secs);
                }
                "--cell-timeout-scale" => {
                    let scale: u32 = value("--cell-timeout-scale")?
                        .parse()
                        .map_err(|_| "invalid --cell-timeout-scale value".to_owned())?;
                    if scale == 0 {
                        return Err("--cell-timeout-scale must be at least 1".into());
                    }
                    options.cell_timeout_scale = scale;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if options.policies.is_empty()
            || options.regions.is_empty()
            || options.families.is_empty()
            || options.seeds.is_empty()
        {
            return Err("grid dimensions must not be empty".into());
        }
        Ok(options)
    }

    /// The per-cell retry policy the flags describe.
    pub fn retry_policy(&self) -> RetryPolicy {
        let mut policy = RetryPolicy::attempts(self.retries)
            .with_backoff(Duration::from_millis(self.retry_backoff_ms));
        if let Some(secs) = self.cell_timeout_s {
            policy = policy.with_timeout(Duration::from_secs_f64(secs));
        }
        if self.cell_timeout_scale > 1 {
            policy = policy.with_timeout_scale(self.cell_timeout_scale);
        }
        policy
    }

    /// Loads and compiles `--faults FILE`, if given.
    pub fn fault_schedule(&self) -> Result<Option<FaultSchedule>, String> {
        let Some(path) = &self.faults else {
            return Ok(None);
        };
        let plan = FaultPlan::load(Path::new(path))
            .map_err(|e| format!("cannot load fault plan {path}: {e}"))?;
        let schedule = plan
            .compile()
            .map_err(|e| format!("invalid fault plan {path}: {e}"))?;
        gaia_obs::info!(
            "fault plan: {} spec(s) loaded from {path}",
            plan.specs().len()
        );
        Ok(Some(schedule))
    }

    /// Expands the options into a sweep grid.
    pub fn grid(&self) -> SweepGrid {
        let base = if self.year {
            // Year-long contracts: the paper's 368-day billing horizon.
            SweepGrid::year(self.jobs, 368)
        } else {
            SweepGrid::week(9)
        };
        let cluster = ClusterSpec::on_demand(if self.year { 368 } else { 9 })
            .with_reserved(self.reserved)
            .with_eviction(self.eviction);
        base.policies(self.policies.clone())
            .regions(self.regions.clone())
            .families(self.families.clone())
            .seeds(self.seeds.clone())
            .clusters(vec![cluster])
            .queue_specs(vec![self.queues])
    }
}

fn split(list: &str) -> impl Iterator<Item = &str> {
    list.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn parse_family(name: &str) -> Result<TraceFamily, String> {
    match name.to_ascii_lowercase().as_str() {
        "alibaba" | "alibaba-pai" | "pai" => Ok(TraceFamily::AlibabaPai),
        "azure" | "azure-vm" => Ok(TraceFamily::AzureVm),
        "mustang" | "mustang-hpc" | "lanl" => Ok(TraceFamily::MustangHpc),
        other => Err(format!("unknown trace {other:?}")),
    }
}

/// Runs the subcommand.
///
/// Exit codes: 0 for a clean sweep, 1 for usage/I/O errors, 2 when any
/// cell failed with a typed simulation error or the audit found
/// invariant violations.
pub fn execute(options: &SweepOptions) -> ExitCode {
    let grid = options.grid();
    gaia_obs::info!("sweep grid: {}", grid.describe());

    let executor = Executor::new(options.workers).with_progress(options.progress);
    let observed = options.metrics || options.trace_dir.is_some();
    // Observability state; consulted only on the observed path, but the
    // store write below always receives the (possibly empty) snapshots.
    let registry = MetricsRegistry::new();
    let profiler = Arc::new(Profiler::new());

    let schedule = match options.fault_schedule() {
        Ok(schedule) => schedule,
        Err(error) => {
            gaia_obs::error!("{error}");
            return ExitCode::FAILURE;
        }
    };
    let retry = options.retry_policy();
    let faulted = schedule.is_some() || retry != RetryPolicy::default();

    let (run, timing) = if faulted {
        // Fault injection and retry share one harness path so the
        // determinism contract (same fault file + seed + grid ⇒ identical
        // artifacts for any worker count) holds with observability on.
        let fault_options = FaultOptions {
            schedule: schedule.as_ref(),
            retry,
        };
        let serial_secs = options.bench.then(|| {
            // Uninstrumented serial leg (fresh cache, no hooks) so trace
            // I/O cannot skew the timing comparison.
            match gaia_sweep::run_grid_faulted(
                &grid,
                &Executor::new(1),
                &TraceCache::new(),
                options.audit,
                &fault_options,
                None,
            ) {
                Ok(serial) => Ok(serial.wall.as_secs_f64()),
                Err(error) => Err(error),
            }
        });
        let serial_secs = match serial_secs.transpose() {
            Ok(secs) => secs,
            Err(error) => {
                gaia_obs::error!("serial bench leg: {error}");
                return ExitCode::FAILURE;
            }
        };
        let cache = TraceCache::new().with_profiler(Arc::clone(&profiler));
        let hooks = ObsHooks {
            metrics: options.metrics.then_some(&registry),
            profiler: options.metrics.then_some(&*profiler),
            trace_dir: options.trace_dir.as_deref().map(Path::new),
            sweep_sink: None,
        };
        let run = match gaia_sweep::run_grid_faulted(
            &grid,
            &executor,
            &cache,
            options.audit,
            &fault_options,
            Some(&hooks),
        ) {
            Ok(run) => run,
            Err(error) => {
                gaia_obs::error!("writing cell traces: {error}");
                return ExitCode::FAILURE;
            }
        };
        for cell in run.retried_cells() {
            if let Some((attempts, timed_out, error)) = cell.retry_provenance() {
                gaia_obs::warn!(
                    "cell {} recovered after {attempts} attempts{} (last failure: {error})",
                    cell.key,
                    if timed_out {
                        ", including a timeout"
                    } else {
                        ""
                    },
                );
            }
        }
        let timing = serial_secs.map(|serial_secs| {
            let parallel_secs = run.wall.as_secs_f64();
            TimingBench {
                serial_secs,
                parallel_secs,
                workers: run.workers,
                speedup: serial_secs / parallel_secs,
            }
        });
        (run, timing)
    } else if observed {
        // With --bench, the serial leg stays uninstrumented (fresh cache,
        // one worker) so trace I/O cannot skew the timing comparison;
        // only the parallel leg feeds metrics and per-cell traces.
        let serial_secs = options.bench.then(|| {
            let serial = if options.audit {
                gaia_sweep::run_grid_audited(&grid, &Executor::new(1), &TraceCache::new())
            } else {
                gaia_sweep::run_grid(&grid, &Executor::new(1))
            };
            serial.wall.as_secs_f64()
        });
        let cache = TraceCache::new().with_profiler(Arc::clone(&profiler));
        let hooks = ObsHooks {
            metrics: options.metrics.then_some(&registry),
            profiler: options.metrics.then_some(&*profiler),
            trace_dir: options.trace_dir.as_deref().map(Path::new),
            sweep_sink: None,
        };
        let run =
            match gaia_sweep::run_grid_observed(&grid, &executor, &cache, options.audit, &hooks) {
                Ok(run) => run,
                Err(error) => {
                    gaia_obs::error!("writing cell traces: {error}");
                    return ExitCode::FAILURE;
                }
            };
        let timing = serial_secs.map(|serial_secs| {
            let parallel_secs = run.wall.as_secs_f64();
            TimingBench {
                serial_secs,
                parallel_secs,
                workers: run.workers,
                speedup: serial_secs / parallel_secs,
            }
        });
        (run, timing)
    } else if options.bench {
        let (run, bench) = if options.audit {
            gaia_sweep::time_grid_audited(&grid, options.workers)
        } else {
            gaia_sweep::time_grid(&grid, options.workers)
        };
        (run, Some(bench))
    } else if options.audit {
        (
            gaia_sweep::run_grid_audited(&grid, &executor, &TraceCache::new()),
            None,
        )
    } else {
        (gaia_sweep::run_grid(&grid, &executor), None)
    };
    if let Some(bench) = &timing {
        gaia_obs::info!(
            "bench: serial {:.2}s vs {} workers {:.2}s — speedup {:.2}x",
            bench.serial_secs,
            bench.workers,
            bench.parallel_secs,
            bench.speedup
        );
    }

    let mut table = TextTable::new(vec!["scenario", "carbon (kg)", "cost ($)", "wait (h)"]);
    for group in gaia_sweep::across_seed_groups(&run) {
        table.row(vec![
            group.key.clone(),
            format!(
                "{:.1} ± {:.1}",
                group.stats.carbon_g.mean / 1000.0,
                group.stats.carbon_g.std_dev / 1000.0
            ),
            group.stats.total_cost.display(2),
            group.stats.mean_wait_hours.display(2),
        ]);
    }
    println!("{table}");

    match ResultStore::create(&options.out, &options.name).and_then(|store| {
        store
            .write_observed(
                &run,
                timing,
                options.metrics.then_some(&registry),
                options.metrics.then_some(&*profiler),
            )
            .map(|()| store)
    }) {
        Ok(store) => {
            gaia_obs::info!("artifacts written to {}", store.dir().display());
            audit_exit_code(&run)
        }
        Err(error) => {
            gaia_obs::error!("writing results: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Reports failed cells and audit violations to stderr and maps them to
/// the exit-code contract: clean sweep → 0, any failure/violation → 2.
fn audit_exit_code(run: &gaia_sweep::SweepRun) -> ExitCode {
    let failed = run.failed_cells();
    for cell in &failed {
        gaia_obs::error!("cell {} failed: {}", cell.key, cell.error().unwrap_or("?"));
    }
    let mut violations = 0;
    for result in &run.results {
        if let Some(audit) = result.audit() {
            for violation in &audit.violations {
                gaia_obs::error!("audit: {}: {violation}", result.key);
            }
            violations += audit.violations.len();
        }
    }
    if failed.is_empty() && violations == 0 {
        if run.audited {
            gaia_obs::info!("audit: all {} cells clean", run.results.len());
        }
        ExitCode::SUCCESS
    } else {
        gaia_obs::error!(
            "audit: {} failed cell(s), {} violation(s)",
            failed.len(),
            violations
        );
        ExitCode::from(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepOptions, String> {
        SweepOptions::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_build_a_four_policy_grid() {
        let o = parse(&[]).expect("empty args");
        let grid = o.grid();
        assert_eq!(grid.len(), 4);
        assert!(o.workers >= 1);
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--policies",
            "nowait,carbon-time",
            "--regions",
            "sa-au,ca-us",
            "--traces",
            "alibaba,azure",
            "--seeds",
            "1,2,3",
            "--scale",
            "year",
            "--jobs",
            "500",
            "--reserved",
            "9",
            "--eviction",
            "0.05",
            "-w",
            "3x12",
            "--workers",
            "2",
            "--bench",
            "--out",
            "/tmp/x",
            "--name",
            "demo",
        ])
        .expect("valid");
        assert_eq!(o.policies.len(), 2);
        assert_eq!(o.regions, vec![Region::SouthAustralia, Region::California]);
        assert_eq!(
            o.families,
            vec![TraceFamily::AlibabaPai, TraceFamily::AzureVm]
        );
        assert_eq!(o.seeds, vec![1, 2, 3]);
        assert!(o.year);
        assert_eq!(o.jobs, 500);
        assert_eq!(o.reserved, 9);
        assert_eq!(
            o.queues,
            QueueSpec {
                short_hours: 3,
                long_hours: 12
            }
        );
        assert_eq!(o.workers, 2);
        assert!(o.bench);
        let grid = o.grid();
        assert_eq!(grid.len(), 2 * 2 * 2 * 3);
        assert_eq!(grid.clusters[0].reserved, 9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--policies", "magic"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--seeds", "x"]).is_err());
        assert!(parse(&["--traces", "borg"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        // Empty dimension lists must be a parse error, not a grid panic.
        assert!(parse(&["--seeds", ""]).is_err());
        assert!(parse(&["--policies", ""]).is_err());
        assert!(parse(&["--traces", ""]).is_err());
        assert!(parse(&["--regions", ""]).is_err());
    }

    #[test]
    fn help_flag() {
        assert!(parse(&["--help"]).expect("valid").help);
        assert!(HELP.contains("--workers"));
        assert!(HELP.contains("--no-audit"));
        assert!(HELP.contains("EXIT CODES"));
    }

    #[test]
    fn fault_and_retry_flags() {
        let o = parse(&[
            "--faults",
            "plan.json",
            "--retries",
            "3",
            "--retry-backoff-ms",
            "250",
            "--cell-timeout-s",
            "1.5",
        ])
        .expect("valid");
        assert_eq!(o.faults.as_deref(), Some("plan.json"));
        assert_eq!(
            o.retry_policy(),
            RetryPolicy::attempts(3)
                .with_backoff(Duration::from_millis(250))
                .with_timeout(Duration::from_secs_f64(1.5))
        );
        let scaled = parse(&[
            "--retries",
            "2",
            "--cell-timeout-s",
            "1.5",
            "--cell-timeout-scale",
            "4",
        ])
        .expect("valid");
        assert_eq!(
            scaled.retry_policy(),
            RetryPolicy::attempts(2)
                .with_timeout(Duration::from_secs_f64(1.5))
                .with_timeout_scale(4)
        );
        assert!(parse(&["--retries", "0"]).is_err());
        assert!(parse(&["--cell-timeout-s", "-2"]).is_err());
        assert!(parse(&["--cell-timeout-s", "nan"]).is_err());
        assert!(parse(&["--cell-timeout-scale", "0"]).is_err());
        assert!(parse(&["--cell-timeout-scale", "x"]).is_err());
        // Defaults: no faults, single attempt, no timeout.
        let defaults = parse(&[]).expect("valid");
        assert_eq!(defaults.retry_policy(), RetryPolicy::default());
        assert!(defaults
            .fault_schedule()
            .expect("no file to load")
            .is_none());
        assert!(HELP.contains("--faults"));
        assert!(HELP.contains("--cell-timeout-s"));
        assert!(HELP.contains("--cell-timeout-scale"));
    }

    #[test]
    fn audit_defaults_on_and_can_be_disabled() {
        assert!(parse(&[]).expect("valid").audit);
        assert!(!parse(&["--no-audit"]).expect("valid").audit);
        assert!(parse(&["--no-audit", "--audit"]).expect("valid").audit);
    }
}
