//! Property tests over the policy space's two new axes: random scaling
//! curves through the elastic Carbon-Scale family, and random
//! region/seed combinations through the placed runner — every sampled
//! configuration must audit clean, and the degenerate configurations
//! (single-region placement) must reproduce plain runs exactly.

use gaia_carbon::{synth::synthesize_region, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_core::placement::PlacementSpec;
use gaia_core::{CarbonScale, GaiaScheduler};
use gaia_metrics::placed::{audit_placed, run_placed};
use gaia_metrics::runner::{self, run_spec_report};
use gaia_sim::{audit_report, ClusterConfig, Simulation};
use gaia_workload::elastic::{ElasticProfile, ScalingCurve};
use gaia_workload::synth::section3_workload;
use proptest::prelude::*;

fn region(idx: usize) -> Region {
    Region::ALL[idx % Region::ALL.len()]
}

proptest! {
    // Each case runs whole simulations; keep the sample count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Carbon-Scale stays audit-clean (coverage by work, occupancy,
    /// accounting, conservation, timing) for any Amdahl curve, ladder
    /// width, region, and workload seed.
    #[test]
    fn carbon_scale_audits_clean_for_random_curves(
        serial_fraction in 0.0f64..=1.0,
        max_width in 1u32..=8,
        region_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let trace = section3_workload(seed);
        let carbon = synthesize_region(region(region_idx), 42);
        let config = ClusterConfig::default().with_reserved(4);
        let profile = ElasticProfile::new(ScalingCurve::amdahl(serial_fraction), max_width);
        let mut scheduler = GaiaScheduler::new(
            CarbonScale::new(runner::default_queues(&trace)).with_profile(profile),
        );
        let report = Simulation::new(config, &carbon)
            .runner(&trace, &mut scheduler)
            .execute()
            .expect("valid elastic plans")
            .into_report();
        prop_assert_eq!(report.jobs.len(), trace.len());
        for outcome in &report.jobs {
            prop_assert!(
                outcome.useful_work_milli() >= outcome.job.length.as_minutes() * 1000,
                "{} under-covered", outcome.job.id
            );
            for segment in &outcome.segments {
                prop_assert!(segment.width <= max_width);
            }
        }
        let audit = audit_report(&report, &config, &carbon);
        prop_assert!(audit.is_clean(), "{:?}", audit.violations);
    }

    /// A width-1 ladder is the elasticity-off switch: every slice the
    /// policy emits is serial, and the run is audit-clean.
    #[test]
    fn width_one_ladder_never_widens(
        region_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let trace = section3_workload(seed);
        let carbon = synthesize_region(region(region_idx), 42);
        let config = ClusterConfig::default();
        let profile = ElasticProfile::new(ScalingCurve::amdahl(0.0), 1);
        let mut scheduler = GaiaScheduler::new(
            CarbonScale::new(runner::default_queues(&trace)).with_profile(profile),
        );
        let report = Simulation::new(config, &carbon)
            .runner(&trace, &mut scheduler)
            .execute()
            .expect("valid elastic plans")
            .into_report();
        for outcome in &report.jobs {
            for segment in &outcome.segments {
                prop_assert_eq!(segment.width, 1);
            }
        }
        let audit = audit_report(&report, &config, &carbon);
        prop_assert!(audit.is_clean(), "{:?}", audit.violations);
    }

    /// Single-region placement is the spatial-off switch: for any
    /// region, seed, and policy, the placed run equals the plain run
    /// exactly — outcomes, totals, timeline, and zero transfer.
    #[test]
    fn single_region_placement_equals_plain_run(
        region_idx in 0usize..6,
        seed in 0u64..1000,
        policy_pick in 0u8..2,
    ) {
        let trace = section3_workload(seed);
        let home = region(region_idx);
        let carbon = synthesize_region(home, 42);
        let config = ClusterConfig::default().with_reserved(4);
        let kind = if policy_pick == 1 {
            BasePolicyKind::CarbonTime
        } else {
            BasePolicyKind::NoWait
        };
        let spec = PolicySpec::plain(kind);
        let plain = run_spec_report(spec, &trace, &carbon, config);
        let placed = run_placed(
            spec,
            &trace,
            &[(home, &carbon)],
            &PlacementSpec::single(home),
            config,
        );
        prop_assert!(placed.report.transfer.is_zero());
        prop_assert_eq!(placed.report, plain);
    }

    /// Federated placement over random region pairs covers every job
    /// exactly once and audits clean, including the transfer bill.
    #[test]
    fn federated_placement_audits_clean(
        home_idx in 0usize..6,
        other_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let home = region(home_idx);
        let other = region(other_idx + usize::from(home_idx == other_idx));
        let trace = section3_workload(seed);
        let traces = [(home, synthesize_region(home, 42)), (other, synthesize_region(other, 42))];
        let refs: Vec<_> = traces.iter().map(|(r, t)| (*r, t)).collect();
        let spec = PlacementSpec::federated(home).with_candidates(&[home, other]);
        let config = ClusterConfig::default();
        let placed = run_placed(
            PolicySpec::plain(BasePolicyKind::CarbonTime),
            &trace,
            &refs,
            &spec,
            config,
        );
        prop_assert_eq!(placed.report.jobs.len(), trace.len());
        prop_assert_eq!(
            placed.report.transfer.jobs_moved as usize,
            placed.placement.moved()
        );
        let audit = audit_placed(&placed, &trace, &refs, &spec, &config);
        prop_assert!(audit.is_clean(), "{:?}", audit.violations);
    }
}
