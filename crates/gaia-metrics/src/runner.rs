//! Executes policy specifications against workloads — the glue between
//! the catalog, the simulator, and the summaries.

use gaia_carbon::CarbonTrace;
use gaia_core::catalog::PolicySpec;
use gaia_sim::{ClusterConfig, SimError, SimReport, SimRun, Simulation};
use gaia_workload::{QueueSet, WorkloadTrace};

use crate::Summary;

/// Runs one policy spec and returns the full report.
///
/// Queue-average job lengths are computed from the trace being replayed
/// (the scheduler consulting its historical accounting database, §4.2.1).
pub fn run_spec_report(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
) -> SimReport {
    run_spec_report_with_queues(spec, trace, carbon, config, default_queues(trace))
}

/// Like [`run_spec_report`] but with explicit queue configuration (used
/// by the waiting-time sweeps of Figure 14).
pub fn run_spec_report_with_queues(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
    queues: QueueSet,
) -> SimReport {
    let mut scheduler = spec.build(queues);
    Simulation::new(config, carbon)
        .runner(trace, &mut scheduler)
        .execute()
        .unwrap_or_else(|e| panic!("{e}"))
        .into_report()
}

/// Like [`run_spec_report`] but returns invalid policy decisions as a
/// typed [`SimError`] instead of panicking.
pub fn try_run_spec_report(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
) -> Result<SimReport, SimError> {
    try_run_spec_report_with_queues(spec, trace, carbon, config, default_queues(trace))
}

/// Like [`run_spec_report_with_queues`] but returns invalid policy
/// decisions as a typed [`SimError`] instead of panicking — the variant
/// sweeps use so one malformed cell fails alone.
pub fn try_run_spec_report_with_queues(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
    queues: QueueSet,
) -> Result<SimReport, SimError> {
    let mut scheduler = spec.build(queues);
    Simulation::new(config, carbon)
        .runner(trace, &mut scheduler)
        .execute()
        .map(SimRun::into_report)
}

/// Like [`try_run_spec_report_with_queues`] but emits lifecycle events
/// into `sink` and, when given, phase timings into `profiler`. With
/// [`gaia_sim::NullSink`] this is exactly the untraced variant.
pub fn try_run_spec_report_traced_with_queues<S: gaia_sim::Sink>(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
    queues: QueueSet,
    sink: &mut S,
    profiler: Option<&gaia_sim::Profiler>,
) -> Result<SimReport, SimError> {
    let mut scheduler = spec.build(queues);
    let mut sim = Simulation::new(config, carbon);
    if let Some(profiler) = profiler {
        sim = sim.with_profiler(profiler);
    }
    sim.runner(trace, &mut scheduler)
        .sink(sink)
        .execute()
        .map(SimRun::into_report)
}

/// Runs one policy spec and summarizes it.
pub fn run_spec(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
) -> Summary {
    Summary::of(spec.name(), &run_spec_report(spec, trace, carbon, config))
}

/// Runs a list of specs under identical conditions and returns their
/// summaries in order.
pub fn run_specs(
    specs: &[PolicySpec],
    trace: &WorkloadTrace,
    carbon: &CarbonTrace,
    config: ClusterConfig,
) -> Vec<Summary> {
    specs
        .iter()
        .map(|&spec| run_spec(spec, trace, carbon, config))
        .collect()
}

/// The paper-default queue set with averages learned from `trace`.
pub fn default_queues(trace: &WorkloadTrace) -> QueueSet {
    QueueSet::paper_defaults().with_averages_from(trace.jobs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::catalog::BasePolicyKind;

    fn tiny_setup() -> (WorkloadTrace, CarbonTrace) {
        let trace = gaia_workload::synth::section3_workload(3);
        let carbon = gaia_carbon::CarbonTrace::from_hourly(
            (0..24 * 5)
                .map(|h| 200.0 + 150.0 * ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
                .collect(),
        )
        .expect("valid");
        (trace, carbon)
    }

    #[test]
    fn nowait_baseline_properties() {
        let (trace, carbon) = tiny_setup();
        let summary = run_spec(
            PolicySpec::plain(BasePolicyKind::NoWait),
            &trace,
            &carbon,
            ClusterConfig::default(),
        );
        assert_eq!(summary.mean_wait_hours, 0.0);
        assert_eq!(summary.jobs, trace.len());
        assert!(summary.carbon_g > 0.0);
    }

    #[test]
    fn carbon_aware_policies_save_carbon_with_perfect_forecasts() {
        let (trace, carbon) = tiny_setup();
        let config = ClusterConfig::default();
        let nowait = run_spec(
            PolicySpec::plain(BasePolicyKind::NoWait),
            &trace,
            &carbon,
            config,
        );
        for kind in [
            BasePolicyKind::LowestSlot,
            BasePolicyKind::LowestWindow,
            BasePolicyKind::CarbonTime,
            BasePolicyKind::WaitAwhile,
        ] {
            let run = run_spec(PolicySpec::plain(kind), &trace, &carbon, config);
            assert!(
                run.carbon_g <= nowait.carbon_g * 1.02,
                "{} carbon {} vs NoWait {}",
                kind.name(),
                run.carbon_g,
                nowait.carbon_g
            );
        }
    }

    #[test]
    fn try_runner_surfaces_policy_errors() {
        let (trace, carbon) = tiny_setup();
        let err = try_run_spec_report(
            PolicySpec::plain(BasePolicyKind::BadPlan),
            &trace,
            &carbon,
            ClusterConfig::default(),
        )
        .expect_err("the fault-injection policy must fail");
        assert!(matches!(err, SimError::Policy(_)), "{err}");
        let report = try_run_spec_report(
            PolicySpec::plain(BasePolicyKind::NoWait),
            &trace,
            &carbon,
            ClusterConfig::default(),
        )
        .expect("valid policy");
        assert_eq!(report.jobs.len(), trace.len());
    }

    #[test]
    fn run_specs_preserves_order_and_names() {
        let (trace, carbon) = tiny_setup();
        let specs = vec![
            PolicySpec::plain(BasePolicyKind::NoWait),
            PolicySpec::plain(BasePolicyKind::CarbonTime),
        ];
        let rows = run_specs(&specs, &trace, &carbon, ClusterConfig::default());
        assert_eq!(rows[0].name, "NoWait");
        assert_eq!(rows[1].name, "Carbon-Time");
    }
}
