//! Pareto-frontier extraction over the carbon-cost(-waiting) trade-off
//! space — the "good points" the paper's trade-off analysis highlights
//! (§1: "'good' points in the trade-off where significantly improving
//! one metric has little impact on the others").

use serde::{Deserialize, Serialize};

/// A point in a minimize-everything objective space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeOffPoint {
    /// Carbon (grams or normalized — any consistent unit).
    pub carbon: f64,
    /// Dollar cost.
    pub cost: f64,
    /// Mean waiting, hours.
    pub waiting: f64,
}

impl TradeOffPoint {
    /// Whether `self` dominates `other`: no worse on every objective and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &TradeOffPoint) -> bool {
        let no_worse =
            self.carbon <= other.carbon && self.cost <= other.cost && self.waiting <= other.waiting;
        let strictly_better =
            self.carbon < other.carbon || self.cost < other.cost || self.waiting < other.waiting;
        no_worse && strictly_better
    }
}

/// Returns the indices of the Pareto-optimal points (minimizing all three
/// objectives), in input order. Duplicate points are all retained.
pub fn pareto_front(points: &[TradeOffPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && p.dominates(&points[i]))
        })
        .collect()
}

/// The knee of a two-objective frontier: the point with the largest
/// perpendicular distance to the segment joining the frontier's extreme
/// points — the paper's "waiting for 12 hrs balances carbon and
/// performance" style recommendation (§7). Returns the index into
/// `points`.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn knee_point(points: &[(f64, f64)]) -> usize {
    assert!(!points.is_empty(), "knee of an empty frontier");
    if points.len() <= 2 {
        return 0;
    }
    // Normalize both axes so the knee is scale-invariant.
    let (min_x, max_x) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
    let (min_y, max_y) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
    let sx = (max_x - min_x).max(f64::EPSILON);
    let sy = (max_y - min_y).max(f64::EPSILON);
    let norm: Vec<(f64, f64)> = points
        .iter()
        .map(|p| ((p.0 - min_x) / sx, (p.1 - min_y) / sy))
        .collect();
    let first = norm[0];
    let last = *norm.last().expect("non-empty");
    let (dx, dy) = (last.0 - first.0, last.1 - first.1);
    let len = (dx * dx + dy * dy).sqrt().max(f64::EPSILON);
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, p) in norm.iter().enumerate() {
        let dist = ((p.0 - first.0) * dy - (p.1 - first.1) * dx).abs() / len;
        if dist > best.1 {
            best = (i, dist);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(carbon: f64, cost: f64, waiting: f64) -> TradeOffPoint {
        TradeOffPoint {
            carbon,
            cost,
            waiting,
        }
    }

    #[test]
    fn domination_semantics() {
        assert!(p(1.0, 1.0, 1.0).dominates(&p(2.0, 1.0, 1.0)));
        assert!(
            !p(1.0, 1.0, 1.0).dominates(&p(1.0, 1.0, 1.0)),
            "equal points do not dominate"
        );
        assert!(
            !p(1.0, 2.0, 1.0).dominates(&p(2.0, 1.0, 1.0)),
            "trade-offs do not dominate"
        );
    }

    #[test]
    fn front_filters_dominated_points() {
        let points = vec![
            p(1.0, 3.0, 0.0), // frontier
            p(3.0, 1.0, 0.0), // frontier
            p(2.0, 2.0, 0.0), // frontier (trade-off between the two)
            p(3.0, 3.0, 0.0), // dominated by all of the above
        ];
        assert_eq!(pareto_front(&points), vec![0, 1, 2]);
    }

    #[test]
    fn front_of_single_point() {
        assert_eq!(pareto_front(&[p(1.0, 1.0, 1.0)]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn duplicates_all_survive() {
        let points = vec![p(1.0, 1.0, 1.0), p(1.0, 1.0, 1.0)];
        assert_eq!(pareto_front(&points), vec![0, 1]);
    }

    #[test]
    fn knee_of_an_l_shaped_curve() {
        // Diminishing returns: steep drop then flat tail; the knee is at
        // the bend (index 2).
        let points = vec![
            (0.0, 100.0),
            (1.0, 55.0),
            (2.0, 20.0),
            (12.0, 15.0),
            (24.0, 13.0),
        ];
        assert_eq!(knee_point(&points), 2);
    }

    #[test]
    fn knee_degenerate_cases() {
        assert_eq!(knee_point(&[(1.0, 1.0)]), 0);
        assert_eq!(knee_point(&[(1.0, 1.0), (2.0, 2.0)]), 0);
    }
}
