//! Feeds simulation reports into the [`gaia_obs`] metrics registry.
//!
//! One call per completed run records the counters and log2-bucketed
//! histograms the sweep pipeline snapshots into `metrics.json`. The
//! bucket scheme is fixed (see [`gaia_obs::metrics`]), so the snapshot
//! layout is stable across runs and worker counts.

use gaia_obs::MetricsRegistry;
use gaia_sim::SimReport;

/// Records one run's outcomes into `registry`.
///
/// Counters (`sim.jobs`, `sim.evictions`, `sim.segments`) accumulate
/// across calls; the histograms observe one sample per job — waits and
/// lengths in hours, carbon in grams CO₂eq.
pub fn observe_report(registry: &MetricsRegistry, report: &SimReport) {
    registry.counter("sim.jobs").add(report.totals.jobs as u64);
    registry
        .counter("sim.evictions")
        .add(report.totals.evictions);
    let segments: u64 = report.jobs.iter().map(|j| j.segments.len() as u64).sum();
    registry.counter("sim.segments").add(segments);

    let wait = registry.histogram("sim.wait_hours");
    let length = registry.histogram("sim.job_length_hours");
    let carbon = registry.histogram("sim.carbon_per_job_g");
    for job in &report.jobs {
        wait.observe(job.waiting.as_hours_f64());
        length.observe(job.job.length.as_hours_f64());
        carbon.observe(job.carbon_g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::catalog::{BasePolicyKind, PolicySpec};
    use gaia_sim::ClusterConfig;

    #[test]
    fn observes_jobs_waits_and_carbon() {
        let trace = gaia_workload::synth::section3_workload(1);
        let carbon = gaia_carbon::CarbonTrace::constant(150.0, 24 * 5).expect("valid");
        let report = crate::runner::run_spec_report(
            PolicySpec::plain(BasePolicyKind::CarbonTime),
            &trace,
            &carbon,
            ClusterConfig::default(),
        );
        let registry = MetricsRegistry::new();
        observe_report(&registry, &report);
        assert_eq!(
            registry.counter("sim.jobs").get(),
            report.totals.jobs as u64
        );
        let wait = registry.histogram("sim.wait_hours");
        assert_eq!(wait.count(), report.jobs.len() as u64);
        let report_wait_hours: f64 = report.jobs.iter().map(|j| j.waiting.as_hours_f64()).sum();
        // The histogram stores micro-unit fixed point; match to that
        // resolution (per-observation rounding, so tolerance scales
        // with the number of jobs).
        assert!(
            (wait.sum() - report_wait_hours).abs() < 1e-6 * report.jobs.len() as f64,
            "{} vs {report_wait_hours}",
            wait.sum()
        );
    }

    #[test]
    fn accumulates_across_reports() {
        let trace = gaia_workload::synth::section3_workload(2);
        let carbon = gaia_carbon::CarbonTrace::constant(150.0, 24 * 5).expect("valid");
        let report = crate::runner::run_spec_report(
            PolicySpec::plain(BasePolicyKind::NoWait),
            &trace,
            &carbon,
            ClusterConfig::default(),
        );
        let registry = MetricsRegistry::new();
        observe_report(&registry, &report);
        observe_report(&registry, &report);
        assert_eq!(
            registry.counter("sim.jobs").get(),
            2 * report.totals.jobs as u64
        );
        let length = registry.histogram("sim.job_length_hours");
        assert_eq!(length.count(), 2 * report.jobs.len() as u64);
    }
}
