//! Derived analyses: the Figure 9 CDF, Figure 14's savings-per-wait, and
//! the paper's headline savings-per-cost metric.

use gaia_sim::SimReport;
use gaia_time::Minutes;
use serde::{Deserialize, Serialize};

use crate::Summary;

/// One point of the Figure 9 CDF: the cumulative share of total carbon
/// reduction contributed by jobs up to a given length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Job-length upper bound of this point.
    pub length: Minutes,
    /// Cumulative share of the total carbon reduction in `[0, 1]`.
    pub cumulative_share: f64,
}

/// Computes the CDF of total carbon reduction by job length (Figure 9):
/// jobs are sorted by length, each contributes
/// `carbon_baseline − carbon_policy`, and the running sum is normalized
/// by the total reduction.
///
/// Both reports must come from the same trace (same job ids).
///
/// # Panics
///
/// Panics if the reports have different job counts.
pub fn carbon_reduction_cdf_by_length(baseline: &SimReport, run: &SimReport) -> Vec<CdfPoint> {
    assert_eq!(
        baseline.jobs.len(),
        run.jobs.len(),
        "reports must replay the same trace"
    );
    let mut reductions: Vec<(Minutes, f64)> = baseline
        .jobs
        .iter()
        .zip(&run.jobs)
        .map(|(b, r)| {
            debug_assert_eq!(b.job.id, r.job.id);
            (b.job.length, b.carbon_g - r.carbon_g)
        })
        .collect();
    reductions.sort_by_key(|(len, _)| *len);
    let total: f64 = reductions.iter().map(|(_, d)| d).sum();
    let mut acc = 0.0;
    reductions
        .into_iter()
        .map(|(length, delta)| {
            acc += delta;
            CdfPoint {
                length,
                cumulative_share: if total.abs() > f64::EPSILON {
                    acc / total
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// The share of total carbon reduction contributed by jobs with lengths
/// in `(lo, hi]` — the numbers quoted in §6.2.2 ("50% of the carbon
/// savings come from jobs between 3 and 12 hrs").
pub fn reduction_share_in_length_band(
    baseline: &SimReport,
    run: &SimReport,
    lo: Minutes,
    hi: Minutes,
) -> f64 {
    let mut band = 0.0;
    let mut total = 0.0;
    for (b, r) in baseline.jobs.iter().zip(&run.jobs) {
        let delta = b.carbon_g - r.carbon_g;
        total += delta;
        if b.job.length > lo && b.job.length <= hi {
            band += delta;
        }
    }
    if total.abs() > f64::EPSILON {
        band / total
    } else {
        0.0
    }
}

/// Figure 14's y-axis: percentage carbon saving per hour of mean waiting
/// time. Returns 0 when the run waited no time at all.
pub fn savings_per_wait_hour(baseline: &Summary, run: &Summary) -> f64 {
    if run.mean_wait_hours <= 0.0 || baseline.carbon_g <= 0.0 {
        return 0.0;
    }
    let saving_pct = (1.0 - run.carbon_g / baseline.carbon_g) * 100.0;
    saving_pct / run.mean_wait_hours
}

/// The paper's headline metric: percentage-points of carbon saved per
/// percentage-point of cost increase, both relative to `baseline`.
/// Returns `f64::INFINITY` when the run saves carbon at no extra cost,
/// and 0 when it saves no carbon.
pub fn savings_per_cost_point(baseline: &Summary, run: &Summary) -> f64 {
    if baseline.carbon_g <= 0.0 || baseline.total_cost <= 0.0 {
        return 0.0;
    }
    let saving_pct = (1.0 - run.carbon_g / baseline.carbon_g) * 100.0;
    let cost_pct = (run.total_cost / baseline.total_cost - 1.0) * 100.0;
    if saving_pct <= 0.0 {
        0.0
    } else if cost_pct <= 0.0 {
        f64::INFINITY
    } else {
        saving_pct / cost_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_sim::{ClusterConfig, ClusterTotals, JobOutcome};
    use gaia_time::SimTime;
    use gaia_workload::{Job, JobId};

    fn report(lengths_and_carbon: &[(u64, f64)]) -> SimReport {
        let jobs: Vec<JobOutcome> = lengths_and_carbon
            .iter()
            .enumerate()
            .map(|(i, &(len, carbon))| {
                let job = Job::new(JobId(i as u64), SimTime::ORIGIN, Minutes::new(len), 1);
                JobOutcome {
                    job,
                    first_start: SimTime::ORIGIN,
                    finish: SimTime::from_minutes(len),
                    waiting: Minutes::ZERO,
                    completion: Minutes::new(len),
                    carbon_g: carbon,
                    cost: 0.0,
                    segments: vec![],
                    evictions: 0,
                }
            })
            .collect();
        let totals =
            ClusterTotals::aggregate(&jobs, &ClusterConfig::default(), Minutes::from_days(1));
        SimReport {
            jobs,
            totals,
            timeline: gaia_sim::AllocationTimeline::default(),
            degradation: gaia_sim::DegradationStats::default(),
            transfer: Default::default(),
        }
    }

    #[test]
    fn cdf_orders_by_length_and_reaches_one() {
        let baseline = report(&[(600, 100.0), (60, 50.0), (1200, 80.0)]);
        let run = report(&[(600, 60.0), (60, 45.0), (1200, 75.0)]);
        let cdf = carbon_reduction_cdf_by_length(&baseline, &run);
        // Sorted by length: 60 (Δ5), 600 (Δ40), 1200 (Δ5); total 50.
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].length, Minutes::new(60));
        assert!((cdf[0].cumulative_share - 0.1).abs() < 1e-12);
        assert!((cdf[1].cumulative_share - 0.9).abs() < 1e-12);
        assert!((cdf[2].cumulative_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_of_identical_reports_is_zero() {
        let baseline = report(&[(60, 50.0), (600, 100.0)]);
        let cdf = carbon_reduction_cdf_by_length(&baseline, &baseline);
        assert!(cdf.iter().all(|p| p.cumulative_share == 0.0));
    }

    #[test]
    fn band_share() {
        let baseline = report(&[(60, 100.0), (400, 100.0), (1000, 100.0)]);
        let run = report(&[(60, 90.0), (400, 60.0), (1000, 100.0)]);
        // Reductions: 10, 40, 0; total 50. Band (3h, 12h]: the 400-min job.
        let share = reduction_share_in_length_band(
            &baseline,
            &run,
            Minutes::from_hours(3),
            Minutes::from_hours(12),
        );
        assert!((share - 0.8).abs() < 1e-12);
    }

    #[test]
    fn savings_per_wait() {
        let baseline = Summary {
            name: "NoWait".into(),
            carbon_g: 100.0,
            total_cost: 10.0,
            mean_wait_hours: 0.0,
            mean_completion_hours: 1.0,
            reserved_utilization: 0.0,
            evictions: 0,
            jobs: 1,
        };
        let mut run = baseline.clone();
        run.carbon_g = 80.0;
        run.mean_wait_hours = 4.0;
        // 20% saving over 4 hours of waiting: 5 %/h.
        assert!((savings_per_wait_hour(&baseline, &run) - 5.0).abs() < 1e-12);
        // No waiting -> zero by convention.
        run.mean_wait_hours = 0.0;
        assert_eq!(savings_per_wait_hour(&baseline, &run), 0.0);
    }

    #[test]
    fn savings_per_cost() {
        let baseline = Summary {
            name: "NoWait".into(),
            carbon_g: 100.0,
            total_cost: 100.0,
            mean_wait_hours: 0.0,
            mean_completion_hours: 1.0,
            reserved_utilization: 0.0,
            evictions: 0,
            jobs: 1,
        };
        let mut run = baseline.clone();
        run.carbon_g = 70.0; // 30% saving
        run.total_cost = 115.0; // 15% cost increase
        assert!((savings_per_cost_point(&baseline, &run) - 2.0).abs() < 1e-12);
        run.total_cost = 90.0; // saving carbon *and* money
        assert_eq!(savings_per_cost_point(&baseline, &run), f64::INFINITY);
        run.carbon_g = 120.0; // no saving at all
        assert_eq!(savings_per_cost_point(&baseline, &run), 0.0);
    }

    #[test]
    #[should_panic(expected = "same trace")]
    fn cdf_rejects_mismatched_reports() {
        let a = report(&[(60, 1.0)]);
        let b = report(&[(60, 1.0), (70, 2.0)]);
        let _ = carbon_reduction_cdf_by_length(&a, &b);
    }
}
