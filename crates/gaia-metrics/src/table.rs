//! Aligned text tables for the figure-regeneration binaries.
//!
//! The paper's artifact emits CSV files and plots them in a notebook; our
//! figure binaries print the same rows as readable fixed-width tables
//! (and optionally CSV).

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use gaia_metrics::table::TextTable;
///
/// let mut table = TextTable::new(vec!["policy", "carbon", "cost"]);
/// table.row(vec!["NoWait".into(), "1.00".into(), "0.55".into()]);
/// table.row(vec!["Carbon-Time".into(), "0.72".into(), "1.00".into()]);
/// let rendered = table.to_string();
/// assert!(rendered.contains("Carbon-Time"));
/// assert!(rendered.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a row of formatted floats after a leading label.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| {
            if v.is_infinite() {
                "inf".to_owned()
            } else {
                format!("{v:.3}")
            }
        }));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            writeln!(f, "{}", line.join("  ").trim_end())
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The "value" column starts at the same offset on each data line.
        let offset = lines[2].find('1').expect("value cell");
        assert_eq!(lines[3].find('2').expect("value cell"), offset);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn row_f64_formats() {
        let mut t = TextTable::new(vec!["name", "x", "y"]);
        t.row_f64("p", &[1.23456, f64::INFINITY]);
        assert!(t.to_csv().contains("1.235"));
        assert!(t.to_csv().contains("inf"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_mismatched_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_header() {
        let _ = TextTable::new(Vec::<String>::new());
    }
}
