//! Per-run summaries and the paper's two normalization conventions.

use gaia_sim::SimReport;
use serde::{Deserialize, Serialize};

/// One row of an experiment: the metrics the paper reports for a single
/// (policy, configuration) run.
///
/// # Examples
///
/// ```
/// use gaia_carbon::CarbonTrace;
/// use gaia_core::catalog::{BasePolicyKind, PolicySpec};
/// use gaia_metrics::{runner, Summary};
/// use gaia_sim::ClusterConfig;
/// use gaia_workload::synth::section3_workload;
///
/// let carbon = CarbonTrace::constant(100.0, 24 * 4)?;
/// let trace = section3_workload(1);
/// let summary = runner::run_spec(
///     PolicySpec::plain(BasePolicyKind::NoWait),
///     &trace,
///     &carbon,
///     ClusterConfig::default(),
/// );
/// assert_eq!(summary.mean_wait_hours, 0.0);
/// # Ok::<(), gaia_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Composed policy name (e.g. `"RES-First-Carbon-Time"`).
    pub name: String,
    /// Total carbon, grams CO₂eq.
    pub carbon_g: f64,
    /// Total cost: reserved prepayment plus usage.
    pub total_cost: f64,
    /// Mean per-job waiting time, hours.
    pub mean_wait_hours: f64,
    /// Mean per-job completion time, hours.
    pub mean_completion_hours: f64,
    /// Utilization of reserved capacity in `[0, 1]`.
    pub reserved_utilization: f64,
    /// Total spot evictions.
    pub evictions: u64,
    /// Number of jobs.
    pub jobs: usize,
}

impl Summary {
    /// Summarizes a simulation report under the given display name.
    pub fn of(name: impl Into<String>, report: &SimReport) -> Summary {
        Summary {
            name: name.into(),
            carbon_g: report.totals.carbon_g,
            total_cost: report.totals.total_cost(),
            mean_wait_hours: report.totals.mean_waiting().as_hours_f64(),
            mean_completion_hours: report.totals.mean_completion().as_hours_f64(),
            reserved_utilization: report.totals.reserved_utilization(),
            evictions: report.totals.evictions,
            jobs: report.totals.jobs,
        }
    }

    /// Carbon in kilograms.
    pub fn carbon_kg(&self) -> f64 {
        self.carbon_g / 1000.0
    }
}

/// A summary with each metric normalized into `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSummary {
    /// Composed policy name.
    pub name: String,
    /// Carbon relative to the reference.
    pub carbon: f64,
    /// Cost relative to the reference.
    pub cost: f64,
    /// Mean waiting time relative to the reference.
    pub waiting: f64,
}

/// Normalizes each metric to the **highest value among the rows** — the
/// convention of Figures 8, 10, 13, and 17 ("normalized to the highest
/// value in each metric").
///
/// Metrics whose maximum is zero (e.g. waiting under all-NoWait rows)
/// normalize to zero.
pub fn normalize_to_max(rows: &[Summary]) -> Vec<NormalizedSummary> {
    let max_carbon = rows.iter().map(|r| r.carbon_g).fold(0.0, f64::max);
    let max_cost = rows.iter().map(|r| r.total_cost).fold(0.0, f64::max);
    let max_wait = rows.iter().map(|r| r.mean_wait_hours).fold(0.0, f64::max);
    let norm = |v: f64, max: f64| if max > 0.0 { v / max } else { 0.0 };
    rows.iter()
        .map(|r| NormalizedSummary {
            name: r.name.clone(),
            carbon: norm(r.carbon_g, max_carbon),
            cost: norm(r.total_cost, max_cost),
            waiting: norm(r.mean_wait_hours, max_wait),
        })
        .collect()
}

/// Expresses `run`'s metrics relative to `baseline` (1.0 = equal) — the
/// convention of Figures 11, 15, 16, 18, and 19 ("w.r.t. NoWait
/// execution").
///
/// A baseline metric of zero maps to 1.0 when the run's metric is also
/// zero and `f64::INFINITY` otherwise.
pub fn relative_to(run: &Summary, baseline: &Summary) -> NormalizedSummary {
    let rel = |v: f64, b: f64| {
        if b > 0.0 {
            v / b
        } else if v == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    };
    NormalizedSummary {
        name: run.name.clone(),
        carbon: rel(run.carbon_g, baseline.carbon_g),
        cost: rel(run.total_cost, baseline.total_cost),
        waiting: rel(run.mean_wait_hours, baseline.mean_wait_hours),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(name: &str, carbon: f64, cost: f64, wait: f64) -> Summary {
        Summary {
            name: name.into(),
            carbon_g: carbon,
            total_cost: cost,
            mean_wait_hours: wait,
            mean_completion_hours: wait + 1.0,
            reserved_utilization: 0.5,
            evictions: 0,
            jobs: 10,
        }
    }

    #[test]
    fn normalize_to_max_scales_each_metric() {
        let rows = vec![
            summary("a", 100.0, 10.0, 0.0),
            summary("b", 50.0, 20.0, 4.0),
        ];
        let normalized = normalize_to_max(&rows);
        assert_eq!(normalized[0].carbon, 1.0);
        assert_eq!(normalized[1].carbon, 0.5);
        assert_eq!(normalized[0].cost, 0.5);
        assert_eq!(normalized[1].cost, 1.0);
        assert_eq!(normalized[0].waiting, 0.0);
        assert_eq!(normalized[1].waiting, 1.0);
    }

    #[test]
    fn normalize_handles_all_zero_metric() {
        let rows = vec![summary("a", 10.0, 5.0, 0.0), summary("b", 20.0, 5.0, 0.0)];
        let normalized = normalize_to_max(&rows);
        assert!(normalized.iter().all(|r| r.waiting == 0.0));
    }

    #[test]
    fn relative_to_baseline() {
        let baseline = summary("NoWait", 200.0, 10.0, 0.0);
        let run = summary("Carbon-Time", 150.0, 12.0, 2.0);
        let rel = relative_to(&run, &baseline);
        assert!((rel.carbon - 0.75).abs() < 1e-12);
        assert!((rel.cost - 1.2).abs() < 1e-12);
        assert!(rel.waiting.is_infinite()); // baseline waiting is zero
                                            // Equal zero metrics are 1.0.
        let same = relative_to(&baseline, &baseline);
        assert_eq!(same.waiting, 1.0);
    }

    #[test]
    fn carbon_kg_conversion() {
        assert!((summary("x", 2500.0, 0.0, 0.0).carbon_kg() - 2.5).abs() < 1e-12);
    }
}
