//! Aggregation across random seeds: the paper reports single runs on
//! fixed traces; replicating each experiment across workload seeds lets
//! us attach dispersion to every headline number.

use serde::{Deserialize, Serialize};

use crate::Summary;

/// Mean/dispersion of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of seeds.
    pub n: usize,
}

impl SeedStats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> SeedStats {
        assert!(
            !samples.is_empty(),
            "seed statistics need at least one sample"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        SeedStats {
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }

    /// Coefficient of variation, `std_dev / mean`.
    ///
    /// When the mean is (numerically) zero the ratio is undefined, and
    /// returning 0 would falsely claim the samples have no dispersion.
    /// Instead this returns `f64::INFINITY` — "relative dispersion is
    /// unbounded" — so downstream consumers can detect and handle the
    /// degenerate case explicitly. (JSON writers map it to `null`.)
    pub fn cov(&self) -> f64 {
        if self.mean.abs() > f64::EPSILON {
            self.std_dev / self.mean
        } else {
            f64::INFINITY
        }
    }

    /// Renders as `mean ± std`.
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.std_dev)
    }
}

/// Per-metric seed statistics for one policy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSeedSummary {
    /// Policy name (taken from the first replicate).
    pub name: String,
    /// Total carbon, grams.
    pub carbon_g: SeedStats,
    /// Total cost, dollars.
    pub total_cost: SeedStats,
    /// Mean waiting time, hours.
    pub mean_wait_hours: SeedStats,
}

/// Aggregates replicate runs (one [`Summary`] per seed) of the same
/// policy configuration.
///
/// # Panics
///
/// Panics if `replicates` is empty or mixes policy names.
pub fn across_seeds(replicates: &[Summary]) -> MultiSeedSummary {
    assert!(!replicates.is_empty(), "need at least one replicate");
    let name = replicates[0].name.clone();
    assert!(
        replicates.iter().all(|r| r.name == name),
        "replicates must come from the same policy"
    );
    let collect =
        |f: fn(&Summary) -> f64| SeedStats::of(&replicates.iter().map(f).collect::<Vec<_>>());
    MultiSeedSummary {
        name,
        carbon_g: collect(|r| r.carbon_g),
        total_cost: collect(|r| r.total_cost),
        mean_wait_hours: collect(|r| r.mean_wait_hours),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(name: &str, carbon: f64) -> Summary {
        Summary {
            name: name.into(),
            carbon_g: carbon,
            total_cost: carbon / 10.0,
            mean_wait_hours: 1.0,
            mean_completion_hours: 2.0,
            reserved_utilization: 0.5,
            evictions: 0,
            jobs: 10,
        }
    }

    #[test]
    fn stats_of_known_samples() {
        let s = SeedStats::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.n, 3);
        assert!((s.cov() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = SeedStats::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn zero_mean_cov_is_infinite_not_zero() {
        // Dispersion around a zero mean: claiming cov = 0 here would
        // read as "perfectly stable", the opposite of the truth.
        let spread = SeedStats::of(&[-1.0, 1.0]);
        assert_eq!(spread.mean, 0.0);
        assert!(spread.std_dev > 0.0);
        assert_eq!(spread.cov(), f64::INFINITY);
        // Degenerate all-zero samples land in the same branch.
        assert_eq!(SeedStats::of(&[0.0, 0.0]).cov(), f64::INFINITY);
    }

    #[test]
    fn display_formats() {
        let s = SeedStats::of(&[1.0, 2.0]);
        assert_eq!(s.display(2), "1.50 ± 0.71");
    }

    #[test]
    fn across_seeds_aggregates_each_metric() {
        let agg = across_seeds(&[summary("CT", 100.0), summary("CT", 120.0)]);
        assert_eq!(agg.name, "CT");
        assert_eq!(agg.carbon_g.mean, 110.0);
        assert_eq!(agg.total_cost.mean, 11.0);
        assert_eq!(agg.mean_wait_hours.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "same policy")]
    fn rejects_mixed_policies() {
        let _ = across_seeds(&[summary("A", 1.0), summary("B", 2.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = across_seeds(&[]);
    }
}
