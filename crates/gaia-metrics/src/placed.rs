//! Multi-region placement: running one workload across several regions'
//! carbon traces, with data-transfer penalties.
//!
//! The temporal policies in `gaia-core` decide *when* a job runs inside
//! one region; [`run_placed`] adds the spatial axis studied by the
//! paper's §7 discussion. Each job's input data lives in a **home**
//! region ([`PlacementSpec::home`]); before the simulation, a greedy
//! scorer assigns every job to the candidate region whose forecast
//! minimizes the job's estimated carbon — execution carbon over the
//! greenest length-`J` window reachable within the job's waiting budget,
//! plus the network carbon of shipping its data there
//! ([`gaia_core::placement::TransferModel::penalty`]). The workload is then partitioned, each
//! region runs an ordinary single-region simulation under the same
//! policy spec, and the per-region reports are merged back into one
//! [`SimReport`] whose [`TransferStats`] carries the movement bill.
//!
//! ## Semantics
//!
//! * A moved job's **arrival is delayed** by the transfer latency in its
//!   destination region (the data must arrive first), and that latency
//!   is charged to its merged `waiting`/`completion` (the identity
//!   `completion = waiting + length` still holds for plain runs).
//! * Transfer **dollars and network carbon are kept out of** per-job and
//!   cluster accounting — they surface only in
//!   [`SimReport::transfer`] — so every per-region report stays exactly
//!   auditable against its own carbon trace.
//! * The merged totals are the field-wise sum of the per-region totals:
//!   each active region prepays its own reserved pool, so
//!   `cost_reserved_prepaid` counts once per region that ran jobs.
//! * Under [`PlacementSpec::single`] the placed run degenerates to a
//!   plain [`run_spec_report`](crate::runner::run_spec_report) and the
//!   merged report is **identical** to it, byte for byte.

use gaia_carbon::{CarbonTrace, ForecastIndex, Region};
use gaia_core::catalog::PolicySpec;
use gaia_core::placement::{Placement, PlacementSpec};
use gaia_sim::{
    audit_report, AllocationTimeline, AuditInvariant, AuditReport, AuditViolation, ClusterConfig,
    ClusterTotals, JobOutcome, SimError, SimReport, TransferStats,
};
use gaia_time::Minutes;
use gaia_workload::{Job, QueueSet, WorkloadTrace};

use crate::runner::{default_queues, try_run_spec_report_with_queues};

/// One region's share of a placed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRun {
    /// The region this share ran in.
    pub region: Region,
    /// The ordinary single-region report for the share, self-consistent
    /// against this region's carbon trace (arrivals already include any
    /// transfer latency).
    pub report: SimReport,
    /// Original (whole-workload) dense job ids, indexed by this share's
    /// local job id.
    pub job_ids: Vec<usize>,
}

/// The result of a multi-region placed run.
///
/// # Examples
///
/// ```
/// use gaia_carbon::{synth::synthesize_region, Region};
/// use gaia_core::catalog::{BasePolicyKind, PolicySpec};
/// use gaia_core::placement::PlacementSpec;
/// use gaia_metrics::placed::run_placed;
/// use gaia_sim::ClusterConfig;
/// use gaia_workload::synth::TraceFamily;
///
/// let trace = TraceFamily::AlibabaPai.week_long_1k(42);
/// let traces: Vec<_> = [Region::California, Region::Ontario]
///     .into_iter()
///     .map(|r| (r, synthesize_region(r, 42)))
///     .collect();
/// let refs: Vec<_> = traces.iter().map(|(r, t)| (*r, t)).collect();
/// let spec = PlacementSpec::federated(Region::California)
///     .with_candidates(&[Region::California, Region::Ontario]);
/// let placed = run_placed(
///     PolicySpec::plain(BasePolicyKind::CarbonTime),
///     &trace,
///     &refs,
///     &spec,
///     ClusterConfig::default(),
/// );
/// assert_eq!(placed.report.jobs.len(), trace.len());
/// assert_eq!(placed.report.transfer.jobs_moved as usize, placed.placement.moved());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedReport {
    /// The per-job region assignment chosen by the scorer.
    pub placement: Placement,
    /// Per-region runs, in candidate order; regions that received no
    /// jobs are omitted.
    pub regions: Vec<RegionRun>,
    /// The merged whole-workload view: outcomes back in original job-id
    /// order with transfer latency charged to waiting/completion, summed
    /// totals and timeline, and [`SimReport::transfer`] populated.
    pub report: SimReport,
}

/// Runs `spec` over `trace` placed across regions, panicking on invalid
/// policy decisions (the placed analogue of
/// [`run_spec_report`](crate::runner::run_spec_report)).
///
/// `traces` must contain a carbon trace for every candidate region in
/// `placement` (extra entries are ignored).
///
/// # Panics
///
/// Panics if a candidate region has no carbon trace in `traces`, or if
/// the policy makes an invalid decision.
pub fn run_placed(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    traces: &[(Region, &CarbonTrace)],
    placement: &PlacementSpec,
    config: ClusterConfig,
) -> PlacedReport {
    try_run_placed(spec, trace, traces, placement, config).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_placed`] returning invalid policy decisions as a typed
/// [`SimError`] instead of panicking.
///
/// # Panics
///
/// Panics if a candidate region has no carbon trace in `traces` (a
/// configuration error, not a simulation outcome).
pub fn try_run_placed(
    spec: PolicySpec,
    trace: &WorkloadTrace,
    traces: &[(Region, &CarbonTrace)],
    placement: &PlacementSpec,
    config: ClusterConfig,
) -> Result<PlacedReport, SimError> {
    let queues = default_queues(trace);
    let assignment = assign_regions(trace, traces, placement, &queues, &config);

    let mut regions = Vec::new();
    for &candidate in &placement.candidates {
        let job_ids: Vec<usize> = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == candidate)
            .map(|(i, _)| i)
            .collect();
        if job_ids.is_empty() {
            continue;
        }
        let latency = placement.model.latency(placement.home, candidate);
        // Jobs are in arrival order already (dense submission-ordered
        // ids) and the latency shift is uniform per region, so the
        // stable re-sort in `from_jobs` preserves this order and local
        // id `i` maps back to `job_ids[i]`.
        let shifted: Vec<Job> = job_ids
            .iter()
            .map(|&i| {
                let job = trace.jobs()[i];
                Job::new(job.id, job.arrival + latency, job.length, job.cpus)
            })
            .collect();
        let region_trace = WorkloadTrace::from_jobs(shifted);
        let carbon = trace_for(traces, candidate);
        let report = try_run_spec_report_with_queues(spec, &region_trace, carbon, config, queues)?;
        regions.push(RegionRun {
            region: candidate,
            report,
            job_ids,
        });
    }

    let placement_result = Placement {
        regions: assignment,
        home: placement.home,
    };
    let report = merge(trace, placement, &placement_result, &regions, &config);
    Ok(PlacedReport {
        placement: placement_result,
        regions,
        report,
    })
}

/// Scores every job against every candidate region and returns the
/// per-job assignment (indexed by dense job id).
///
/// The score of running `job` in region `r` is the CI integral of the
/// greenest length-`J` window starting within the job's waiting budget
/// after its (latency-shifted) arrival, converted to grams through the
/// cluster's energy model, plus the network carbon of the move. Ties
/// keep the earlier candidate, so a flat score surface stays home.
fn assign_regions(
    trace: &WorkloadTrace,
    traces: &[(Region, &CarbonTrace)],
    placement: &PlacementSpec,
    queues: &QueueSet,
    config: &ClusterConfig,
) -> Vec<Region> {
    let indexes: Vec<(Region, ForecastIndex<'_>)> = placement
        .candidates
        .iter()
        .map(|&r| (r, ForecastIndex::new(trace_for(traces, r))))
        .collect();
    trace
        .jobs()
        .iter()
        .map(|job| {
            let budget = queues.max_wait_for(job);
            let mut best: Option<(f64, Region)> = None;
            for (region, index) in &indexes {
                let penalty = placement.model.penalty(job, placement.home, *region);
                let earliest = job.arrival + penalty.latency;
                let mut integral = f64::INFINITY;
                let mut offset = Minutes::ZERO;
                loop {
                    let candidate = index.window_integral(earliest + offset, job.length);
                    if candidate < integral {
                        integral = candidate;
                    }
                    if offset >= budget {
                        break;
                    }
                    offset = (offset + Minutes::from_hours(1)).min(budget);
                }
                let grams =
                    integral * config.energy.kw_per_cpu * f64::from(job.cpus) + penalty.carbon_g;
                if best.is_none_or(|(b, _)| grams < b) {
                    best = Some((grams, *region));
                }
            }
            best.expect("placement specs always have at least one candidate")
                .1
        })
        .collect()
}

/// Merges per-region runs back into one whole-workload report.
fn merge(
    trace: &WorkloadTrace,
    spec: &PlacementSpec,
    placement: &Placement,
    regions: &[RegionRun],
    config: &ClusterConfig,
) -> SimReport {
    let mut jobs: Vec<Option<JobOutcome>> = vec![None; trace.len()];
    for run in regions {
        let latency = spec.model.latency(spec.home, run.region);
        for (local, outcome) in run.report.jobs.iter().enumerate() {
            let original = run.job_ids[local];
            let mut merged = outcome.clone();
            // Restore the submission-time identity of the job; the
            // transfer latency the region run folded into the arrival
            // becomes observable waiting.
            merged.job = trace.jobs()[original];
            merged.waiting += latency;
            merged.completion += latency;
            jobs[original] = Some(merged);
        }
    }
    let jobs: Vec<JobOutcome> = jobs
        .into_iter()
        .map(|o| o.expect("every job is assigned to exactly one region"))
        .collect();

    let mut totals = ClusterTotals {
        carbon_g: 0.0,
        cost_reserved_prepaid: 0.0,
        cost_on_demand: 0.0,
        cost_spot: 0.0,
        total_waiting: Minutes::ZERO,
        total_completion: Minutes::ZERO,
        reserved_cpu_hours: 0.0,
        on_demand_cpu_hours: 0.0,
        spot_cpu_hours: 0.0,
        evictions: 0,
        jobs: 0,
        billing_horizon: Minutes::ZERO,
        reserved_capacity: config.reserved_cpus,
    };
    let mut timeline = AllocationTimeline::default();
    for run in regions {
        let t = &run.report.totals;
        totals.carbon_g += t.carbon_g;
        totals.cost_reserved_prepaid += t.cost_reserved_prepaid;
        totals.cost_on_demand += t.cost_on_demand;
        totals.cost_spot += t.cost_spot;
        totals.reserved_cpu_hours += t.reserved_cpu_hours;
        totals.on_demand_cpu_hours += t.on_demand_cpu_hours;
        totals.spot_cpu_hours += t.spot_cpu_hours;
        totals.evictions += t.evictions;
        totals.jobs += t.jobs;
        totals.billing_horizon = totals.billing_horizon.max(t.billing_horizon);
        extend_lanes(&mut timeline, &run.report.timeline);
    }
    // Waiting/completion sums come from the merged outcomes so the
    // latency charge is included.
    for outcome in &jobs {
        totals.total_waiting += outcome.waiting;
        totals.total_completion += outcome.completion;
    }

    SimReport {
        jobs,
        totals,
        timeline,
        degradation: Default::default(),
        transfer: transfer_stats(trace, spec, placement),
    }
}

/// Element-wise sum of two timelines, padding to the longer horizon.
fn extend_lanes(into: &mut AllocationTimeline, from: &AllocationTimeline) {
    fn add(into: &mut Vec<f64>, from: &[f64]) {
        if into.len() < from.len() {
            into.resize(from.len(), 0.0);
        }
        for (slot, value) in into.iter_mut().zip(from) {
            *slot += value;
        }
    }
    add(&mut into.reserved, &from.reserved);
    add(&mut into.on_demand, &from.on_demand);
    add(&mut into.spot, &from.spot);
}

/// Recomputes the transfer bill of `placement` from first principles.
///
/// Used both to populate [`SimReport::transfer`] and, independently, by
/// [`audit_placed`] to cross-check it.
pub fn transfer_stats(
    trace: &WorkloadTrace,
    spec: &PlacementSpec,
    placement: &Placement,
) -> TransferStats {
    let mut stats = TransferStats::default();
    for (job, &region) in trace.jobs().iter().zip(&placement.regions) {
        if region == spec.home {
            continue;
        }
        let penalty = spec.model.penalty(job, spec.home, region);
        stats.jobs_moved += 1;
        stats.gigabytes += penalty.gigabytes;
        stats.cost += penalty.cost;
        stats.carbon_g += penalty.carbon_g;
        stats.latency_minutes += penalty.latency.as_minutes();
    }
    stats
}

/// Audits a placed run: every per-region report against its own carbon
/// trace (all five invariant families), plus placed-level consistency —
/// the merged [`TransferStats`] must equal their independent
/// recomputation from the assignment, and every job must appear in
/// exactly one region.
///
/// The merged report itself is a cross-region *view* (its prepaid
/// reserved cost counts one pool per active region), so it is checked
/// here rather than fed to [`audit_report`] directly.
pub fn audit_placed(
    placed: &PlacedReport,
    trace: &WorkloadTrace,
    traces: &[(Region, &CarbonTrace)],
    spec: &PlacementSpec,
    config: &ClusterConfig,
) -> AuditReport {
    let mut out = AuditReport::default();
    for run in &placed.regions {
        let regional = audit_report(&run.report, config, trace_for(traces, run.region));
        out.checks_run += regional.checks_run;
        out.violations.extend(regional.violations);
    }

    out.checks_run += 1;
    let expected = transfer_stats(trace, spec, &placed.placement);
    if placed.report.transfer != expected {
        out.violations.push(AuditViolation {
            invariant: AuditInvariant::Accounting,
            job: None,
            detail: format!(
                "merged transfer stats {:?} != recomputed {:?}",
                placed.report.transfer, expected
            ),
        });
    }

    out.checks_run += 1;
    let placed_jobs: usize = placed.regions.iter().map(|r| r.job_ids.len()).sum();
    if placed_jobs != trace.len() || placed.report.jobs.len() != trace.len() {
        out.violations.push(AuditViolation {
            invariant: AuditInvariant::Accounting,
            job: None,
            detail: format!(
                "placed {placed_jobs} jobs across regions, merged {}, trace has {}",
                placed.report.jobs.len(),
                trace.len()
            ),
        });
    }
    out
}

fn trace_for<'t>(traces: &[(Region, &'t CarbonTrace)], region: Region) -> &'t CarbonTrace {
    traces
        .iter()
        .find(|(r, _)| *r == region)
        .unwrap_or_else(|| panic!("no carbon trace supplied for candidate region {region}"))
        .1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_spec_report;
    use gaia_carbon::synth::synthesize_region;
    use gaia_core::catalog::BasePolicyKind;
    use gaia_workload::synth::TraceFamily;

    fn week_trace() -> WorkloadTrace {
        TraceFamily::AlibabaPai.week_long_1k(42)
    }

    #[test]
    fn single_region_placement_is_byte_identical_to_a_plain_run() {
        let trace = week_trace();
        let config = ClusterConfig::default().with_reserved(9);
        for kind in [BasePolicyKind::CarbonTime, BasePolicyKind::NoWait] {
            let spec = PolicySpec::plain(kind);
            for region in [Region::California, Region::SouthAustralia] {
                let carbon = synthesize_region(region, 42);
                let plain = run_spec_report(spec, &trace, &carbon, config);
                let placed = run_placed(
                    spec,
                    &trace,
                    &[(region, &carbon)],
                    &PlacementSpec::single(region),
                    config,
                );
                assert_eq!(placed.placement.moved(), 0);
                assert!(placed.report.transfer.is_zero());
                assert_eq!(
                    placed.report, plain,
                    "single-region placed run must equal the plain run exactly"
                );
            }
        }
    }

    #[test]
    fn federated_placement_covers_every_job_exactly_once() {
        let trace = week_trace();
        let traces: Vec<_> = [Region::SouthAustralia, Region::California, Region::Ontario]
            .into_iter()
            .map(|r| (r, synthesize_region(r, 42)))
            .collect();
        let refs: Vec<_> = traces.iter().map(|(r, t)| (*r, t)).collect();
        let spec = PlacementSpec::federated(Region::California).with_candidates(&[
            Region::California,
            Region::SouthAustralia,
            Region::Ontario,
        ]);
        let config = ClusterConfig::default().with_reserved(9);
        let placed = run_placed(
            PolicySpec::plain(BasePolicyKind::CarbonTime),
            &trace,
            &refs,
            &spec,
            config,
        );
        assert_eq!(placed.report.jobs.len(), trace.len());
        for (i, outcome) in placed.report.jobs.iter().enumerate() {
            assert_eq!(outcome.job.id.0 as usize, i);
            assert_eq!(outcome.job.arrival, trace.jobs()[i].arrival);
            assert_eq!(
                outcome.completion,
                outcome.waiting + outcome.job.length,
                "the paper's timing identity survives the latency charge"
            );
        }
        let audit = audit_placed(&placed, &trace, &refs, &spec, &config);
        assert!(audit.is_clean(), "{:?}", audit.violations);
        assert!(audit.checks_run > 2);
    }

    #[test]
    fn moves_happen_only_when_they_pay_and_are_billed() {
        let trace = week_trace();
        let home = Region::Kentucky; // coal-heavy: moves should pay off
        let traces: Vec<_> = [home, Region::Sweden]
            .into_iter()
            .map(|r| (r, synthesize_region(r, 42)))
            .collect();
        let refs: Vec<_> = traces.iter().map(|(r, t)| (*r, t)).collect();
        let spec = PlacementSpec::federated(home).with_candidates(&[home, Region::Sweden]);
        let config = ClusterConfig::default().with_reserved(9);
        let placed = run_placed(
            PolicySpec::plain(BasePolicyKind::CarbonTime),
            &trace,
            &refs,
            &spec,
            config,
        );
        assert!(
            placed.placement.moved() > 0,
            "hydro-rich Sweden should attract jobs away from Kentucky"
        );
        let stats = &placed.report.transfer;
        assert_eq!(stats.jobs_moved as usize, placed.placement.moved());
        assert!(stats.gigabytes > 0.0 && stats.cost > 0.0 && stats.carbon_g > 0.0);
        let plain = run_spec_report(
            PolicySpec::plain(BasePolicyKind::CarbonTime),
            &trace,
            refs[0].1,
            config,
        );
        assert!(
            placed.report.totals.carbon_g + stats.carbon_g < plain.totals.carbon_g,
            "placement must cut carbon even after paying for the network"
        );
    }

    #[test]
    fn audit_catches_tampered_transfer_stats() {
        let trace = week_trace();
        let traces: Vec<_> = [Region::California, Region::Sweden]
            .into_iter()
            .map(|r| (r, synthesize_region(r, 42)))
            .collect();
        let refs: Vec<_> = traces.iter().map(|(r, t)| (*r, t)).collect();
        let spec = PlacementSpec::federated(Region::California)
            .with_candidates(&[Region::California, Region::Sweden]);
        let config = ClusterConfig::default();
        let mut placed = run_placed(
            PolicySpec::plain(BasePolicyKind::NoWait),
            &trace,
            &refs,
            &spec,
            config,
        );
        placed.report.transfer.cost += 1.0;
        let audit = audit_placed(&placed, &trace, &refs, &spec, &config);
        assert!(!audit.is_clean(), "tampered transfer stats must be caught");
    }
}
