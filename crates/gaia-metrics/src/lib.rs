//! Result aggregation and figure formatting for GAIA experiments.
//!
//! The paper's evaluation reports three families of quantities, all
//! provided here:
//!
//! * [`Summary`] — one row per (policy, configuration) run: total carbon,
//!   total cost (prepaid + usage), mean waiting and completion times,
//!   reserved utilization;
//! * normalization helpers ([`normalize_to_max`], [`relative_to`]) —
//!   the paper's figures plot metrics normalized either to the highest
//!   value among policies (Figures 8, 10, 13, 17) or relative to the
//!   NoWait baseline (Figures 11, 15, 16, 18, 19);
//! * analysis helpers — the carbon-reduction CDF by job length
//!   (Figure 9), carbon savings per waiting hour (Figure 14), and the
//!   headline *carbon savings per percentage cost increase* metric.
//!
//! [`runner`] executes a [`PolicySpec`](gaia_core::catalog::PolicySpec)
//! against a workload and carbon trace, and [`table::TextTable`] renders
//! aligned text tables that the figure binaries print.
//!
//! # Example
//!
//! Run two policies on a synthetic week and normalize the results the
//! way paper Figure 8 does:
//!
//! ```
//! use gaia_carbon::{synth::synthesize_region, Region};
//! use gaia_core::catalog::{BasePolicyKind, PolicySpec};
//! use gaia_metrics::{normalize_to_max, runner};
//! use gaia_sim::ClusterConfig;
//! use gaia_workload::synth::TraceFamily;
//!
//! let carbon = synthesize_region(Region::SouthAustralia, 42);
//! let trace = TraceFamily::AlibabaPai.week_long_1k(42);
//! let specs = [
//!     PolicySpec::plain(BasePolicyKind::NoWait),
//!     PolicySpec::plain(BasePolicyKind::CarbonTime),
//! ];
//! let rows = runner::run_specs(&specs, &trace, &carbon, ClusterConfig::default());
//! let normalized = normalize_to_max(&rows);
//! assert!(normalized[1].carbon <= normalized[0].carbon, "Carbon-Time emits less");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod frontier;
mod multiseed;
pub mod observe;
pub mod placed;
pub mod runner;
mod summary;
pub mod table;

pub use analysis::{
    carbon_reduction_cdf_by_length, reduction_share_in_length_band, savings_per_cost_point,
    savings_per_wait_hour, CdfPoint,
};
pub use frontier::{knee_point, pareto_front, TradeOffPoint};
pub use multiseed::{across_seeds, MultiSeedSummary, SeedStats};
pub use summary::{normalize_to_max, relative_to, NormalizedSummary, Summary};
