//! The sweep-determinism contract: parallelism changes wall-clock time,
//! never results.
//!
//! Two layers of evidence:
//!
//! * an acceptance-style integration test on the ISSUE's reference grid
//!   (4 policies × 3 regions × 2 seeds = 24 scenarios) byte-comparing
//!   the result-store artifacts of a 1-worker and a 4-worker run;
//! * a property test over randomly drawn grids comparing merged
//!   summaries and serialized artifacts between 1 worker and 4+ workers.

use std::fs;
use std::path::PathBuf;

use gaia_carbon::Region;
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_sweep::{store, Executor, ResultStore, SweepGrid, TraceCache};
use proptest::prelude::*;

/// A unique scratch directory under the target dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gaia-sweep-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn read(dir: &std::path::Path, run: &str, file: &str) -> Vec<u8> {
    fs::read(dir.join(run).join(file)).unwrap_or_else(|e| panic!("read {run}/{file}: {e}"))
}

/// The acceptance-criteria grid: 4 policies × 3 regions × 2 seeds.
fn reference_grid() -> SweepGrid {
    SweepGrid::week(9)
        .policies(vec![
            PolicySpec::plain(BasePolicyKind::NoWait),
            PolicySpec::plain(BasePolicyKind::LowestSlot),
            PolicySpec::plain(BasePolicyKind::LowestWindow),
            PolicySpec::plain(BasePolicyKind::CarbonTime),
        ])
        .regions(vec![
            Region::SouthAustralia,
            Region::California,
            Region::Ontario,
        ])
        .seeds(vec![42, 43])
}

#[test]
fn reference_grid_artifacts_are_byte_identical_across_worker_counts() {
    let grid = reference_grid();
    assert_eq!(grid.len(), 24, "4 policies x 3 regions x 2 seeds");

    let serial = grid
        .runner()
        .executor(&Executor::new(1).with_progress(false))
        .execute()
        .expect("in-memory sweep");
    let parallel = grid
        .runner()
        .executor(&Executor::new(4).with_progress(false))
        .execute()
        .expect("in-memory sweep");
    assert_eq!(serial.results, parallel.results, "merged results identical");

    let scratch = Scratch::new("reference");
    ResultStore::create(&scratch.0, "w1")
        .and_then(|s| s.write(&serial, None))
        .expect("write serial artifacts");
    ResultStore::create(&scratch.0, "w4")
        .and_then(|s| s.write(&parallel, None))
        .expect("write parallel artifacts");

    for file in ["scenarios.csv", "aggregate.csv", "aggregate.json"] {
        let a = read(&scratch.0, "w1", file);
        let b = read(&scratch.0, "w4", file);
        assert_eq!(a, b, "{file} must be byte-identical for 1 vs 4 workers");
        assert!(!a.is_empty(), "{file} has content");
    }
    // The manifest is exempt (wall-clock, worker count) but must exist
    // and record the right worker counts.
    let manifest = String::from_utf8(read(&scratch.0, "w4", "manifest.json")).unwrap();
    assert!(
        manifest.contains("\"workers\": 4"),
        "manifest records workers: {manifest}"
    );
    assert!(manifest.contains("\"scenario_count\": 24"));
}

#[test]
fn observed_reference_grid_is_worker_count_invariant() {
    let grid = reference_grid();
    let scratch = Scratch::new("observed");

    // One observed run per worker count, each with its own registry,
    // trace dir, and store.
    let mut metrics_files = Vec::new();
    for workers in [1usize, 4] {
        let run_name = format!("w{workers}");
        let registry = gaia_obs::MetricsRegistry::new();
        let trace_dir = scratch.0.join(format!("traces-{workers}"));
        let hooks = gaia_sweep::ObsHooks {
            metrics: Some(&registry),
            trace_dir: Some(&trace_dir),
            ..Default::default()
        };
        let run = grid
            .runner()
            .executor(&Executor::new(workers).with_progress(false))
            .audit(true)
            .obs(&hooks)
            .execute()
            .expect("observed sweep runs");
        assert!(run.is_clean());

        // The ISSUE's expected cache behaviour: 6 carbon (3 regions ×
        // 2 seeds) + 2 workload (2 seeds) generations, the other 40 of
        // the 48 lookups hit — for ANY worker count.
        assert_eq!(run.cache_stats.misses, 8, "workers={workers}");
        assert_eq!(run.cache_stats.hits, 40, "workers={workers}");
        assert_eq!(run.cache_stats.entries, 8, "workers={workers}");
        assert_eq!(registry.counter("cache.misses").get(), 8);
        assert_eq!(registry.counter("cache.hits").get(), 40);
        assert_eq!(registry.counter("sweep.cells").get(), 24);

        let store = ResultStore::create(&scratch.0, &run_name).expect("store");
        store
            .write_observed(&run, None, Some(&registry), None)
            .expect("write artifacts");
        metrics_files.push(read(&scratch.0, &run_name, "metrics.json"));
    }

    // metrics.json is a deterministic artifact: byte-identical across
    // worker counts.
    assert_eq!(
        metrics_files[0], metrics_files[1],
        "metrics.json must be byte-identical for 1 vs 4 workers"
    );
    assert!(!metrics_files[0].is_empty());

    // Every per-cell trace file is byte-identical across worker counts.
    for cell in grid.scenarios() {
        let name = gaia_sweep::ObsHooks::trace_file_name(&cell.key());
        let a = fs::read(scratch.0.join("traces-1").join(&name))
            .unwrap_or_else(|e| panic!("read traces-1/{name}: {e}"));
        let b = fs::read(scratch.0.join("traces-4").join(&name))
            .unwrap_or_else(|e| panic!("read traces-4/{name}: {e}"));
        assert_eq!(a, b, "{name} must be byte-identical for 1 vs 4 workers");
        assert!(!a.is_empty(), "{name} has events");
    }
}

#[test]
fn reference_grid_audits_with_zero_violations() {
    let grid = reference_grid();
    let run = grid
        .runner()
        .executor(&Executor::new(4).with_progress(false))
        .audit(true)
        .execute()
        .expect("in-memory sweep");
    assert!(run.audited);
    assert!(run.failed_cells().is_empty(), "every cell completes");
    assert_eq!(
        run.audit_violations(),
        0,
        "the reference grid must audit clean: {:?}",
        run.results
            .iter()
            .filter(|r| r.audit_violations() > 0)
            .map(|r| &r.key)
            .collect::<Vec<_>>()
    );
    for result in &run.results {
        let audit = result.audit().expect("audit report per cell");
        assert!(
            audit.checks_run > 0,
            "checks actually ran for {}",
            result.key
        );
    }
}

#[test]
fn scenarios_csv_has_one_row_per_cell_in_grid_order() {
    let grid = reference_grid();
    let run = grid
        .runner()
        .executor(&Executor::new(2).with_progress(false))
        .execute()
        .expect("in-memory sweep");
    let csv = store::scenarios_csv(&run);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 24, "header + 24 rows");
    for (line, cell) in lines[1..].iter().zip(grid.scenarios()) {
        assert!(
            line.starts_with(&format!("{},", cell.key())),
            "row order follows grid order: {line}"
        );
    }
}

/// Strategy pieces for the property test: small random grids that stay
/// cheap enough to simulate dozens of times.
fn policy_pool() -> Vec<PolicySpec> {
    vec![
        PolicySpec::plain(BasePolicyKind::NoWait),
        PolicySpec::plain(BasePolicyKind::LowestSlot),
        PolicySpec::plain(BasePolicyKind::LowestWindow),
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        PolicySpec::plain(BasePolicyKind::WaitAwhile),
    ]
}

fn region_pool() -> Vec<Region> {
    vec![Region::SouthAustralia, Region::California, Region::Ontario]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    fn any_grid_is_worker_count_invariant(
        policy_lo in 0usize..4,
        policy_n in 1usize..3,
        region_idx in 0usize..3,
        seed_base in 0u64..1000,
        seed_n in 1usize..3,
        extra_workers in 4usize..9,
    ) {
        let policies: Vec<PolicySpec> =
            policy_pool()[policy_lo..policy_lo + policy_n].to_vec();
        let seeds: Vec<u64> = (seed_base..seed_base + seed_n as u64).collect();
        let grid = SweepGrid::week(9)
            .policies(policies)
            .regions(vec![region_pool()[region_idx]])
            .seeds(seeds);

        let serial = grid
            .runner()
            .executor(&Executor::new(1).with_progress(false))
            .execute()
            .expect("in-memory sweep");
        let parallel = grid
            .runner()
            .executor(&Executor::new(extra_workers).with_progress(false))
            .execute()
            .expect("in-memory sweep");

        // Merged summaries identical cell by cell...
        prop_assert_eq!(&serial.results, &parallel.results);
        // ...and every deterministic artifact serializes identically.
        prop_assert_eq!(
            store::scenarios_csv(&serial),
            store::scenarios_csv(&parallel)
        );
        let groups_serial = gaia_sweep::across_seed_groups(&serial);
        let groups_parallel = gaia_sweep::across_seed_groups(&parallel);
        prop_assert_eq!(
            store::aggregate_csv(&groups_serial),
            store::aggregate_csv(&groups_parallel)
        );
        prop_assert_eq!(
            store::aggregate_json(&groups_serial),
            store::aggregate_json(&groups_parallel)
        );
    }

    fn trace_cache_sharing_does_not_change_results(
        seed in 0u64..500,
        workers in 2usize..6,
    ) {
        // A fresh cache per run vs one cache shared across both runs:
        // the memoization must be observationally transparent.
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![seed]);
        let fresh = grid
            .runner()
            .executor(&Executor::new(workers).with_progress(false))
            .execute()
            .expect("in-memory sweep");
        let shared_cache = TraceCache::new();
        let first = grid
            .runner()
            .executor(&Executor::new(workers).with_progress(false))
            .cache(&shared_cache)
            .execute()
            .expect("in-memory sweep");
        let second = grid
            .runner()
            .executor(&Executor::new(1).with_progress(false))
            .cache(&shared_cache)
            .execute()
            .expect("in-memory sweep");
        prop_assert_eq!(&fresh.results, &first.results);
        prop_assert_eq!(&first.results, &second.results);
        // The second pass over a warm cache generates nothing.
        prop_assert_eq!(second.cache_stats.misses, 0);
    }
}
