//! The shard-count and resume contracts: splitting a sweep across
//! processes, or interrupting and resuming it over the on-disk result
//! cache, changes wall-clock time — never bytes.
//!
//! Three layers of evidence:
//!
//! * an acceptance-style test on the reference grid (4 policies × 3
//!   regions × 2 seeds = 24 cells) merging {1, 2, 4, 7}-way sharded
//!   runs and byte-comparing every deterministic artifact — CSVs,
//!   aggregate JSON, metrics snapshot, per-cell traces — against a
//!   single-process run;
//! * property tests over random grids × shard counts, and over random
//!   surviving-cache-entry subsets (a model of arbitrary kill points);
//! * corruption recovery: a truncated or garbage cache entry is a
//!   miss, never an error or a wrong result.

use std::fs;
use std::path::{Path, PathBuf};

use gaia_carbon::Region;
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_obs::MetricsRegistry;
use gaia_sweep::{shard, store, Executor, ObsHooks, SweepGrid};
use proptest::prelude::*;

/// A unique scratch directory under the temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gaia-shard-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn quiet(workers: usize) -> Executor {
    Executor::new(workers).with_progress(false)
}

/// The acceptance-criteria grid: 4 policies × 3 regions × 2 seeds.
fn reference_grid() -> SweepGrid {
    SweepGrid::week(9)
        .policies(vec![
            PolicySpec::plain(BasePolicyKind::NoWait),
            PolicySpec::plain(BasePolicyKind::LowestSlot),
            PolicySpec::plain(BasePolicyKind::LowestWindow),
            PolicySpec::plain(BasePolicyKind::CarbonTime),
        ])
        .regions(vec![
            Region::SouthAustralia,
            Region::California,
            Region::Ontario,
        ])
        .seeds(vec![42, 43])
}

#[test]
fn merged_shards_match_the_single_process_run_for_any_shard_count() {
    let grid = reference_grid();
    let scratch = Scratch::new("shardcount");

    // The single-process observed reference run.
    let single_registry = MetricsRegistry::new();
    let single_traces = scratch.0.join("traces-single");
    let hooks = ObsHooks {
        metrics: Some(&single_registry),
        trace_dir: Some(&single_traces),
        ..Default::default()
    };
    let single = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .obs(&hooks)
        .execute()
        .expect("single-process sweep");
    assert!(single.is_clean());
    let single_groups = gaia_sweep::across_seed_groups(&single);

    for of in [1usize, 2, 4, 7] {
        // Every shard is an independent run with its own registry —
        // exactly what independent OS processes would produce.
        let trace_dir = scratch.0.join(format!("traces-{of}"));
        let mut dirs = Vec::new();
        let mut sharded_cells = 0;
        for index in 0..of {
            let registry = MetricsRegistry::new();
            let hooks = ObsHooks {
                metrics: Some(&registry),
                trace_dir: Some(&trace_dir),
                ..Default::default()
            };
            let run = grid
                .runner()
                .executor(&quiet(2))
                .audit(true)
                .obs(&hooks)
                .shard(index, of)
                .execute()
                .expect("shard sweep");
            assert_eq!(run.shard, Some((index, of)));
            sharded_cells += run.results.len();
            let dir = scratch
                .0
                .join(format!("shards-{of}"))
                .join(index.to_string());
            shard::write_shard(&dir, &run, Some(&registry)).expect("write shard slice");
            dirs.push(dir);
        }
        assert_eq!(sharded_cells, 24, "shards partition the grid, of={of}");

        let merged = shard::merge_shards(&dirs).expect("merge shards");
        assert_eq!(merged.run.results, single.results, "of={of}");
        assert_eq!(merged.run.cache_stats, single.cache_stats, "of={of}");
        assert_eq!(merged.run.audited, single.audited);
        assert_eq!(
            store::scenarios_csv(&merged.run),
            store::scenarios_csv(&single),
            "scenarios.csv byte-identical, of={of}"
        );
        let merged_groups = gaia_sweep::across_seed_groups(&merged.run);
        assert_eq!(
            store::aggregate_csv(&merged_groups),
            store::aggregate_csv(&single_groups),
            "aggregate.csv byte-identical, of={of}"
        );
        assert_eq!(
            store::aggregate_json(&merged_groups),
            store::aggregate_json(&single_groups),
            "aggregate.json byte-identical, of={of}"
        );
        let merged_metrics = merged.metrics.expect("every shard recorded metrics");
        assert_eq!(
            merged_metrics.snapshot_json(),
            single_registry.snapshot_json(),
            "metrics.json byte-identical, of={of}"
        );
        for cell in grid.scenarios() {
            let name = ObsHooks::trace_file_name(&cell.key());
            let a = fs::read(single_traces.join(&name))
                .unwrap_or_else(|e| panic!("read single trace {name}: {e}"));
            let b = fs::read(trace_dir.join(&name))
                .unwrap_or_else(|e| panic!("read sharded trace {name}: {e}"));
            assert_eq!(a, b, "{name} byte-identical, of={of}");
            assert!(!a.is_empty());
        }
    }
}

#[test]
fn warm_result_cache_replays_every_cell_to_identical_bytes() {
    let grid = SweepGrid::week(9)
        .policies(vec![
            PolicySpec::plain(BasePolicyKind::NoWait),
            PolicySpec::plain(BasePolicyKind::CarbonTime),
        ])
        .seeds(vec![1, 2]);
    let scratch = Scratch::new("warm");
    let cache_dir = scratch.0.join("cache");

    let cold = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .resume(&cache_dir)
        .execute()
        .expect("cold sweep");
    let cold_stats = cold.disk_cache.expect("disk cache attached");
    assert_eq!(cold_stats.misses, 4, "cold cache misses every cell");
    assert_eq!(cold_stats.persists, 4, "every completed cell persisted");
    assert_eq!(cold_stats.hits, 0);

    let warm = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .resume(&cache_dir)
        .execute()
        .expect("warm sweep");
    let warm_stats = warm.disk_cache.expect("disk cache attached");
    assert_eq!(warm_stats.hits, 4, "warm cache skips every completed cell");
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(warm_stats.persists, 0);

    assert_eq!(cold.results, warm.results);
    assert_eq!(
        store::scenarios_csv(&cold),
        store::scenarios_csv(&warm),
        "replayed cells serialize to the same bytes"
    );
}

#[test]
fn corrupt_cache_entries_are_recomputed_not_trusted() {
    let grid = SweepGrid::week(9)
        .policies(vec![PolicySpec::plain(BasePolicyKind::NoWait)])
        .seeds(vec![1, 2]);
    let scratch = Scratch::new("corrupt");
    let cache_dir = scratch.0.join("cache");

    let cold = grid
        .runner()
        .executor(&quiet(1))
        .resume(&cache_dir)
        .execute()
        .expect("cold sweep");
    assert_eq!(cold.disk_cache.expect("stats").persists, 2);

    let entries = cache_entry_files(&cache_dir);
    assert_eq!(entries.len(), 2, "one entry file per cell");
    // Garbage in one entry, a truncated header in the other: both decode
    // failures must degrade to misses.
    fs::write(&entries[0], b"not a cell entry").expect("corrupt entry");
    fs::write(&entries[1], &b"GAI"[..]).expect("truncate entry");

    let recovered = grid
        .runner()
        .executor(&quiet(1))
        .resume(&cache_dir)
        .execute()
        .expect("recovery sweep");
    let stats = recovered.disk_cache.expect("stats");
    assert_eq!(stats.hits, 0, "corrupt entries never hit");
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.persists, 2, "good entries rewritten in place");
    assert_eq!(recovered.results, cold.results);

    // And the rewritten entries hit again.
    let warm = grid
        .runner()
        .executor(&quiet(1))
        .resume(&cache_dir)
        .execute()
        .expect("warm sweep");
    assert_eq!(warm.disk_cache.expect("stats").hits, 2);
}

/// Every `*.cell` entry file under the cache root, in sorted order.
fn cache_entry_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(fanout) = fs::read_dir(root) else {
        return files;
    };
    for dir in fanout.filter_map(Result::ok) {
        if let Ok(entries) = fs::read_dir(dir.path()) {
            for entry in entries.filter_map(Result::ok) {
                if entry.path().extension().is_some_and(|e| e == "cell") {
                    files.push(entry.path());
                }
            }
        }
    }
    files.sort();
    files
}

fn policy_pool() -> Vec<PolicySpec> {
    vec![
        PolicySpec::plain(BasePolicyKind::NoWait),
        PolicySpec::plain(BasePolicyKind::LowestSlot),
        PolicySpec::plain(BasePolicyKind::LowestWindow),
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        PolicySpec::plain(BasePolicyKind::WaitAwhile),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any random grid, split any way, merges back to the
    /// single-process bytes.
    fn any_grid_merges_to_the_single_process_bytes(
        policy_lo in 0usize..4,
        policy_n in 1usize..3,
        seed_base in 0u64..1000,
        seed_n in 1usize..3,
        of in 1usize..8,
    ) {
        let policies: Vec<PolicySpec> =
            policy_pool()[policy_lo..policy_lo + policy_n].to_vec();
        let seeds: Vec<u64> = (seed_base..seed_base + seed_n as u64).collect();
        let grid = SweepGrid::week(9).policies(policies).seeds(seeds);
        let scratch = Scratch::new(&format!("prop-{policy_lo}{policy_n}-{seed_base}-{of}"));

        let single = grid
            .runner()
            .executor(&quiet(2))
            .audit(true)
            .execute()
            .expect("single-process sweep");

        let mut dirs = Vec::new();
        for index in 0..of {
            let run = grid
                .runner()
                .executor(&quiet(2))
                .audit(true)
                .shard(index, of)
                .execute()
                .expect("shard sweep");
            let dir = scratch.0.join(index.to_string());
            shard::write_shard(&dir, &run, None).expect("write shard slice");
            dirs.push(dir);
        }
        let merged = shard::merge_shards(&dirs).expect("merge shards");

        prop_assert_eq!(&merged.run.results, &single.results);
        prop_assert_eq!(merged.run.cache_stats, single.cache_stats);
        prop_assert_eq!(store::scenarios_csv(&merged.run), store::scenarios_csv(&single));
        let merged_groups = gaia_sweep::across_seed_groups(&merged.run);
        let single_groups = gaia_sweep::across_seed_groups(&single);
        prop_assert_eq!(
            store::aggregate_csv(&merged_groups),
            store::aggregate_csv(&single_groups)
        );
        prop_assert_eq!(
            store::aggregate_json(&merged_groups),
            store::aggregate_json(&single_groups)
        );
    }

    /// Any surviving subset of cache entries — the state an arbitrary
    /// kill point leaves behind — resumes to the same results, hitting
    /// exactly the survivors and recomputing exactly the rest.
    fn partial_cache_resumes_with_bounded_recomputation(
        seed_base in 0u64..300,
        keep_mask in 0usize..64,
    ) {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![seed_base, seed_base + 1, seed_base + 2]);
        let scratch = Scratch::new(&format!("resume-{seed_base}-{keep_mask}"));
        let cache_dir = scratch.0.join("cache");

        let cold = grid
            .runner()
            .executor(&quiet(2))
            .audit(true)
            .resume(&cache_dir)
            .execute()
            .expect("cold sweep");
        let entries = cache_entry_files(&cache_dir);
        prop_assert_eq!(entries.len(), 6);

        // Drop every entry outside the mask: the cells a killed run
        // never got to persist.
        let mut kept = 0u64;
        for (bit, file) in entries.iter().enumerate() {
            if keep_mask & (1 << bit) == 0 {
                fs::remove_file(file).expect("drop entry");
            } else {
                kept += 1;
            }
        }

        let resumed = grid
            .runner()
            .executor(&quiet(2))
            .audit(true)
            .resume(&cache_dir)
            .execute()
            .expect("resumed sweep");
        let stats = resumed.disk_cache.expect("stats");
        prop_assert_eq!(stats.hits, kept, "hits exactly the survivors");
        prop_assert_eq!(stats.misses, 6 - kept, "recomputes exactly the rest");
        prop_assert_eq!(stats.persists, 6 - kept);
        prop_assert_eq!(&resumed.results, &cold.results);
        prop_assert_eq!(store::scenarios_csv(&resumed), store::scenarios_csv(&cold));
    }
}
