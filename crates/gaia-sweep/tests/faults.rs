//! Sweep-level fault injection: chaos-cell retries with provenance,
//! fault-schedule threading into every cell, and the faulted
//! byte-identity contract (same fault file + seed + grid ⇒ identical
//! artifacts for any worker count).

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_sweep::{
    store, ClusterSpec, Executor, FaultPlan, FaultSchedule, FaultSpec, ObsHooks, RetryPolicy,
    SweepGrid,
};
use gaia_time::SimTime;

/// A unique scratch directory under the temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("gaia-fault-sweep-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn compile(specs: Vec<FaultSpec>) -> FaultSchedule {
    let mut plan = FaultPlan::new();
    for spec in specs {
        plan.push(spec);
    }
    plan.compile().expect("valid fault plan")
}

fn grid() -> SweepGrid {
    SweepGrid::week(9)
        .policies(vec![
            PolicySpec::plain(BasePolicyKind::NoWait),
            PolicySpec::plain(BasePolicyKind::CarbonTime),
        ])
        .seeds(vec![1, 2])
}

fn quiet(workers: usize) -> Executor {
    Executor::new(workers).with_progress(false)
}

#[test]
fn default_fault_options_match_the_plain_audited_run() {
    let grid = grid();
    let faulted = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .retry(RetryPolicy::default())
        .execute()
        .expect("in-memory sweep");
    let plain = grid
        .runner()
        .executor(&quiet(1))
        .audit(true)
        .execute()
        .expect("in-memory sweep");
    assert_eq!(faulted.results, plain.results);
    assert_eq!(
        store::scenarios_csv(&faulted),
        store::scenarios_csv(&plain),
        "empty fault options leave the CSV byte-identical"
    );
}

#[test]
fn chaos_cells_recover_through_retries_with_provenance() {
    let grid = grid();
    let schedule = compile(vec![FaultSpec::ChaosCell {
        key_substr: "NoWait".to_owned(),
        fail_attempts: 2,
    }]);
    let run = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .faults(&schedule)
        .retry(RetryPolicy::attempts(3))
        .execute()
        .expect("in-memory sweep");

    assert!(run.is_clean(), "recovered cells count as completed");
    let retried = run.retried_cells();
    assert_eq!(retried.len(), 2, "both NoWait seeds recover");
    for cell in &retried {
        assert!(
            cell.key.contains("NoWait"),
            "chaos matched by key: {}",
            cell.key
        );
        let (attempts, timed_out, error) = cell.retry_provenance().expect("retried");
        assert_eq!(attempts, 3, "2 injected failures + 1 success");
        assert!(!timed_out, "chaos failures are not timeouts");
        assert!(
            error.contains("chaos"),
            "provenance keeps the fault: {error}"
        );
        assert!(cell.audit().expect("audited").is_clean());
    }

    // Recovery is transparent to the results: summaries match the
    // unfaulted sweep cell for cell.
    let plain = grid
        .runner()
        .executor(&quiet(1))
        .audit(true)
        .execute()
        .expect("in-memory sweep");
    for (a, b) in run.results.iter().zip(&plain.results) {
        assert_eq!(a.summary(), b.summary(), "{}", a.key);
    }

    // scenarios.csv records the provenance in the status column.
    let csv = store::scenarios_csv(&run);
    assert_eq!(csv.matches(",retried:3,").count(), 2, "{csv}");
}

#[test]
fn chaos_cells_without_retry_budget_fail_for_good() {
    let grid = grid();
    let schedule = compile(vec![FaultSpec::ChaosCell {
        key_substr: "NoWait".to_owned(),
        fail_attempts: 1,
    }]);
    let run = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .faults(&schedule)
        // Default retry policy: one attempt, no retries.
        .execute()
        .expect("in-memory sweep");

    assert!(!run.is_clean());
    let failed = run.failed_cells();
    assert_eq!(failed.len(), 2, "both NoWait seeds fail");
    for cell in &failed {
        assert!(cell.error().expect("failed").contains("chaos"));
    }
    assert!(run.retried_cells().is_empty());
    assert!(
        run.results
            .iter()
            .any(|r| r.key.contains("Carbon-Time") && r.summary().is_some()),
        "unmatched cells are untouched"
    );
}

#[test]
fn faulted_artifacts_are_byte_identical_across_worker_counts() {
    // Engine-level faults (storm over a spot-heavy cluster, a forecast
    // outage, a price spike) plus a chaos cell with retries: the full
    // (fault file, seed, grid) triple must replay byte-identically for
    // any worker count.
    let grid = grid().clusters(vec![ClusterSpec::on_demand(9).with_eviction(0.02)]);
    let schedule = compile(vec![
        FaultSpec::EvictionStorm {
            start: SimTime::ORIGIN,
            end: SimTime::from_hours(72),
            multiplier: 20.0,
        },
        FaultSpec::ForecastOutage {
            start: SimTime::from_hours(10),
            end: SimTime::from_hours(40),
        },
        FaultSpec::PriceSpike {
            start: SimTime::from_hours(5),
            end: SimTime::from_hours(25),
            multiplier: 3.0,
        },
        FaultSpec::ChaosCell {
            key_substr: "Carbon-Time".to_owned(),
            fail_attempts: 1,
        },
    ]);
    let retry = RetryPolicy::attempts(2);

    let scratch = Scratch::new("determinism");
    let mut runs = Vec::new();
    for workers in [1usize, 4] {
        let trace_dir = scratch.0.join(format!("traces-{workers}"));
        let hooks = ObsHooks {
            trace_dir: Some(&trace_dir),
            ..Default::default()
        };
        let run = grid
            .runner()
            .executor(&quiet(workers))
            .audit(true)
            .faults(&schedule)
            .retry(retry)
            .obs(&hooks)
            .execute()
            .expect("trace dir is creatable");
        assert!(run.is_clean(), "faults degrade, they must not break");
        assert_eq!(
            run.retried_cells().len(),
            2,
            "both Carbon-Time seeds retried"
        );
        runs.push(run);
    }

    assert_eq!(runs[0].results, runs[1].results, "merged results identical");
    assert_eq!(
        store::scenarios_csv(&runs[0]),
        store::scenarios_csv(&runs[1]),
        "scenarios.csv byte-identical for 1 vs 4 workers under faults"
    );
    let groups_1 = gaia_sweep::across_seed_groups(&runs[0]);
    let groups_4 = gaia_sweep::across_seed_groups(&runs[1]);
    assert_eq!(
        store::aggregate_csv(&groups_1),
        store::aggregate_csv(&groups_4)
    );

    for cell in grid.scenarios() {
        let name = ObsHooks::trace_file_name(&cell.key());
        let a = fs::read(scratch.0.join("traces-1").join(&name))
            .unwrap_or_else(|e| panic!("read traces-1/{name}: {e}"));
        let b = fs::read(scratch.0.join("traces-4").join(&name))
            .unwrap_or_else(|e| panic!("read traces-4/{name}: {e}"));
        assert_eq!(a, b, "{name} byte-identical across worker counts");
        assert!(!a.is_empty());
    }

    // The faulted run differs from the unfaulted one (the faults bite),
    // but stays audit-clean — graceful degradation, not corruption.
    let plain = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .execute()
        .expect("in-memory sweep");
    assert_ne!(
        store::scenarios_csv(&runs[0]),
        store::scenarios_csv(&plain),
        "the schedule visibly changes outcomes"
    );
    assert_eq!(runs[0].audit_violations(), 0);
}

#[test]
fn expired_cell_timeout_fails_the_attempt_gracefully() {
    let grid = SweepGrid::week(9)
        .policies(vec![PolicySpec::plain(BasePolicyKind::NoWait)])
        .seeds(vec![1]);
    let run = grid
        .runner()
        .executor(&quiet(1))
        .retry(RetryPolicy::attempts(1).with_timeout(Duration::from_nanos(1)))
        .execute()
        .expect("in-memory sweep");
    let failed = run.failed_cells();
    assert_eq!(failed.len(), 1);
    assert!(
        failed[0].error().expect("failed").contains("timeout"),
        "{:?}",
        failed[0].error()
    );
}

#[test]
fn timed_out_cells_that_recover_keep_both_provenances() {
    let grid = SweepGrid::week(9)
        .policies(vec![PolicySpec::plain(BasePolicyKind::NoWait)])
        .seeds(vec![1]);
    // Attempt 1 gets a 1µs budget (a cell cannot even spawn its worker
    // thread that fast) and times out; the scaled attempt 2 gets 10s
    // and recovers. The recovered cell must carry BOTH provenances.
    let run = grid
        .runner()
        .executor(&quiet(1))
        .retry(
            RetryPolicy::attempts(2)
                .with_timeout(Duration::from_micros(1))
                .with_timeout_scale(10_000_000),
        )
        .execute()
        .expect("in-memory sweep");
    assert!(run.is_clean(), "the scaled retry recovers the cell");
    let retried = run.retried_cells();
    assert_eq!(retried.len(), 1);
    let (attempts, timed_out, error) = retried[0].retry_provenance().expect("retried");
    assert_eq!(attempts, 2);
    assert!(timed_out, "the timeout provenance survives recovery");
    assert!(error.contains("cell timeout"), "{error}");

    // scenarios.csv renders both provenances in the status column, and
    // the manifest carries the structured flag.
    let csv = store::scenarios_csv(&run);
    assert_eq!(csv.matches(",timed_out;retried:2,").count(), 1, "{csv}");
    let manifest = store::manifest_json(&run, None);
    assert!(manifest.contains("\"timed_out\": true"), "{manifest}");
}

#[test]
fn escalating_timeout_budgets_are_scaled_and_capped() {
    let policy = RetryPolicy::attempts(4)
        .with_timeout(Duration::from_secs(2))
        .with_timeout_scale(10);
    assert_eq!(policy.timeout_for(1), Some(Duration::from_secs(2)));
    assert_eq!(policy.timeout_for(2), Some(Duration::from_secs(20)));
    assert_eq!(policy.timeout_for(3), Some(Duration::from_secs(200)));
    assert_eq!(
        policy.timeout_for(9),
        Some(Duration::from_secs(3600)),
        "capped at one hour"
    );
    assert_eq!(RetryPolicy::attempts(2).timeout_for(2), None, "no timeout");
    let flat = RetryPolicy::attempts(3).with_timeout(Duration::from_secs(5));
    assert_eq!(flat.timeout_for(3), Some(Duration::from_secs(5)), "scale 1");
}

#[test]
fn generous_cell_timeout_reproduces_the_untimed_results() {
    let grid = grid();
    let timed = grid
        .runner()
        .executor(&quiet(2))
        .audit(true)
        .retry(RetryPolicy::attempts(1).with_timeout(Duration::from_secs(120)))
        .execute()
        .expect("in-memory sweep");
    let plain = grid
        .runner()
        .executor(&quiet(1))
        .audit(true)
        .execute()
        .expect("in-memory sweep");
    assert_eq!(timed.results, plain.results);
}

#[test]
fn retry_backoff_doubles_and_caps() {
    let policy = RetryPolicy::attempts(8).with_backoff(Duration::from_millis(100));
    assert_eq!(policy.backoff_before(1), Duration::from_millis(100));
    assert_eq!(policy.backoff_before(2), Duration::from_millis(200));
    assert_eq!(policy.backoff_before(3), Duration::from_millis(400));
    assert_eq!(policy.backoff_before(30), Duration::from_secs(30), "capped");
    assert_eq!(
        RetryPolicy::default().backoff_before(1),
        Duration::ZERO,
        "no backoff by default"
    );
}
