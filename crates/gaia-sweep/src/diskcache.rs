//! Content-addressed on-disk cache of per-cell sweep results.
//!
//! Every completed cell can be persisted under a directory (by default
//! `results/cache/`) keyed by a fingerprint of the **full cell inputs**:
//! the scenario's binary encoding (policy spec, region, family, scale,
//! seed, cluster, queues), the fault schedule's fingerprint, the retry
//! budget, and a cache-format version salt. Two runs that agree on
//! those inputs produce byte-identical results (the repo's determinism
//! contract), so a fingerprint match lets a re-run, an overlapping
//! grid, or a resumed shard skip the simulation entirely and replay the
//! stored outcome — summary, audit report, retry provenance, optional
//! per-cell trace, and the cell's metric contributions.
//!
//! Entries are written with the same tmp + rename + fsync discipline as
//! the serving layer's snapshots, so a SIGKILL mid-write never leaves a
//! corrupt entry: readers either see the complete file or nothing, and
//! anything that fails to decode is treated as a miss and overwritten.
//!
//! Resumability falls out of the design: an interrupted run re-executed
//! with the same cache directory finds every finished cell by content
//! address and recomputes only the missing ones.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

use gaia_fault::FaultSchedule;
use gaia_sim::fnv1a;

use crate::codec::{self, Reader, Writer};
use crate::grid::Scenario;
use crate::store::atomic_write;
use crate::CellOutcome;

/// Bump when the entry format or anything upstream of a cell's result
/// changes in a way fingerprints cannot see (engine behaviour, codec
/// layout): old entries then miss instead of replaying stale results.
pub const RESULT_CACHE_VERSION: u32 = 1;

const ENTRY_MAGIC: &[u8; 8] = b"GAIACELL";

/// Counters from one run's use of the result cache. Process-local and
/// wall-clock-free, but still excluded from merged artifacts because
/// they depend on what happened to be cached, not on the grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Cells served from the cache without simulating.
    pub hits: u64,
    /// Cells that had to be simulated (no entry, ineligible entry, or
    /// corrupt entry).
    pub misses: u64,
    /// Freshly simulated cells persisted for future runs.
    pub persists: u64,
}

/// What the requesting run needs from an entry for a hit to be usable.
/// An entry lacking a required part is a miss (and gets overwritten by
/// the freshly computed, richer entry); extra parts are fine — the
/// engine strips what the run did not ask for.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EntryNeeds {
    pub(crate) audit: bool,
    pub(crate) trace: bool,
    pub(crate) metrics: bool,
}

/// A decoded cache entry: everything needed to replay a cell.
pub(crate) struct CellEntry {
    pub(crate) outcome: CellOutcome,
    /// Serialized JSONL trace, present iff the producing run traced.
    pub(crate) trace: Option<Vec<u8>>,
    /// [`codec::write_metrics`] payload of the cell's scratch registry.
    pub(crate) metrics: Option<Vec<u8>>,
}

/// Handle on a cache directory plus per-run counters.
pub(crate) struct DiskCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    persists: AtomicU64,
}

/// Fingerprint of the full inputs of one cell. The scenario is hashed
/// via its canonical binary encoding (not its display key, which elides
/// f64 bit patterns); the fault schedule contributes the FNV-1a of its
/// `Debug` rendering (covers every compiled window and chaos target);
/// `max_attempts` matters because a chaos-faulted cell's outcome
/// depends on the retry budget. Backoff and timeout are excluded: they
/// affect wall-clock pacing, never results.
pub(crate) fn cell_fingerprint(
    scenario: &Scenario,
    schedule: Option<&FaultSchedule>,
    max_attempts: u32,
) -> u64 {
    let mut w = Writer::new();
    w.u32(RESULT_CACHE_VERSION);
    codec::write_scenario(&mut w, scenario);
    w.u64(schedule.map_or(0, |s| fnv1a(format!("{s:?}").as_bytes())));
    w.u32(max_attempts);
    fnv1a(&w.into_bytes())
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub(crate) fn open(dir: &Path) -> io::Result<DiskCache> {
        fs::create_dir_all(dir)?;
        Ok(DiskCache {
            root: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persists: AtomicU64::new(0),
        })
    }

    /// Entry path: two-hex-char fanout directory, 16-hex-char file name.
    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        let hex = format!("{fingerprint:016x}");
        self.root.join(&hex[..2]).join(format!("{hex}.cell"))
    }

    /// Look up a cell. Returns the decoded entry on a usable hit;
    /// counts and returns `None` on absence, ineligibility (missing a
    /// needed part), fingerprint/scenario mismatch, or corruption.
    pub(crate) fn lookup(
        &self,
        scenario: &Scenario,
        fingerprint: u64,
        needs: EntryNeeds,
    ) -> Option<CellEntry> {
        let path = self.entry_path(fingerprint);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(e) => {
                gaia_obs::warn!("result cache read failed for {}: {e}", path.display());
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes, scenario, fingerprint) {
            Ok(entry) => {
                let usable = (!needs.audit || outcome_has_audit(&entry.outcome))
                    && (!needs.trace || entry.trace.is_some())
                    && (!needs.metrics || entry.metrics.is_some());
                if usable {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(entry)
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            Err(reason) => {
                gaia_obs::warn!(
                    "result cache entry {} unusable ({reason}); recomputing",
                    path.display()
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist a freshly computed cell atomically (tmp + rename +
    /// fsync). The caller decides *whether* an outcome is cacheable;
    /// this only encodes and writes.
    pub(crate) fn store(
        &self,
        scenario: &Scenario,
        fingerprint: u64,
        entry: &CellEntry,
    ) -> io::Result<()> {
        let path = self.entry_path(fingerprint);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        atomic_write(&path, &encode_entry(scenario, fingerprint, entry))?;
        self.persists.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Counters accumulated by this handle.
    pub(crate) fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            persists: self.persists.load(Ordering::Relaxed),
        }
    }
}

pub(crate) fn outcome_has_audit(outcome: &CellOutcome) -> bool {
    match outcome {
        CellOutcome::Completed { audit, .. } | CellOutcome::Retried { audit, .. } => {
            audit.is_some()
        }
        CellOutcome::Failed { .. } => false,
    }
}

fn encode_entry(scenario: &Scenario, fingerprint: u64, entry: &CellEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(ENTRY_MAGIC);
    w.u32(RESULT_CACHE_VERSION);
    w.u64(fingerprint);
    codec::write_scenario(&mut w, scenario);
    codec::write_outcome(&mut w, &entry.outcome);
    w.opt(entry.trace.as_deref(), |w, trace: &[u8]| {
        w.u64(trace.len() as u64);
        w.bytes(trace);
    });
    w.opt(entry.metrics.as_deref(), |w, metrics: &[u8]| {
        w.u64(metrics.len() as u64);
        w.bytes(metrics);
    });
    w.into_bytes()
}

fn decode_entry(bytes: &[u8], scenario: &Scenario, fingerprint: u64) -> Result<CellEntry, String> {
    let mut r = Reader::new(bytes);
    let mut magic = [0u8; 8];
    for byte in magic.iter_mut() {
        *byte = r.u8()?;
    }
    if &magic != ENTRY_MAGIC {
        return Err("bad magic".to_owned());
    }
    let version = r.u32()?;
    if version != RESULT_CACHE_VERSION {
        return Err(format!(
            "version {version} != current {RESULT_CACHE_VERSION}"
        ));
    }
    if r.u64()? != fingerprint {
        return Err("fingerprint mismatch".to_owned());
    }
    let stored = codec::read_scenario(&mut r)?;
    if stored.key() != scenario.key() {
        // FNV-1a collision or a mis-filed entry: never replay a
        // different cell's result.
        return Err(format!("scenario mismatch (stored {})", stored.key()));
    }
    let outcome = codec::read_outcome(&mut r)?;
    let trace = r.opt(|r| {
        let len = r.count(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(r.u8()?);
        }
        Ok(out)
    })?;
    let metrics = r.opt(|r| {
        let len = r.count(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(r.u8()?);
        }
        Ok(out)
    })?;
    r.done()?;
    Ok(CellEntry {
        outcome,
        trace,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;
    use gaia_metrics::Summary;

    fn scenario() -> Scenario {
        SweepGrid::week(9).scenarios().remove(0)
    }

    fn completed() -> CellOutcome {
        CellOutcome::Completed {
            summary: Summary {
                name: "Carbon-Time".to_owned(),
                carbon_g: 10.0,
                total_cost: 2.0,
                mean_wait_hours: 0.1,
                mean_completion_hours: 1.0,
                reserved_utilization: 0.8,
                evictions: 0,
                jobs: 100,
            },
            audit: None,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gaia-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = tempdir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        let sc = scenario();
        let fp = cell_fingerprint(&sc, None, 1);
        assert!(cache.lookup(&sc, fp, EntryNeeds::default()).is_none());
        let entry = CellEntry {
            outcome: completed(),
            trace: Some(b"{\"ev\":\"x\"}\n".to_vec()),
            metrics: None,
        };
        cache.store(&sc, fp, &entry).unwrap();
        let back = cache
            .lookup(
                &sc,
                fp,
                EntryNeeds {
                    trace: true,
                    ..EntryNeeds::default()
                },
            )
            .expect("hit");
        assert_eq!(back.outcome, entry.outcome);
        assert_eq!(back.trace, entry.trace);
        assert_eq!(
            cache.stats(),
            DiskCacheStats {
                hits: 1,
                misses: 1,
                persists: 1
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn needs_gate_hits() {
        let dir = tempdir("needs");
        let cache = DiskCache::open(&dir).unwrap();
        let sc = scenario();
        let fp = cell_fingerprint(&sc, None, 3);
        let entry = CellEntry {
            outcome: completed(), // no audit
            trace: None,
            metrics: None,
        };
        cache.store(&sc, fp, &entry).unwrap();
        for needs in [
            EntryNeeds {
                audit: true,
                ..EntryNeeds::default()
            },
            EntryNeeds {
                trace: true,
                ..EntryNeeds::default()
            },
            EntryNeeds {
                metrics: true,
                ..EntryNeeds::default()
            },
        ] {
            assert!(cache.lookup(&sc, fp, needs).is_none());
        }
        assert!(cache.lookup(&sc, fp, EntryNeeds::default()).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tempdir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        let sc = scenario();
        let fp = cell_fingerprint(&sc, None, 1);
        let entry = CellEntry {
            outcome: completed(),
            trace: None,
            metrics: None,
        };
        cache.store(&sc, fp, &entry).unwrap();
        let path = cache.entry_path(fp);
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&path, &bytes).unwrap();
        assert!(cache.lookup(&sc, fp, EntryNeeds::default()).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_separates_inputs() {
        let sc = scenario();
        let mut other = sc;
        other.seed += 1;
        let base = cell_fingerprint(&sc, None, 1);
        assert_ne!(base, cell_fingerprint(&other, None, 1));
        assert_ne!(base, cell_fingerprint(&sc, None, 2));
    }
}
