//! Deterministic worker-pool executor.
//!
//! Fans cells out across N OS threads through a `crossbeam` MPMC
//! channel and merges results back **in grid order**: each cell travels
//! with its grid index, workers send `(index, result)` pairs back, and
//! the merger slots them into a pre-sized vector. Per-cell computation
//! stays single-threaded and seed-deterministic, so the merged output
//! is byte-identical for any worker count — parallelism changes only
//! the wall-clock, never the results.
//!
//! Progress (completed/total, ETA) is reported to stderr while the
//! sweep runs; stdout stays reserved for experiment output.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: usize,
    progress: bool,
}

impl Executor {
    /// Pool with `workers` threads (clamped to at least 1). Progress
    /// reporting is on by default.
    pub fn new(workers: usize) -> Executor {
        Executor {
            workers: workers.max(1),
            progress: true,
        }
    }

    /// Pool sized to the machine's available parallelism.
    pub fn available() -> Executor {
        Executor::new(default_workers())
    }

    /// Enables or disables stderr progress reporting.
    pub fn with_progress(mut self, progress: bool) -> Executor {
        self.progress = progress;
        self
    }

    /// Number of worker threads this executor uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every cell and returns the results in input
    /// order, regardless of which worker finished first.
    ///
    /// `f` receives `(grid_index, &cell)` and must be deterministic in
    /// its inputs for the sweep-determinism guarantee to hold (every
    /// GAIA simulation is, by construction: all randomness flows from
    /// explicit seeds).
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic after draining the pool.
    pub fn run<C, R, F>(&self, label: &str, cells: Vec<C>, f: F) -> Vec<R>
    where
        C: Send,
        R: Send,
        F: Fn(usize, &C) -> R + Sync,
    {
        let total = cells.len();
        if total == 0 {
            return Vec::new();
        }
        let mut meter = Progress::new(label, total, self.progress);
        let workers = self.workers.min(total);
        if workers == 1 {
            // Serial fast path: same merge semantics, no thread setup.
            let results = cells
                .iter()
                .enumerate()
                .map(|(index, cell)| {
                    let result = f(index, cell);
                    meter.bump();
                    result
                })
                .collect();
            meter.finish();
            return results;
        }

        let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, C)>();
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, R)>();
        for (index, cell) in cells.into_iter().enumerate() {
            // Receivers outlive this loop, so a send can't fail here.
            if job_tx.send((index, cell)).is_err() {
                unreachable!("job channel closed while enqueueing");
            }
        }
        // Close the job channel: workers drain it and exit on disconnect.
        drop(job_tx);

        let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                let f = &f;
                scope.spawn(move || {
                    while let Ok((index, cell)) = job_rx.recv() {
                        let result = f(index, &cell);
                        if result_tx.send((index, result)).is_err() {
                            return; // merger gone; nothing left to do
                        }
                    }
                });
            }
            // The merger owns no sender: disconnect <=> all workers done.
            drop(result_tx);
            while let Ok((index, result)) = result_rx.recv() {
                debug_assert!(slots[index].is_none(), "duplicate result for cell {index}");
                slots[index] = Some(result);
                meter.bump();
            }
            // A missing slot here means a worker panicked mid-cell; the
            // scope join below re-raises that panic.
        });
        meter.finish();
        slots
            .into_iter()
            .map(|slot| slot.expect("all cells completed"))
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::available()
    }
}

/// The machine's available parallelism, overridable with the
/// `GAIA_WORKERS` environment variable (used by scripts to compare
/// serial and parallel sweeps).
pub fn default_workers() -> usize {
    std::env::var("GAIA_WORKERS")
        .ok()
        .and_then(|value| value.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Completed/total + ETA reporting on stderr, rate-limited so tight
/// grids don't spam the terminal.
struct Progress {
    label: String,
    total: usize,
    completed: usize,
    start: Instant,
    last_print: Option<Instant>,
    enabled: bool,
}

impl Progress {
    fn new(label: &str, total: usize, enabled: bool) -> Progress {
        Progress {
            label: label.to_owned(),
            total,
            completed: 0,
            start: Instant::now(),
            last_print: None,
            // The meter is info-level chatter: GAIA_LOG=warn (or error)
            // silences it without touching the Executor configuration.
            enabled: enabled && gaia_obs::log::enabled(gaia_obs::log::Level::Info),
        }
    }

    fn bump(&mut self) {
        self.completed += 1;
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let due = match self.last_print {
            None => true,
            Some(last) => now.duration_since(last) >= Duration::from_millis(200),
        };
        if due || self.completed == self.total {
            self.last_print = Some(now);
            let elapsed = self.start.elapsed().as_secs_f64();
            let eta = if self.completed > 0 {
                elapsed / self.completed as f64 * (self.total - self.completed) as f64
            } else {
                f64::NAN
            };
            eprint!(
                "\rsweep[{}] {}/{} ({:.0}%) elapsed {:.1}s eta {:.1}s   ",
                self.label,
                self.completed,
                self.total,
                self.completed as f64 / self.total as f64 * 100.0,
                elapsed,
                eta,
            );
            let _ = std::io::stderr().flush();
        }
    }

    fn finish(&mut self) {
        if self.enabled && self.total > 0 {
            eprintln!(
                "\rsweep[{}] {}/{} done in {:.2}s                      ",
                self.label,
                self.completed,
                self.total,
                self.start.elapsed().as_secs_f64(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let cells: Vec<u64> = (0..64).collect();
        let exec = Executor::new(4).with_progress(false);
        let out = exec.run("test", cells.clone(), |index, &cell| {
            // Vary per-cell latency so completion order differs from
            // input order under parallelism.
            if cell % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            (index, cell * cell)
        });
        for (i, (index, square)) in out.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*square, cells[i] * cells[i]);
        }
    }

    #[test]
    fn one_worker_equals_many_workers() {
        let cells: Vec<u64> = (0..40).collect();
        let serial = Executor::new(1)
            .with_progress(false)
            .run("s", cells.clone(), |_, &c| c * 3 + 1);
        let parallel = Executor::new(8)
            .with_progress(false)
            .run("p", cells, |_, &c| c * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let exec = Executor::new(4).with_progress(false);
        let out: Vec<u8> = exec.run("empty", Vec::<u8>::new(), |_, &c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_clamped_to_at_least_one() {
        assert_eq!(Executor::new(0).workers(), 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let exec = Executor::new(2).with_progress(false);
        let _ = exec.run("panic", vec![1u8, 2, 3], |_, &c| {
            if c == 2 {
                panic!("boom");
            }
            c
        });
    }
}
