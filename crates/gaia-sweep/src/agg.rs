//! Across-seed aggregation of sweep results.
//!
//! A sweep with a multi-entry seed dimension produces replicate runs of
//! every (policy, region, family, cluster, queues) point. This module
//! groups those replicates — in first-appearance grid order, so the
//! grouping itself is deterministic — and folds each group through
//! [`gaia_metrics::across_seeds`] into mean ± std statistics.

use gaia_metrics::MultiSeedSummary;

use crate::grid::Scenario;
use crate::SweepRun;

/// One seed-aggregated scenario group: every grid cell that differs
/// only in its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Stable group identifier: the scenario key with the seed segment
    /// removed, e.g. `Carbon-Time/SA-AU/Alibaba/week/r0-ev0-b9d/q6x24`.
    pub key: String,
    /// A representative scenario of the group (the first in grid order;
    /// its seed is arbitrary within the group).
    pub exemplar: Scenario,
    /// Mean/dispersion statistics across the group's seeds.
    pub stats: MultiSeedSummary,
}

/// The group identifier of a scenario: its key minus the seed segment.
pub fn group_key(scenario: &Scenario) -> String {
    format!(
        "{}/{}/{}/{}/{}/{}",
        scenario.policy.name(),
        scenario.region.code(),
        scenario.family.name(),
        scenario.scale.token(),
        scenario.cluster.token(),
        scenario.queues.token(),
    )
}

/// Groups `run`'s results by everything except the seed and aggregates
/// each group across its seeds. Groups appear in first-appearance grid
/// order, so the output is deterministic.
///
/// Failed cells contribute no replicate; a group whose cells all failed
/// is dropped entirely rather than aggregated over nothing. Every
/// exclusion is reported through a `GAIA_LOG` warning — aggregation
/// used to drop failed cells *silently*, so an unaudited sweep
/// (`--no-audit`) could publish an aggregate built from fewer
/// replicates than the grid promised without any trace of it. The
/// dropped-cell count also lands in the run manifest's `"aggregation"`
/// block.
pub fn across_seed_groups(run: &SweepRun) -> Vec<GroupSummary> {
    let mut dropped = 0usize;
    for result in &run.results {
        if let Some(error) = result.error() {
            dropped += 1;
            gaia_obs::warn!("aggregation: dropping failed cell {} ({error})", result.key);
        }
    }
    if dropped > 0 {
        gaia_obs::warn!(
            "aggregation: {dropped} of {} cells dropped; statistics cover \
             fewer replicates than the grid specifies",
            run.results.len()
        );
    }
    across_seed_groups_inner(run)
}

fn across_seed_groups_inner(run: &SweepRun) -> Vec<GroupSummary> {
    let mut order: Vec<String> = Vec::new();
    let mut members: std::collections::HashMap<String, Vec<usize>> =
        std::collections::HashMap::new();
    for (index, result) in run.results.iter().enumerate() {
        let key = group_key(&result.scenario);
        members
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push(index);
    }
    order
        .into_iter()
        .filter_map(|key| {
            let indices = &members[&key];
            let replicates: Vec<_> = indices
                .iter()
                .filter_map(|&i| run.results[i].summary().cloned())
                .collect();
            if replicates.is_empty() {
                return None;
            }
            Some(GroupSummary {
                key,
                exemplar: run.results[indices[0]].scenario,
                stats: gaia_metrics::across_seeds(&replicates),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Executor, SweepGrid, TraceCache};
    use gaia_core::catalog::{BasePolicyKind, PolicySpec};

    #[test]
    fn groups_collapse_seeds_and_keep_grid_order() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![1, 2, 3]);
        let cache = TraceCache::new();
        let run = grid
            .runner()
            .executor(&Executor::new(1).with_progress(false))
            .cache(&cache)
            .execute()
            .unwrap();
        let groups = across_seed_groups(&run);
        assert_eq!(groups.len(), 2, "two policies, seeds folded");
        assert_eq!(groups[0].stats.name, "NoWait");
        assert_eq!(groups[1].stats.name, "Carbon-Time");
        assert_eq!(groups[0].stats.carbon_g.n, 3);
        assert!(
            !groups[0].key.contains("/s1/"),
            "seed removed from group key"
        );
    }

    #[test]
    fn failed_cells_are_excluded_from_aggregation() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::BadPlan),
                PolicySpec::plain(BasePolicyKind::NoWait),
            ])
            .seeds(vec![1, 2]);
        let cache = TraceCache::new();
        let run = grid
            .runner()
            .executor(&Executor::new(1).with_progress(false))
            .cache(&cache)
            .audit(true)
            .execute()
            .unwrap();
        let groups = across_seed_groups(&run);
        assert_eq!(groups.len(), 1, "the all-failed Bad-Plan group is dropped");
        assert_eq!(groups[0].stats.name, "NoWait");
        assert_eq!(groups[0].stats.carbon_g.n, 2);
    }
}
