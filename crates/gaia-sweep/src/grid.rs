//! Scenario grids: the cartesian experiment spaces behind every figure.
//!
//! A [`SweepGrid`] describes a cartesian product over policies, regions,
//! workload families, seeds, cluster shapes, and queue configurations.
//! [`SweepGrid::scenarios`] expands it into a flat list of [`Scenario`]
//! cells in a *stable nesting order* (regions → families → seeds →
//! clusters → queues → policies), and every cell carries a stable
//! human-readable [`Scenario::key`]. The executor relies on this
//! ordering to merge parallel results byte-identically for any worker
//! count.

use gaia_carbon::Region;
use gaia_core::catalog::PolicySpec;
use gaia_sim::{ClusterConfig, EvictionModel};
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;
use gaia_workload::QueueSet;
use serde::{Deserialize, Serialize};

/// Workload scale of a scenario: the week-long 1k-job prototype trace
/// or a year-long trace with an explicit job count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScaleSpec {
    /// The week-long 1k-job trace used by Figures 8–12.
    Week,
    /// A year-long trace with this many jobs (the paper runs 100k).
    Year {
        /// Number of jobs to synthesize.
        jobs: usize,
    },
}

impl ScaleSpec {
    /// Short stable token used inside scenario keys.
    pub fn token(self) -> String {
        match self {
            ScaleSpec::Week => "week".to_owned(),
            ScaleSpec::Year { jobs } => format!("year{jobs}"),
        }
    }
}

/// Cluster shape of a scenario: reserved capacity, spot eviction rate,
/// and the billing horizon shared by all policies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of prepaid reserved CPU units.
    pub reserved: u32,
    /// Hourly spot eviction probability in `[0, 1]`.
    pub eviction: f64,
    /// Billing horizon in days for the reserved prepayment.
    pub billing_days: u64,
}

impl ClusterSpec {
    /// On-demand-only cluster billed over `days` days.
    pub fn on_demand(days: u64) -> ClusterSpec {
        ClusterSpec {
            reserved: 0,
            eviction: 0.0,
            billing_days: days,
        }
    }

    /// Same cluster with `reserved` prepaid CPUs.
    pub fn with_reserved(mut self, reserved: u32) -> ClusterSpec {
        self.reserved = reserved;
        self
    }

    /// Same cluster with an hourly spot eviction rate.
    pub fn with_eviction(mut self, eviction: f64) -> ClusterSpec {
        self.eviction = eviction;
        self
    }

    /// Materializes the simulator configuration for one scenario seed.
    pub fn build(&self, seed: u64) -> ClusterConfig {
        ClusterConfig::default()
            .with_reserved(self.reserved)
            .with_eviction(EvictionModel::hourly(self.eviction))
            .with_billing_horizon(Minutes::from_days(self.billing_days))
            .with_seed(seed)
    }

    /// Short stable token used inside scenario keys.
    pub fn token(&self) -> String {
        format!(
            "r{}-ev{}-b{}d",
            self.reserved, self.eviction, self.billing_days
        )
    }
}

/// Queue configuration of a scenario: the short/long maximum waiting
/// times (the paper's default is 6h × 24h).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueueSpec {
    /// Maximum waiting time of the short queue, hours.
    pub short_hours: u64,
    /// Maximum waiting time of the long queue, hours.
    pub long_hours: u64,
}

impl Default for QueueSpec {
    fn default() -> QueueSpec {
        QueueSpec {
            short_hours: 6,
            long_hours: 24,
        }
    }
}

impl QueueSpec {
    /// Builds the queue set, learning per-queue average lengths from
    /// the trace being replayed (§4.2.1's accounting database).
    pub fn build(&self, trace: &gaia_workload::WorkloadTrace) -> QueueSet {
        QueueSet::paper_defaults()
            .with_waits(
                Minutes::from_hours(self.short_hours),
                Minutes::from_hours(self.long_hours),
            )
            .with_averages_from(trace.jobs())
    }

    /// Short stable token used inside scenario keys.
    pub fn token(&self) -> String {
        format!("q{}x{}", self.short_hours, self.long_hours)
    }
}

/// One cell of a sweep: a fully specified (policy, environment, seed)
/// simulation. Scenarios are self-contained and cheap to copy between
/// threads; traces are materialized lazily through the
/// [`TraceCache`](crate::TraceCache).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scheduling policy under test.
    pub policy: PolicySpec,
    /// Carbon region.
    pub region: Region,
    /// Workload family.
    pub family: TraceFamily,
    /// Workload scale.
    pub scale: ScaleSpec,
    /// Seed driving carbon synthesis, workload synthesis, and the
    /// simulator's stochastic components.
    pub seed: u64,
    /// Cluster shape.
    pub cluster: ClusterSpec,
    /// Queue configuration.
    pub queues: QueueSpec,
}

impl Scenario {
    /// Stable, filesystem-safe identifier for this cell, e.g.
    /// `Carbon-Time/SA-AU/Alibaba/week/s42/r9-ev0-b9d/q6x24`.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/s{}/{}/{}",
            self.policy.name(),
            self.region.code(),
            self.family.name(),
            self.scale.token(),
            self.seed,
            self.cluster.token(),
            self.queues.token(),
        )
    }
}

/// A cartesian grid of scenarios.
///
/// Every dimension defaults to a single paper-default entry, so a grid
/// is built by overriding only the dimensions being swept:
///
/// ```
/// use gaia_core::catalog::{BasePolicyKind, PolicySpec};
/// use gaia_carbon::Region;
/// use gaia_sweep::SweepGrid;
///
/// let grid = SweepGrid::week(9)
///     .policies(vec![
///         PolicySpec::plain(BasePolicyKind::NoWait),
///         PolicySpec::plain(BasePolicyKind::CarbonTime),
///     ])
///     .regions(vec![Region::SouthAustralia, Region::California])
///     .seeds(vec![1, 2, 3]);
/// assert_eq!(grid.len(), 12);
/// assert_eq!(grid.scenarios().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Policies under comparison (innermost dimension).
    pub policies: Vec<PolicySpec>,
    /// Carbon regions (outermost dimension).
    pub regions: Vec<Region>,
    /// Workload families.
    pub families: Vec<TraceFamily>,
    /// Workload scale (shared by all cells).
    pub scale: ScaleSpec,
    /// Seeds (one replicate per seed).
    pub seeds: Vec<u64>,
    /// Cluster shapes.
    pub clusters: Vec<ClusterSpec>,
    /// Queue configurations.
    pub queues: Vec<QueueSpec>,
}

impl SweepGrid {
    /// A week-scale grid with paper defaults in every dimension:
    /// Carbon-Time, SA-AU, Alibaba-PAI, seed 42, on-demand cluster
    /// billed over `billing_days`, 6×24 queues.
    pub fn week(billing_days: u64) -> SweepGrid {
        SweepGrid {
            policies: vec![PolicySpec::plain(
                gaia_core::catalog::BasePolicyKind::CarbonTime,
            )],
            regions: vec![Region::SouthAustralia],
            families: vec![TraceFamily::AlibabaPai],
            scale: ScaleSpec::Week,
            seeds: vec![42],
            clusters: vec![ClusterSpec::on_demand(billing_days)],
            queues: vec![QueueSpec::default()],
        }
    }

    /// A year-scale grid (`jobs` jobs) with the same defaults.
    pub fn year(jobs: usize, billing_days: u64) -> SweepGrid {
        SweepGrid {
            scale: ScaleSpec::Year { jobs },
            ..SweepGrid::week(billing_days)
        }
    }

    /// Replaces the policy dimension.
    pub fn policies(mut self, policies: Vec<PolicySpec>) -> SweepGrid {
        assert!(!policies.is_empty(), "grid needs at least one policy");
        self.policies = policies;
        self
    }

    /// Replaces the region dimension.
    pub fn regions(mut self, regions: Vec<Region>) -> SweepGrid {
        assert!(!regions.is_empty(), "grid needs at least one region");
        self.regions = regions;
        self
    }

    /// Replaces the workload-family dimension.
    pub fn families(mut self, families: Vec<TraceFamily>) -> SweepGrid {
        assert!(!families.is_empty(), "grid needs at least one family");
        self.families = families;
        self
    }

    /// Replaces the seed dimension.
    pub fn seeds(mut self, seeds: Vec<u64>) -> SweepGrid {
        assert!(!seeds.is_empty(), "grid needs at least one seed");
        self.seeds = seeds;
        self
    }

    /// Replaces the cluster dimension.
    pub fn clusters(mut self, clusters: Vec<ClusterSpec>) -> SweepGrid {
        assert!(!clusters.is_empty(), "grid needs at least one cluster");
        self.clusters = clusters;
        self
    }

    /// Replaces the queue dimension.
    pub fn queue_specs(mut self, queues: Vec<QueueSpec>) -> SweepGrid {
        assert!(!queues.is_empty(), "grid needs at least one queue spec");
        self.queues = queues;
        self
    }

    /// Total number of scenario cells.
    pub fn len(&self) -> usize {
        self.policies.len()
            * self.regions.len()
            * self.families.len()
            * self.seeds.len()
            * self.clusters.len()
            * self.queues.len()
    }

    /// Whether the grid is empty (it never is once constructed through
    /// the builders, which reject empty dimensions).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into scenario cells in the stable nesting order
    /// regions → families → seeds → clusters → queues → policies.
    ///
    /// The index of a cell in this expansion is its *grid index*; the
    /// executor merges parallel results back into this order, making
    /// sweep output independent of worker count and scheduling.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut cells = Vec::with_capacity(self.len());
        for &region in &self.regions {
            for &family in &self.families {
                for &seed in &self.seeds {
                    for &cluster in &self.clusters {
                        for &queues in &self.queues {
                            for &policy in &self.policies {
                                cells.push(Scenario {
                                    policy,
                                    region,
                                    family,
                                    scale: self.scale,
                                    seed,
                                    cluster,
                                    queues,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// A [`crate::SweepRunner`] over this grid — the single entry point
    /// for executing it. Every option (audit, faults, retries,
    /// observability, sharding, result cache) defaults to off.
    pub fn runner(&self) -> crate::SweepRunner<'_> {
        crate::SweepRunner::new(self)
    }

    /// One-line human description for manifests and progress output.
    pub fn describe(&self) -> String {
        format!(
            "{} policies x {} regions x {} families x {} seeds x {} clusters x {} queues = {} scenarios ({})",
            self.policies.len(),
            self.regions.len(),
            self.families.len(),
            self.seeds.len(),
            self.clusters.len(),
            self.queues.len(),
            self.len(),
            self.scale.token(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::catalog::BasePolicyKind;

    #[test]
    fn grid_expands_in_stable_order_with_policies_innermost() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![1, 2]);
        let cells = grid.scenarios();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[0].policy.base, BasePolicyKind::NoWait);
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells[1].policy.base, BasePolicyKind::CarbonTime);
        assert_eq!(cells[2].seed, 2);
        assert_eq!(cells[2].policy.base, BasePolicyKind::NoWait);
    }

    #[test]
    fn scenario_keys_are_stable_and_distinct() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .regions(vec![Region::SouthAustralia, Region::California])
            .seeds(vec![7, 8]);
        let keys: Vec<String> = grid.scenarios().iter().map(Scenario::key).collect();
        let mut unique = keys.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), keys.len(), "keys are distinct");
        assert_eq!(keys[0], "NoWait/SA-AU/Alibaba/week/s7/r0-ev0-b9d/q6x24");
    }

    #[test]
    fn cluster_spec_builds_config() {
        let config = ClusterSpec::on_demand(9)
            .with_reserved(5)
            .with_eviction(0.25)
            .build(13);
        assert_eq!(config.reserved_cpus, 5);
        assert_eq!(config.seed, 13);
        assert_eq!(config.billing_horizon, Some(Minutes::from_days(9)));
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn rejects_empty_policy_dimension() {
        let _ = SweepGrid::week(9).policies(Vec::new());
    }
}
