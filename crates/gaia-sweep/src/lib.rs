//! Deterministic parallel experiment orchestration for GAIA.
//!
//! Every figure and sensitivity study in the paper is, structurally, the
//! same computation: a cartesian grid of (policy, region, workload,
//! seed, cluster, queue) cells, one independent simulation per cell, and
//! an aggregation over the results. This crate factors that shape out of
//! the individual binaries:
//!
//! * [`SweepGrid`] / [`Scenario`] — declarative grid specs with stable
//!   per-cell keys and a stable expansion order ([`grid`]);
//! * [`TraceCache`] — memoizes carbon and workload traces across cells
//!   so each (region, seed) / (family, scale, seed) trace is synthesized
//!   once and shared read-only between workers ([`cache`]);
//! * [`Executor`] — a crossbeam worker pool that fans cells across N
//!   threads and merges results back in grid order, making sweep output
//!   **byte-identical for any worker count** ([`exec`]);
//! * [`ResultStore`] — run manifests plus per-scenario and aggregate
//!   CSV/JSON artifacts under `results/` ([`store`]);
//! * [`across_seed_groups`] — deterministic across-seed aggregation
//!   ([`agg`]);
//! * [`ObsHooks`] — opt-in observability taps: per-cell JSONL event
//!   traces, a [`gaia_obs::MetricsRegistry`], phase profiling, and a
//!   sweep-lifecycle stream, none of which change simulation outcomes;
//! * [`SweepRunner`] — the one entry point for executing a grid
//!   ([`SweepGrid::runner`]), with builder options for auditing, fault
//!   schedules, retry policies, observability, **sharding** (run cell
//!   subset `i` of `n` as an independent OS process, [`shard`]), and a
//!   **content-addressed on-disk result cache** that makes interrupted
//!   or repeated sweeps resumable ([`SweepRunner::resume`]).
//!
//! The determinism contract is load-bearing: per-cell simulation is
//! single-threaded and fully seed-driven, so parallelism only changes
//! wall-clock time, never results. `tests/determinism.rs` verifies this
//! by byte-comparing the artifacts of 1-worker and multi-worker runs of
//! the same grid, and `tests/sharding.rs` extends the same contract to
//! shard counts: `n` sharded processes plus [`shard::merge_shards`]
//! reproduce a single-process run byte-for-byte.
//!
//! # Example
//!
//! ```
//! use gaia_core::catalog::{BasePolicyKind, PolicySpec};
//! use gaia_sweep::{Executor, SweepGrid};
//!
//! let grid = SweepGrid::week(9)
//!     .policies(vec![
//!         PolicySpec::plain(BasePolicyKind::NoWait),
//!         PolicySpec::plain(BasePolicyKind::CarbonTime),
//!     ])
//!     .seeds(vec![1, 2]);
//! let run = grid
//!     .runner()
//!     .executor(&Executor::new(2).with_progress(false))
//!     .execute()
//!     .expect("no cache/trace dirs configured, so no I/O can fail");
//! assert_eq!(run.results.len(), 4);
//! let (nowait, ct) = (run.results[0].expect_summary(), run.results[1].expect_summary());
//! assert!(ct.carbon_g <= nowait.carbon_g * 1.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod cache;
mod codec;
mod diskcache;
pub mod exec;
pub mod grid;
pub mod shard;
pub mod store;

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

pub use agg::{across_seed_groups, group_key, GroupSummary};
pub use cache::{CacheStats, TraceCache};
pub use diskcache::{DiskCacheStats, RESULT_CACHE_VERSION};
pub use exec::{default_workers, Executor};
pub use grid::{ClusterSpec, QueueSpec, ScaleSpec, Scenario, SweepGrid};
pub use store::{atomic_write, ResultStore, TimingBench};

use diskcache::{CellEntry, DiskCache, EntryNeeds};

// Re-exported so downstream sweep code can name every grid-dimension
// type through one crate.
pub use gaia_carbon::Region;
pub use gaia_core::catalog::PolicySpec;
pub use gaia_workload::synth::TraceFamily;

use gaia_metrics::{observe, Summary};
use gaia_obs::{
    CacheKind, Event, JsonlSink, MetricsRegistry, NullSink, Profiler, SharedSink, Sink,
};
use gaia_sim::{AuditReport, Simulation};

// Re-exported so sweep drivers can load fault plans and name schedule
// types without depending on gaia-fault directly.
pub use gaia_fault::{FaultError, FaultPlan, FaultSchedule, FaultSpec};

/// How one scenario cell ended.
///
/// Sweeps isolate failures: a policy returning an invalid decision (a
/// typed [`gaia_sim::SimError`]) fails its own cell and the rest of the
/// grid still completes. Failed cells are excluded from aggregation and
/// reported through the run manifest and the CLI exit code.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The simulation finished. `audit` carries the invariant-audit
    /// report when auditing was enabled for the sweep.
    Completed {
        /// Metrics of the simulation.
        summary: Summary,
        /// Invariant-audit report (`None` when auditing was off).
        audit: Option<AuditReport>,
    },
    /// The simulation finished, but only after at least one failed
    /// attempt was retried under a [`RetryPolicy`]. The recovery
    /// provenance (attempt count and the last failure) is preserved so
    /// manifests can distinguish first-try cells from recovered ones.
    Retried {
        /// Metrics of the (eventually successful) simulation.
        summary: Summary,
        /// Invariant-audit report (`None` when auditing was off).
        audit: Option<AuditReport>,
        /// Total attempts including the successful one (always ≥ 2).
        attempts: u32,
        /// `true` when at least one failed attempt overran its
        /// [`RetryPolicy::timeout`]. Preserved separately from
        /// `recovered_error` so a cell that timed out early and then
        /// failed differently still carries its timeout provenance.
        timed_out: bool,
        /// The error message of the last failed attempt.
        recovered_error: String,
    },
    /// The simulation was rejected with a typed error.
    Failed {
        /// Display rendering of the [`gaia_sim::SimError`].
        error: String,
    },
}

/// The outcome of one scenario cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The cell that was simulated.
    pub scenario: Scenario,
    /// The cell's stable key ([`Scenario::key`]).
    pub key: String,
    /// What happened when the cell ran.
    pub outcome: CellOutcome,
}

impl ScenarioResult {
    /// The cell's summary, if it (eventually) completed.
    pub fn summary(&self) -> Option<&Summary> {
        match &self.outcome {
            CellOutcome::Completed { summary, .. } | CellOutcome::Retried { summary, .. } => {
                Some(summary)
            }
            CellOutcome::Failed { .. } => None,
        }
    }

    /// The cell's audit report, if it completed under auditing.
    pub fn audit(&self) -> Option<&AuditReport> {
        match &self.outcome {
            CellOutcome::Completed { audit, .. } | CellOutcome::Retried { audit, .. } => {
                audit.as_ref()
            }
            CellOutcome::Failed { .. } => None,
        }
    }

    /// The cell's error message, if it failed for good. Recovered cells
    /// ([`CellOutcome::Retried`]) report `None` here; their transient
    /// failure is available through [`retry_provenance`].
    ///
    /// [`retry_provenance`]: ScenarioResult::retry_provenance
    pub fn error(&self) -> Option<&str> {
        match &self.outcome {
            CellOutcome::Completed { .. } | CellOutcome::Retried { .. } => None,
            CellOutcome::Failed { error } => Some(error),
        }
    }

    /// `(attempts, timed out, last recovered error)` when the cell
    /// completed only after retries; `None` for first-try completions
    /// and failures. The `timed out` flag is `true` when any failed
    /// attempt overran its per-attempt wall-clock budget — a cell can
    /// therefore carry **both** timeout and retry provenance, and
    /// `scenarios.csv` renders such cells as `timed_out;retried:N`.
    pub fn retry_provenance(&self) -> Option<(u32, bool, &str)> {
        match &self.outcome {
            CellOutcome::Retried {
                attempts,
                timed_out,
                recovered_error,
                ..
            } => Some((*attempts, *timed_out, recovered_error.as_str())),
            _ => None,
        }
    }

    /// The cell's summary; panics (naming the cell) if it failed.
    pub fn expect_summary(&self) -> &Summary {
        match &self.outcome {
            CellOutcome::Completed { summary, .. } | CellOutcome::Retried { summary, .. } => {
                summary
            }
            CellOutcome::Failed { error } => {
                panic!("scenario cell {} failed: {error}", self.key)
            }
        }
    }

    /// Audit violations found in this cell (0 when unaudited or failed).
    pub fn audit_violations(&self) -> usize {
        self.audit().map_or(0, |report| report.violations.len())
    }
}

/// A completed sweep: the grid, its results in grid order, and
/// execution metadata for the run manifest.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The grid that was swept.
    pub grid: SweepGrid,
    /// Worker threads used.
    pub workers: usize,
    /// One result per cell, in grid order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
    /// Trace-cache hit/miss counters accumulated during the sweep.
    pub cache_stats: CacheStats,
    /// Whether the invariant audit ran on each completed cell.
    pub audited: bool,
    /// `Some((i, n))` when this run executed only shard `i` of `n`
    /// ([`SweepRunner::shard`]); `results` then holds only that shard's
    /// cells, still in grid order.
    pub shard: Option<(usize, usize)>,
    /// Result-cache counters when the run used an on-disk result cache
    /// ([`SweepRunner::resume`]); `None` otherwise.
    pub disk_cache: Option<DiskCacheStats>,
}

impl SweepRun {
    /// The summaries in grid order (convenience for figure code that
    /// only needs metrics, not scenario metadata).
    ///
    /// # Panics
    ///
    /// Panics (naming the cell) if any cell failed; figure code that
    /// calls this assumes an all-green sweep. Check [`failed_cells`]
    /// first when failures are possible.
    ///
    /// [`failed_cells`]: SweepRun::failed_cells
    pub fn summaries(&self) -> Vec<Summary> {
        self.results
            .iter()
            .map(|r| r.expect_summary().clone())
            .collect()
    }

    /// Total audit violations across all completed cells.
    pub fn audit_violations(&self) -> usize {
        self.results.iter().map(|r| r.audit_violations()).sum()
    }

    /// The cells that failed with a typed simulation error.
    pub fn failed_cells(&self) -> Vec<&ScenarioResult> {
        self.results
            .iter()
            .filter(|r| r.error().is_some())
            .collect()
    }

    /// The cells that completed only after at least one retry.
    pub fn retried_cells(&self) -> Vec<&ScenarioResult> {
        self.results
            .iter()
            .filter(|r| r.retry_provenance().is_some())
            .collect()
    }

    /// `true` when every cell completed and no audit violation was
    /// found. Cells that recovered through retries count as completed —
    /// their provenance stays visible via [`retried_cells`], but a
    /// recovered sweep is a usable sweep.
    ///
    /// [`retried_cells`]: SweepRun::retried_cells
    pub fn is_clean(&self) -> bool {
        self.failed_cells().is_empty() && self.audit_violations() == 0
    }
}

/// How failed cell attempts are retried.
///
/// Retries exist for *transient* failures — chaos-injected cell faults
/// ([`FaultSpec::ChaosCell`]) and, in real deployments, OOM-killed or
/// preempted workers. A deterministic simulation error (an invalid
/// policy decision) fails identically on every attempt; retrying it
/// just wastes `max_attempts − 1` runs, which is why the default is no
/// retry at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell, including the first. `1` disables
    /// retries entirely (the default).
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles on each further attempt
    /// and is capped at 30 s. Wall-clock only — backoff can never
    /// change a result, because each attempt is deterministic in the
    /// scenario's seed.
    pub backoff: Duration,
    /// Optional wall-clock budget per attempt. When set, each attempt
    /// runs on a **detached thread**; an attempt that overruns is
    /// counted as a failed attempt and its thread is *leaked* (std
    /// threads cannot be cancelled) — it finishes in the background and
    /// its result is discarded.
    ///
    /// This is the one knob that trades determinism for liveness:
    /// whether an attempt beats its deadline depends on machine load,
    /// so timed sweeps are **not** covered by the byte-identity
    /// contract. It stays `None` (off) by default and is excluded from
    /// the determinism test matrix.
    pub timeout: Option<Duration>,
    /// Per-retry multiplier on [`RetryPolicy::timeout`]: attempt `n`
    /// gets a budget of `timeout · timeout_scale^(n−1)`, capped at one
    /// hour. `1` (the default) keeps every attempt's budget equal; a
    /// larger scale lets a cell that timed out under a too-tight budget
    /// actually recover on retry instead of timing out identically
    /// `max_attempts` times.
    pub timeout_scale: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            timeout: None,
            timeout_scale: 1,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts (no backoff, no
    /// timeout).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero — a cell always runs at least
    /// once.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        assert!(max_attempts >= 1, "a cell always runs at least once");
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Sets the base backoff slept before the second attempt.
    pub fn with_backoff(mut self, backoff: Duration) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Sets the per-attempt wall-clock budget (see [`RetryPolicy::timeout`]).
    pub fn with_timeout(mut self, timeout: Duration) -> RetryPolicy {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the per-retry budget multiplier (see
    /// [`RetryPolicy::timeout_scale`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero — a zero budget would fail every retry
    /// before it starts.
    pub fn with_timeout_scale(mut self, scale: u32) -> RetryPolicy {
        assert!(scale >= 1, "the timeout scale must be at least 1");
        self.timeout_scale = scale;
        self
    }

    /// The wall-clock budget for attempt number `attempt` (1-based):
    /// `timeout · timeout_scale^(attempt−1)`, capped at one hour.
    /// `None` when no timeout is configured.
    pub fn timeout_for(&self, attempt: u32) -> Option<Duration> {
        const CAP: Duration = Duration::from_secs(3600);
        let timeout = self.timeout?;
        let factor = self
            .timeout_scale
            .saturating_pow(attempt.saturating_sub(1).min(16));
        Some(timeout.checked_mul(factor).unwrap_or(CAP).min(CAP))
    }

    /// The exponential-backoff pause after failed attempt number
    /// `attempt` (1-based): `backoff · 2^(attempt−1)`, capped at 30 s.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        const CAP: Duration = Duration::from_secs(30);
        let doubled = self
            .backoff
            .checked_mul(1u32 << attempt.saturating_sub(1).min(16))
            .unwrap_or(CAP);
        doubled.min(CAP)
    }
}

/// Fault-aware execution options for a sweep: a compiled fault schedule
/// applied to every cell's simulation, plus the per-cell retry policy.
///
/// The default (`no schedule, no retries`) makes every faulted entry
/// point behave exactly like its unfaulted counterpart.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultOptions<'f> {
    /// Compiled fault schedule handed to each cell's simulation via
    /// [`Simulation::with_faults`]. Engine-level specs (storms, outages,
    /// spikes, capacity drops, trace gaps) replay inside every cell;
    /// [`FaultSpec::ChaosCell`] specs act at the sweep-harness level by
    /// failing matching cells' first N attempts.
    pub schedule: Option<&'f FaultSchedule>,
    /// How failed attempts are retried.
    pub retry: RetryPolicy,
}

/// Runs one scenario cell: materializes its traces through `cache`,
/// builds the queue set and cluster config, and simulates the policy.
/// Fully deterministic in the scenario's seed.
///
/// # Panics
///
/// Panics on an invalid policy decision; use [`run_cell`] for the
/// failure-isolating variant the sweep drivers use.
pub fn run_scenario(scenario: &Scenario, cache: &TraceCache) -> Summary {
    match run_cell(scenario, cache, false) {
        CellOutcome::Completed { summary, .. } | CellOutcome::Retried { summary, .. } => summary,
        CellOutcome::Failed { error } => panic!("{error}"),
    }
}

/// Runs one scenario cell, returning typed failure instead of panicking
/// and — when `audit` is set — the invariant-audit report of the run.
/// Fully deterministic in the scenario's seed.
pub fn run_cell(scenario: &Scenario, cache: &TraceCache, audit: bool) -> CellOutcome {
    run_cell_traced(scenario, cache, audit, &mut NullSink, None, None)
}

/// [`run_cell`] with observability taps: lifecycle events into `sink`,
/// per-job metrics into `metrics`, and phase timings into `profiler`.
///
/// With [`NullSink`] and both options `None` this is exactly
/// [`run_cell`] — the instrumentation compiles out, and neither metrics
/// nor profiling can change the outcome, so the determinism contract is
/// unaffected.
pub fn run_cell_traced<S: Sink>(
    scenario: &Scenario,
    cache: &TraceCache,
    audit: bool,
    sink: &mut S,
    metrics: Option<&MetricsRegistry>,
    profiler: Option<&Profiler>,
) -> CellOutcome {
    run_cell_faulted(scenario, cache, audit, None, sink, metrics, profiler)
}

/// [`run_cell_traced`] with an optional compiled fault schedule applied
/// to the cell's simulation. `faults: None` is exactly
/// [`run_cell_traced`]; an empty schedule is discarded by
/// [`Simulation::with_faults`], so it too leaves results byte-identical.
///
/// Only the engine-level fault specs act here; [`FaultSpec::ChaosCell`]
/// is a harness-level fault handled by the grid drivers' retry loop.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_faulted<S: Sink>(
    scenario: &Scenario,
    cache: &TraceCache,
    audit: bool,
    faults: Option<&FaultSchedule>,
    sink: &mut S,
    metrics: Option<&MetricsRegistry>,
    profiler: Option<&Profiler>,
) -> CellOutcome {
    let carbon = cache.carbon(scenario.region, scenario.seed);
    let workload = cache.workload(scenario.family, scenario.scale, scenario.seed);
    simulate_cell(
        scenario, &carbon, &workload, faults, audit, sink, metrics, profiler,
    )
}

/// The shared simulation body of the cell runners, operating on already
/// materialized traces (so the timed-attempt harness can move the trace
/// lookups off the billed clock and onto the calling thread).
#[allow(clippy::too_many_arguments)]
fn simulate_cell<S: Sink>(
    scenario: &Scenario,
    carbon: &gaia_carbon::CarbonTrace,
    workload: &gaia_workload::WorkloadTrace,
    faults: Option<&FaultSchedule>,
    audit: bool,
    sink: &mut S,
    metrics: Option<&MetricsRegistry>,
    profiler: Option<&Profiler>,
) -> CellOutcome {
    let queues = scenario.queues.build(workload);
    let config = scenario.cluster.build(scenario.seed);
    let mut scheduler = scenario.policy.build(queues);
    let mut sim = Simulation::new(config, carbon);
    if let Some(schedule) = faults {
        sim = sim.with_faults(schedule);
    }
    if let Some(p) = profiler {
        sim = sim.with_profiler(p);
    }
    match sim
        .runner(workload, &mut scheduler)
        .sink(sink)
        .audit(audit)
        .execute()
    {
        Ok(run) => {
            if let Some(registry) = metrics {
                observe::observe_report(registry, &run.report);
            }
            CellOutcome::Completed {
                summary: Summary::of(scenario.policy.name(), &run.report),
                audit: run.audit,
            }
        }
        Err(error) => CellOutcome::Failed {
            error: error.to_string(),
        },
    }
}

/// Shared shape of the timeout failure message, so the retry loop can
/// classify a recovered attempt's failure as a timeout without keeping
/// two copies of the text in sync.
const TIMEOUT_ERROR_PREFIX: &str = "attempt exceeded the ";
const TIMEOUT_ERROR_SUFFIX: &str = "s cell timeout";

/// `true` when `error` is a per-attempt timeout produced by
/// [`run_attempt_timed`].
fn is_timeout_error(error: &str) -> bool {
    error.starts_with(TIMEOUT_ERROR_PREFIX) && error.ends_with(TIMEOUT_ERROR_SUFFIX)
}

/// Runs one attempt of a cell under a wall-clock budget, on a detached
/// thread.
///
/// The cell's traces are materialized through `cache` *before* the
/// clock starts, so shared trace synthesis is never billed to an
/// individual cell. On timeout the worker thread is leaked (std threads
/// cannot be cancelled); it runs to completion in the background and
/// its result is discarded. Per-job metrics and phase profiling are
/// skipped on this path — the registry and profiler borrows cannot
/// cross into a detached thread — but sweep-level counters still apply.
fn run_attempt_timed(
    scenario: &Scenario,
    cache: &TraceCache,
    audit: bool,
    faults: Option<&FaultSchedule>,
    traced: bool,
    timeout: Duration,
) -> (CellOutcome, Option<Vec<u8>>) {
    let carbon = cache.carbon(scenario.region, scenario.seed);
    let workload = cache.workload(scenario.family, scenario.scale, scenario.seed);
    let scenario = *scenario;
    let faults = faults.cloned();
    let (tx, rx) = std::sync::mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("gaia-sweep-timed-cell".to_owned())
        .spawn(move || {
            let result = if traced {
                let mut sink = JsonlSink::new(Vec::new());
                let outcome = simulate_cell(
                    &scenario,
                    &carbon,
                    &workload,
                    faults.as_ref(),
                    audit,
                    &mut sink,
                    None,
                    None,
                );
                // Vec<u8> writes are infallible; finish only flushes.
                (outcome, Some(sink.finish().unwrap_or_default()))
            } else {
                let outcome = simulate_cell(
                    &scenario,
                    &carbon,
                    &workload,
                    faults.as_ref(),
                    audit,
                    &mut NullSink,
                    None,
                    None,
                );
                (outcome, None)
            };
            // The receiver is gone if we overran the deadline; the
            // result is intentionally discarded then.
            let _ = tx.send(result);
        });
    match spawned {
        Ok(_detached) => match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => (
                CellOutcome::Failed {
                    error: format!(
                        "{TIMEOUT_ERROR_PREFIX}{:.3}{TIMEOUT_ERROR_SUFFIX}",
                        timeout.as_secs_f64()
                    ),
                },
                None,
            ),
        },
        Err(error) => (
            CellOutcome::Failed {
                error: format!("could not spawn timed cell attempt: {error}"),
            },
            None,
        ),
    }
}

/// Builder for executing a [`SweepGrid`] — the single entry point for
/// sweeps, replacing the old `run_grid*` function family.
///
/// Obtained from [`SweepGrid::runner`]. Every option defaults to off,
/// so `grid.runner().execute()` is a plain unaudited sweep on an
/// auto-sized executor; options compose freely instead of multiplying
/// entry points:
///
/// ```
/// use gaia_core::catalog::{BasePolicyKind, PolicySpec};
/// use gaia_sweep::{Executor, SweepGrid};
///
/// let grid = SweepGrid::week(9)
///     .policies(vec![PolicySpec::plain(BasePolicyKind::NoWait)])
///     .seeds(vec![1]);
/// let run = grid
///     .runner()
///     .executor(&Executor::new(1).with_progress(false))
///     .audit(true)
///     .execute()
///     .expect("no I/O configured");
/// assert!(run.is_clean());
/// ```
///
/// Sharding and resumability are builder options, not further entry
/// points: [`shard`](SweepRunner::shard) deterministically restricts
/// execution to cell subset `i` of `n` (see [`shard::shard_of`]), and
/// [`resume`](SweepRunner::resume) attaches a content-addressed on-disk
/// result cache ([`diskcache`](RESULT_CACHE_VERSION)) so already
/// completed cells are replayed from disk instead of recomputed.
///
/// # Determinism
///
/// With [`RetryPolicy::timeout`] unset (the default), the produced
/// [`SweepRun`] and every derived artifact are byte-identical for any
/// worker count, any shard count (after [`shard::merge_shards`]), and
/// any warm/cold cache state. A timed sweep forfeits that guarantee —
/// see [`RetryPolicy::timeout`].
#[must_use = "a runner does nothing until `.execute()` is called"]
pub struct SweepRunner<'r> {
    grid: &'r SweepGrid,
    executor: Option<Executor>,
    cache: Option<&'r TraceCache>,
    audit: bool,
    schedule: Option<&'r FaultSchedule>,
    retry: RetryPolicy,
    hooks: Option<&'r ObsHooks<'r>>,
    shard: Option<(usize, usize)>,
    resume: Option<PathBuf>,
}

impl<'r> SweepRunner<'r> {
    /// A runner over `grid` with every option off (equivalent to
    /// [`SweepGrid::runner`]).
    pub fn new(grid: &'r SweepGrid) -> SweepRunner<'r> {
        SweepRunner {
            grid,
            executor: None,
            cache: None,
            audit: false,
            schedule: None,
            retry: RetryPolicy::default(),
            hooks: None,
            shard: None,
            resume: None,
        }
    }

    /// Runs on a copy of `executor` instead of the default
    /// [`Executor::available`].
    pub fn executor(mut self, executor: &Executor) -> SweepRunner<'r> {
        self.executor = Some(*executor);
        self
    }

    /// Shorthand for [`executor`](SweepRunner::executor) with
    /// `Executor::new(workers)`.
    pub fn workers(mut self, workers: usize) -> SweepRunner<'r> {
        self.executor = Some(Executor::new(workers));
        self
    }

    /// Shares `cache` across runs (useful when several grids over the
    /// same traces run back to back). A fresh [`TraceCache`] is used
    /// when unset.
    pub fn cache(mut self, cache: &'r TraceCache) -> SweepRunner<'r> {
        self.cache = Some(cache);
        self
    }

    /// Enables the invariant audit: every completed cell carries an
    /// [`AuditReport`] and failed cells are isolated instead of
    /// aborting the process. This is what `gaia sweep` runs by default.
    pub fn audit(mut self, audit: bool) -> SweepRunner<'r> {
        self.audit = audit;
        self
    }

    /// Applies a compiled fault schedule to every cell. Engine-level
    /// specs replay deterministically inside each cell's simulation;
    /// [`FaultSpec::ChaosCell`] specs fail matching cells' first N
    /// attempts at the harness level, which is what exercises the
    /// retry loop in CI.
    pub fn faults(mut self, schedule: &'r FaultSchedule) -> SweepRunner<'r> {
        self.schedule = Some(schedule);
        self
    }

    /// Sets how failed cell attempts are retried.
    pub fn retry(mut self, retry: RetryPolicy) -> SweepRunner<'r> {
        self.retry = retry;
        self
    }

    /// Attaches observability taps (none of which change outcomes).
    pub fn obs(mut self, hooks: &'r ObsHooks<'r>) -> SweepRunner<'r> {
        self.hooks = Some(hooks);
        self
    }

    /// Restricts execution to shard `index` of `of`: the deterministic
    /// cell subset with `shard::shard_of(key, of) == index`. The
    /// returned [`SweepRun`] holds only that shard's cells (in grid
    /// order); [`shard::write_shard`] persists it for
    /// [`shard::merge_shards`] to recombine.
    ///
    /// # Panics
    ///
    /// Panics if `of` is zero or `index >= of`.
    pub fn shard(mut self, index: usize, of: usize) -> SweepRunner<'r> {
        assert!(of >= 1, "a sweep has at least one shard");
        assert!(index < of, "shard index {index} out of range (of {of})");
        self.shard = Some((index, of));
        self
    }

    /// Attaches the content-addressed on-disk result cache rooted at
    /// `dir` (created if missing). Cells whose full inputs fingerprint
    /// to an existing usable entry are replayed from disk; freshly
    /// computed cells are persisted atomically. Pointing a re-run of an
    /// interrupted sweep at the same directory is all resumption takes.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> SweepRunner<'r> {
        self.resume = Some(dir.into());
        self
    }

    /// Executes the sweep. Fails only on observability / cache-dir I/O
    /// errors (trace-dir or cache-dir creation); simulation failures
    /// are isolated per cell and reported in the [`SweepRun`].
    pub fn execute(self) -> std::io::Result<SweepRun> {
        if let Some(dir) = self.hooks.and_then(|h| h.trace_dir) {
            std::fs::create_dir_all(dir)?;
        }
        let disk = match &self.resume {
            Some(dir) => Some(DiskCache::open(dir)?),
            None => None,
        };
        let executor = self.executor.unwrap_or_else(Executor::available);
        let fresh;
        let cache = match self.cache {
            Some(cache) => cache,
            None => {
                fresh = TraceCache::new();
                &fresh
            }
        };
        Ok(run_grid_engine(
            self.grid,
            &executor,
            cache,
            self.audit,
            self.hooks,
            self.schedule,
            self.retry,
            self.shard,
            disk.as_ref(),
        ))
    }
}

/// Observability taps for [`SweepRunner::obs`]. All fields default to
/// off; each can be enabled independently.
#[derive(Default)]
pub struct ObsHooks<'o> {
    /// Per-job counters/histograms recorded per completed cell, plus
    /// sweep-level cache and cell counters. Atomic and commutative, so
    /// snapshots are byte-identical for any worker count.
    pub metrics: Option<&'o MetricsRegistry>,
    /// Phase timers (`trace_gen` via the cache's own profiler, `plan`,
    /// `event_loop`, `audit`). Wall-clock; reporting only.
    pub profiler: Option<&'o Profiler>,
    /// Write one `<cell key>.jsonl` event stream per cell into this
    /// directory (created if missing; `/` in keys becomes `_`). Each
    /// file is deterministic in the cell's scenario.
    pub trace_dir: Option<&'o Path>,
    /// Coarse sweep-lifecycle stream (`CellStarted`/`CellFinished`).
    /// Ordering across workers is scheduling-dependent — a progress
    /// feed, not a deterministic artifact.
    pub sweep_sink: Option<SharedSink>,
}

impl ObsHooks<'_> {
    /// The per-cell trace file name for `key` (`/` → `_`, plus `.jsonl`).
    ///
    /// Unambiguous for grid keys: every [`Scenario::key`] component is
    /// `/`-separated and `_`-free.
    pub fn trace_file_name(key: &str) -> String {
        format!("{}.jsonl", key.replace('/', "_"))
    }
}

/// The sweep engine behind [`SweepRunner::execute`]. One code path
/// serves every option combination; sharding and the result cache are
/// parameters here, not variants.
#[allow(clippy::too_many_arguments)]
fn run_grid_engine(
    grid: &SweepGrid,
    executor: &Executor,
    cache: &TraceCache,
    audit: bool,
    hooks: Option<&ObsHooks<'_>>,
    schedule: Option<&FaultSchedule>,
    retry: RetryPolicy,
    shard_spec: Option<(usize, usize)>,
    disk: Option<&DiskCache>,
) -> SweepRun {
    let start_stats = cache.stats();
    let start = Instant::now();
    // Cells carry their original grid index so shard runs emit events
    // and manifests in global grid coordinates, not shard-local ones.
    let cells: Vec<(usize, Scenario)> = grid
        .scenarios()
        .into_iter()
        .enumerate()
        .filter(|(_, scenario)| match shard_spec {
            Some((index, of)) => shard::shard_of(&scenario.key(), of) == index,
            None => true,
        })
        .collect();
    if let (Some((index, of)), Some(sink)) = (shard_spec, hooks.and_then(|h| h.sweep_sink.as_ref()))
    {
        sink.clone().emit(&Event::ShardStarted {
            shard: index as u64,
            of: of as u64,
            cells: cells.len() as u64,
        });
    }
    let results = executor.run("grid", cells, |_, cell| {
        let (index, scenario) = (cell.0, &cell.1);
        let key = scenario.key();
        let (metrics, profiler) = match hooks {
            Some(hooks) => (hooks.metrics, hooks.profiler),
            None => (None, None),
        };
        if let Some(sink) = hooks.and_then(|h| h.sweep_sink.as_ref()) {
            sink.clone().emit(&Event::CellStarted {
                idx: index as u64,
                key: key.clone(),
            });
        }
        let cell_start = Instant::now();
        let trace_dir = hooks.and_then(|h| h.trace_dir);
        let fingerprint =
            disk.map(|_| diskcache::cell_fingerprint(scenario, schedule, retry.max_attempts));
        let cached = match (disk, fingerprint) {
            (Some(disk), Some(fingerprint)) => {
                let needs = EntryNeeds {
                    audit,
                    trace: trace_dir.is_some(),
                    metrics: metrics.is_some(),
                };
                let entry = disk.lookup(scenario, fingerprint, needs);
                if let Some(sink) = hooks.and_then(|h| h.sweep_sink.as_ref()) {
                    sink.clone().emit(&if entry.is_some() {
                        Event::CacheHit {
                            kind: CacheKind::Result,
                            key: key.clone(),
                        }
                    } else {
                        Event::CacheMiss {
                            kind: CacheKind::Result,
                            key: key.clone(),
                        }
                    });
                }
                entry
            }
            _ => None,
        };
        let (outcome, trace_bytes) = if let Some(entry) = cached {
            // Replay the stored cell: metric contributions back into
            // the live registry, audit stripped when this run did not
            // ask for it (so warm and cold artifacts stay identical).
            if let (Some(registry), Some(bytes)) = (metrics, &entry.metrics) {
                let mut reader = codec::Reader::new(bytes);
                if let Err(reason) = codec::read_metrics_into(&mut reader, registry) {
                    gaia_obs::warn!("cached metrics for {key} were undecodable: {reason}");
                }
            }
            let mut outcome = entry.outcome;
            if !audit {
                if let CellOutcome::Completed { audit, .. } | CellOutcome::Retried { audit, .. } =
                    &mut outcome
                {
                    *audit = None;
                }
            }
            (outcome, entry.trace)
        } else {
            // Fresh cells observe into a per-cell scratch registry so
            // their metric contributions can be both merged into the
            // live registry and persisted for replay. The timed path
            // cannot capture per-job metrics (the registry borrow
            // cannot cross a detached thread), so it observes straight
            // into the live registry and caches entries metrics-less.
            let timed = retry.timeout.is_some();
            let scratch =
                (!timed && (metrics.is_some() || disk.is_some())).then(MetricsRegistry::new);
            let cell_metrics = scratch.as_ref();
            // Chaos faults are keyed to the cell, not the attempt seed:
            // a matching cell fails its first `chaos` attempts before
            // the simulation even starts, modelling infrastructure-level
            // losses (preempted workers, OOM kills) rather than
            // simulation errors.
            let chaos = schedule.map_or(0, |s| s.chaos_fail_attempts(&key));
            let mut attempt = 0u32;
            let mut recovered: Option<String> = None;
            let mut timed_out = false;
            let (outcome, trace_bytes) = loop {
                attempt += 1;
                let (result, bytes) = if attempt <= chaos {
                    let error =
                        format!("injected chaos fault ({attempt} of {chaos} attempts fail)");
                    (CellOutcome::Failed { error }, None)
                } else if let Some(timeout) = retry.timeout_for(attempt) {
                    run_attempt_timed(
                        scenario,
                        cache,
                        audit,
                        schedule,
                        trace_dir.is_some(),
                        timeout,
                    )
                } else if trace_dir.is_some() {
                    let mut sink = JsonlSink::new(Vec::new());
                    let outcome = run_cell_faulted(
                        scenario,
                        cache,
                        audit,
                        schedule,
                        &mut sink,
                        cell_metrics,
                        profiler,
                    );
                    // Vec<u8> writes are infallible; finish only flushes.
                    (outcome, Some(sink.finish().unwrap_or_default()))
                } else {
                    let outcome = run_cell_faulted(
                        scenario,
                        cache,
                        audit,
                        schedule,
                        &mut NullSink,
                        cell_metrics,
                        profiler,
                    );
                    (outcome, None)
                };
                match result {
                    CellOutcome::Failed { error } if attempt < retry.max_attempts => {
                        timed_out |= is_timeout_error(&error);
                        gaia_obs::warn!(
                            "cell {key} failed on attempt {attempt}/{}, retrying: {error}",
                            retry.max_attempts
                        );
                        if let Some(sink) = hooks.and_then(|h| h.sweep_sink.as_ref()) {
                            sink.clone().emit(&Event::CellRetried {
                                idx: index as u64,
                                key: key.clone(),
                                attempt: u64::from(attempt),
                                error: error.clone(),
                            });
                        }
                        match (cell_metrics, metrics) {
                            (Some(registry), _) | (None, Some(registry)) => {
                                registry.counter("sweep.cells_retried").inc();
                            }
                            _ => {}
                        }
                        recovered = Some(error);
                        let pause = retry.backoff_before(attempt);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                    }
                    CellOutcome::Completed { summary, audit } if attempt > 1 => {
                        break (
                            CellOutcome::Retried {
                                summary,
                                audit,
                                attempts: attempt,
                                timed_out,
                                recovered_error: recovered.take().unwrap_or_default(),
                            },
                            bytes,
                        );
                    }
                    final_outcome => break (final_outcome, bytes),
                }
            };
            if let (Some(live), Some(cell)) = (metrics, scratch.as_ref()) {
                live.merge_from(cell);
            }
            if let (Some(disk), Some(fingerprint)) = (disk, fingerprint) {
                // Failed cells are never cached (the next run should
                // retry them), and neither is anything that timed out —
                // a timeout is machine load, not a result.
                let cacheable = match &outcome {
                    CellOutcome::Completed { .. } => true,
                    CellOutcome::Retried { timed_out, .. } => !timed_out,
                    CellOutcome::Failed { .. } => false,
                };
                if cacheable {
                    let entry = CellEntry {
                        outcome: outcome.clone(),
                        trace: trace_bytes.clone(),
                        metrics: scratch.as_ref().map(|cell| {
                            let mut w = codec::Writer::new();
                            codec::write_metrics(&mut w, cell);
                            w.into_bytes()
                        }),
                    };
                    match disk.store(scenario, fingerprint, &entry) {
                        Ok(()) => {
                            if let Some(sink) = hooks.and_then(|h| h.sweep_sink.as_ref()) {
                                sink.clone().emit(&Event::CachePersist {
                                    kind: CacheKind::Result,
                                    key: key.clone(),
                                });
                            }
                        }
                        Err(error) => {
                            gaia_obs::warn!("could not cache result for {key}: {error}");
                        }
                    }
                }
            }
            (outcome, trace_bytes)
        };
        if let (Some(dir), Some(bytes)) = (trace_dir, trace_bytes) {
            let path = dir.join(ObsHooks::trace_file_name(&key));
            if let Err(error) = std::fs::write(&path, bytes) {
                gaia_obs::warn!("failed to write trace {}: {error}", path.display());
                if let Some(registry) = metrics {
                    registry.counter("obs.trace_write_errors").inc();
                }
            }
        }
        if let Some(sink) = hooks.and_then(|h| h.sweep_sink.as_ref()) {
            sink.clone().emit(&Event::CellFinished {
                idx: index as u64,
                key: key.clone(),
                status: match &outcome {
                    CellOutcome::Completed { .. } => "completed".to_owned(),
                    CellOutcome::Retried { .. } => "retried".to_owned(),
                    CellOutcome::Failed { .. } => "failed".to_owned(),
                },
                queue_wait_s: cell_start.duration_since(start).as_secs_f64(),
                exec_s: cell_start.elapsed().as_secs_f64(),
            });
        }
        ScenarioResult {
            scenario: *scenario,
            key,
            outcome,
        }
    });
    if let (Some((index, of)), Some(sink)) = (shard_spec, hooks.and_then(|h| h.sweep_sink.as_ref()))
    {
        let failed = results.iter().filter(|r| r.error().is_some()).count();
        sink.clone().emit(&Event::ShardFinished {
            shard: index as u64,
            of: of as u64,
            completed: (results.len() - failed) as u64,
            failed: failed as u64,
        });
    }
    let end_stats = cache.stats();
    let cache_delta = CacheStats {
        hits: end_stats.hits - start_stats.hits,
        misses: end_stats.misses - start_stats.misses,
        entries: end_stats.entries,
    };
    if let Some(registry) = hooks.and_then(|h| h.metrics) {
        registry.counter("sweep.cells").add(results.len() as u64);
        let failed = results.iter().filter(|r| r.error().is_some()).count();
        registry.counter("sweep.cells_failed").add(failed as u64);
        registry.counter("cache.hits").add(cache_delta.hits as u64);
        registry
            .counter("cache.misses")
            .add(cache_delta.misses as u64);
        // Residency at sweep end, not a delta: meaningful when one
        // registry serves one sweep (the CLI arrangement).
        registry
            .counter("cache.entries")
            .add(cache_delta.entries as u64);
        if let Some(disk) = disk {
            let stats = disk.stats();
            registry.counter("cache.result_hits").add(stats.hits);
            registry.counter("cache.result_misses").add(stats.misses);
            registry
                .counter("cache.result_persists")
                .add(stats.persists);
        }
    }
    SweepRun {
        grid: grid.clone(),
        workers: executor.workers(),
        results,
        wall: start.elapsed(),
        cache_stats: cache_delta,
        audited: audit,
        shard: shard_spec,
        disk_cache: disk.map(DiskCache::stats),
    }
}

/// Runs the configured sweep twice — serially, then with `workers`
/// threads — and reports the wall-clock comparison alongside the
/// parallel run. The results of the two runs are identical by the
/// determinism contract, so only the parallel run is returned.
///
/// Each leg runs on a **fresh, plain** configuration derived from
/// `runner` — its own trace cache, no result cache, no shard filter —
/// so the serial and parallel timings both pay full synthesis and
/// simulation cost and stay comparable (a warm result cache would
/// reduce the bench to disk-read timing).
pub fn time_runner(runner: SweepRunner<'_>, workers: usize) -> (SweepRun, TimingBench) {
    let (grid, audit) = (runner.grid, runner.audit);
    time_grid_inner(grid, workers, audit)
}

fn time_grid_inner(grid: &SweepGrid, workers: usize, audit: bool) -> (SweepRun, TimingBench) {
    let serial = run_grid_engine(
        grid,
        &Executor::new(1),
        &TraceCache::new(),
        audit,
        None,
        None,
        RetryPolicy::default(),
        None,
        None,
    );
    let parallel = run_grid_engine(
        grid,
        &Executor::new(workers),
        &TraceCache::new(),
        audit,
        None,
        None,
        RetryPolicy::default(),
        None,
        None,
    );
    let serial_secs = serial.wall.as_secs_f64();
    let parallel_secs = parallel.wall.as_secs_f64();
    let bench = TimingBench {
        serial_secs,
        parallel_secs,
        workers: parallel.workers,
        speedup: serial_secs / parallel_secs,
    };
    (parallel, bench)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::catalog::{BasePolicyKind, PolicySpec};

    #[test]
    fn run_scenario_matches_direct_runner_call() {
        let grid = SweepGrid::week(9);
        let scenario = grid.scenarios()[0];
        let cache = TraceCache::new();
        let sweep = run_scenario(&scenario, &cache);

        let carbon = gaia_carbon::synth::synthesize_region(scenario.region, scenario.seed);
        let workload = scenario.family.week_long_1k(scenario.seed);
        let direct = gaia_metrics::runner::run_spec(
            scenario.policy,
            &workload,
            &carbon,
            scenario.cluster.build(scenario.seed),
        );
        assert_eq!(
            sweep, direct,
            "sweep path reproduces the direct runner path"
        );
    }

    #[test]
    fn run_grid_returns_results_in_grid_order_with_keys() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![5, 6]);
        let run = grid
            .runner()
            .executor(&Executor::new(2).with_progress(false))
            .execute()
            .unwrap();
        let cells = grid.scenarios();
        assert_eq!(run.results.len(), cells.len());
        for (result, cell) in run.results.iter().zip(&cells) {
            assert_eq!(result.key, cell.key());
            assert_eq!(result.expect_summary().name, cell.policy.name());
        }
        assert!(!run.audited, "a plain runner leaves the audit off");
        assert!(run.shard.is_none() && run.disk_cache.is_none());
        assert!(run.is_clean());
    }

    #[test]
    fn audited_grid_reports_clean_cells() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![7]);
        let run = grid
            .runner()
            .executor(&Executor::new(2).with_progress(false))
            .audit(true)
            .execute()
            .unwrap();
        assert!(run.audited);
        assert!(run.is_clean(), "reference policies must audit clean");
        for result in &run.results {
            let audit = result.audit().expect("audited cell carries a report");
            assert!(audit.checks_run > 0);
            assert!(audit.is_clean());
        }
    }

    #[test]
    fn bad_plan_cell_fails_alone_without_aborting_the_sweep() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::BadPlan),
                PolicySpec::plain(BasePolicyKind::NoWait),
            ])
            .seeds(vec![1]);
        let run = grid
            .runner()
            .executor(&Executor::new(2).with_progress(false))
            .audit(true)
            .execute()
            .unwrap();
        assert!(!run.is_clean());
        let failed = run.failed_cells();
        assert_eq!(failed.len(), 1, "only the injected cell fails");
        assert!(failed[0].key.contains("Bad-Plan"));
        assert!(
            failed[0]
                .error()
                .unwrap()
                .contains("invalid policy decision"),
            "typed error surfaces: {:?}",
            failed[0].error()
        );
        assert!(run.results[1].summary().is_some(), "healthy cell completes");
    }

    #[test]
    fn observed_grid_matches_plain_grid_and_writes_traces() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![3]);
        let dir = std::env::temp_dir().join(format!("gaia-obs-grid-{}", std::process::id()));
        let registry = MetricsRegistry::new();
        let profiler = Profiler::new();
        let sweep_events = std::sync::Arc::new(std::sync::Mutex::new(gaia_obs::VecSink::new()));
        struct Probe(std::sync::Arc<std::sync::Mutex<gaia_obs::VecSink>>);
        impl Sink for Probe {
            fn emit(&mut self, event: &Event) {
                self.0.lock().unwrap().emit(event);
            }
        }
        let hooks = ObsHooks {
            metrics: Some(&registry),
            profiler: Some(&profiler),
            trace_dir: Some(&dir),
            sweep_sink: Some(SharedSink::new(Probe(std::sync::Arc::clone(&sweep_events)))),
        };
        let observed = grid
            .runner()
            .executor(&Executor::new(2).with_progress(false))
            .audit(true)
            .obs(&hooks)
            .execute()
            .expect("trace dir is creatable");
        let plain = grid
            .runner()
            .executor(&Executor::new(1).with_progress(false))
            .audit(true)
            .execute()
            .unwrap();
        assert_eq!(
            observed.results, plain.results,
            "observability must not change outcomes"
        );

        // Per-cell trace files exist, parse, and balance.
        let mut traced_jobs = 0;
        for result in &observed.results {
            let path = dir.join(ObsHooks::trace_file_name(&result.key));
            let text = std::fs::read_to_string(&path).expect("trace file written");
            let summary = gaia_obs::TraceSummary::from_jsonl(text.as_bytes()).expect("valid JSONL");
            assert!(summary.issues.is_empty(), "{:?}", summary.issues);
            assert_eq!(summary.jobs_completed, result.expect_summary().jobs as u64);
            traced_jobs += summary.jobs_completed;
        }
        std::fs::remove_dir_all(&dir).ok();

        // Metrics: per-job counters plus sweep/cache counters.
        assert_eq!(registry.counter("sim.jobs").get(), traced_jobs);
        assert_eq!(registry.counter("sweep.cells").get(), 2);
        assert_eq!(registry.counter("sweep.cells_failed").get(), 0);
        assert_eq!(registry.counter("cache.misses").get(), 2);
        assert_eq!(registry.counter("cache.hits").get(), 2);
        assert_eq!(registry.counter("cache.entries").get(), 2);

        // Profiler saw the engine and audit phases.
        let phases: Vec<&'static str> = profiler
            .snapshot()
            .iter()
            .map(|&(name, _, _)| name)
            .collect();
        assert!(phases.contains(&"event_loop"), "{phases:?}");
        assert!(phases.contains(&"plan"), "{phases:?}");
        assert!(phases.contains(&"audit"), "{phases:?}");

        // Sweep lifecycle stream: one start + one finish per cell.
        let events = sweep_events.lock().unwrap().events().to_vec();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::CellStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, Event::CellFinished { .. }))
            .count();
        assert_eq!((starts, finishes), (2, 2));
    }

    #[test]
    fn shared_cache_is_hit_across_cells() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
                PolicySpec::plain(BasePolicyKind::LowestWindow),
            ])
            .seeds(vec![1]);
        let run = grid
            .runner()
            .executor(&Executor::new(1).with_progress(false))
            .execute()
            .unwrap();
        // One carbon + one workload generation; the other 2×2 lookups hit.
        assert_eq!(run.cache_stats.misses, 2);
        assert_eq!(run.cache_stats.hits, 4);
    }
}
