//! Deterministic parallel experiment orchestration for GAIA.
//!
//! Every figure and sensitivity study in the paper is, structurally, the
//! same computation: a cartesian grid of (policy, region, workload,
//! seed, cluster, queue) cells, one independent simulation per cell, and
//! an aggregation over the results. This crate factors that shape out of
//! the individual binaries:
//!
//! * [`SweepGrid`] / [`Scenario`] — declarative grid specs with stable
//!   per-cell keys and a stable expansion order ([`grid`]);
//! * [`TraceCache`] — memoizes carbon and workload traces across cells
//!   so each (region, seed) / (family, scale, seed) trace is synthesized
//!   once and shared read-only between workers ([`cache`]);
//! * [`Executor`] — a crossbeam worker pool that fans cells across N
//!   threads and merges results back in grid order, making sweep output
//!   **byte-identical for any worker count** ([`exec`]);
//! * [`ResultStore`] — run manifests plus per-scenario and aggregate
//!   CSV/JSON artifacts under `results/` ([`store`]);
//! * [`across_seed_groups`] — deterministic across-seed aggregation
//!   ([`agg`]).
//!
//! The determinism contract is load-bearing: per-cell simulation is
//! single-threaded and fully seed-driven, so parallelism only changes
//! wall-clock time, never results. `tests/determinism.rs` verifies this
//! by byte-comparing the artifacts of 1-worker and multi-worker runs of
//! the same grid.
//!
//! # Example
//!
//! ```
//! use gaia_core::catalog::{BasePolicyKind, PolicySpec};
//! use gaia_sweep::{Executor, SweepGrid};
//!
//! let grid = SweepGrid::week(9)
//!     .policies(vec![
//!         PolicySpec::plain(BasePolicyKind::NoWait),
//!         PolicySpec::plain(BasePolicyKind::CarbonTime),
//!     ])
//!     .seeds(vec![1, 2]);
//! let run = gaia_sweep::run_grid(&grid, &Executor::new(2).with_progress(false));
//! assert_eq!(run.results.len(), 4);
//! assert!(run.results[1].summary.carbon_g <= run.results[0].summary.carbon_g * 1.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod cache;
pub mod exec;
pub mod grid;
pub mod store;

use std::time::{Duration, Instant};

pub use agg::{across_seed_groups, group_key, GroupSummary};
pub use cache::{CacheStats, TraceCache};
pub use exec::{default_workers, Executor};
pub use grid::{ClusterSpec, QueueSpec, ScaleSpec, Scenario, SweepGrid};
pub use store::{ResultStore, TimingBench};

// Re-exported so downstream sweep code can name every grid-dimension
// type through one crate.
pub use gaia_carbon::Region;
pub use gaia_core::catalog::PolicySpec;
pub use gaia_workload::synth::TraceFamily;

use gaia_metrics::{runner, Summary};

/// The outcome of one scenario cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The cell that was simulated.
    pub scenario: Scenario,
    /// The cell's stable key ([`Scenario::key`]).
    pub key: String,
    /// Metrics of the simulation.
    pub summary: Summary,
}

/// A completed sweep: the grid, its results in grid order, and
/// execution metadata for the run manifest.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The grid that was swept.
    pub grid: SweepGrid,
    /// Worker threads used.
    pub workers: usize,
    /// One result per cell, in grid order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
    /// Trace-cache hit/miss counters accumulated during the sweep.
    pub cache_stats: CacheStats,
}

impl SweepRun {
    /// The summaries in grid order (convenience for figure code that
    /// only needs metrics, not scenario metadata).
    pub fn summaries(&self) -> Vec<Summary> {
        self.results.iter().map(|r| r.summary.clone()).collect()
    }
}

/// Runs one scenario cell: materializes its traces through `cache`,
/// builds the queue set and cluster config, and simulates the policy.
/// Fully deterministic in the scenario's seed.
pub fn run_scenario(scenario: &Scenario, cache: &TraceCache) -> Summary {
    let carbon = cache.carbon(scenario.region, scenario.seed);
    let workload = cache.workload(scenario.family, scenario.scale, scenario.seed);
    let queues = scenario.queues.build(&workload);
    let config = scenario.cluster.build(scenario.seed);
    let report =
        runner::run_spec_report_with_queues(scenario.policy, &workload, &carbon, config, queues);
    Summary::of(scenario.policy.name(), &report)
}

/// Sweeps `grid` on `executor` with a fresh trace cache.
pub fn run_grid(grid: &SweepGrid, executor: &Executor) -> SweepRun {
    run_grid_with_cache(grid, executor, &TraceCache::new())
}

/// Sweeps `grid` on `executor`, sharing `cache` (useful when several
/// grids over the same traces run back to back).
pub fn run_grid_with_cache(grid: &SweepGrid, executor: &Executor, cache: &TraceCache) -> SweepRun {
    let start_stats = cache.stats();
    let start = Instant::now();
    let cells = grid.scenarios();
    let results = executor.run("grid", cells, |_, scenario| ScenarioResult {
        scenario: *scenario,
        key: scenario.key(),
        summary: run_scenario(scenario, cache),
    });
    let end_stats = cache.stats();
    SweepRun {
        grid: grid.clone(),
        workers: executor.workers(),
        results,
        wall: start.elapsed(),
        cache_stats: CacheStats {
            hits: end_stats.hits - start_stats.hits,
            misses: end_stats.misses - start_stats.misses,
        },
    }
}

/// Runs `grid` twice — serially, then with `workers` threads — and
/// reports the wall-clock comparison alongside the parallel run.
///
/// Each run gets a fresh trace cache so the timings are comparable
/// (both pay their own synthesis cost). The results of the two runs are
/// identical by the determinism contract, so only the parallel run is
/// returned.
pub fn time_grid(grid: &SweepGrid, workers: usize) -> (SweepRun, TimingBench) {
    let serial = run_grid(grid, &Executor::new(1));
    let parallel = run_grid(grid, &Executor::new(workers));
    let serial_secs = serial.wall.as_secs_f64();
    let parallel_secs = parallel.wall.as_secs_f64();
    let bench = TimingBench {
        serial_secs,
        parallel_secs,
        workers: parallel.workers,
        speedup: serial_secs / parallel_secs,
    };
    (parallel, bench)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::catalog::{BasePolicyKind, PolicySpec};

    #[test]
    fn run_scenario_matches_direct_runner_call() {
        let grid = SweepGrid::week(9);
        let scenario = grid.scenarios()[0];
        let cache = TraceCache::new();
        let sweep = run_scenario(&scenario, &cache);

        let carbon = gaia_carbon::synth::synthesize_region(scenario.region, scenario.seed);
        let workload = scenario.family.week_long_1k(scenario.seed);
        let direct = gaia_metrics::runner::run_spec(
            scenario.policy,
            &workload,
            &carbon,
            scenario.cluster.build(scenario.seed),
        );
        assert_eq!(
            sweep, direct,
            "sweep path reproduces the direct runner path"
        );
    }

    #[test]
    fn run_grid_returns_results_in_grid_order_with_keys() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![5, 6]);
        let run = run_grid(&grid, &Executor::new(2).with_progress(false));
        let cells = grid.scenarios();
        assert_eq!(run.results.len(), cells.len());
        for (result, cell) in run.results.iter().zip(&cells) {
            assert_eq!(result.key, cell.key());
            assert_eq!(result.summary.name, cell.policy.name());
        }
    }

    #[test]
    fn shared_cache_is_hit_across_cells() {
        let grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
                PolicySpec::plain(BasePolicyKind::LowestWindow),
            ])
            .seeds(vec![1]);
        let run = run_grid(&grid, &Executor::new(1).with_progress(false));
        // One carbon + one workload generation; the other 2×2 lookups hit.
        assert_eq!(run.cache_stats.misses, 2);
        assert_eq!(run.cache_stats.hits, 4);
    }
}
