//! Deterministic sweep sharding: split a grid into `n` independent
//! processes and merge their outputs back into single-process bytes.
//!
//! A cell belongs to shard `i` of `n` iff [`shard_of`]`(key, n) == i` —
//! a pure function of the cell's stable key, so every process
//! partitions the grid identically with no coordination. Each shard run
//! ([`crate::SweepRunner::shard`]) persists its slice with
//! [`write_shard`]; [`merge_shards`] validates that the shards agree on
//! the grid, cover every cell exactly once, and reassembles a
//! [`SweepRun`] in grid order.
//!
//! The merged run's deterministic artifacts (`scenarios.csv`,
//! `aggregate.csv`, `aggregate.json`, `metrics.json`, per-cell traces)
//! are byte-identical to a single-process run of the same grid
//! (`tests/sharding.rs` and `scripts/check_sweep_shard.sh` enforce
//! this). Trace-cache counters are the one place where shard-local
//! execution genuinely differs — each process pays its own synthesis
//! misses — so the merge *recomputes* the counters a single process
//! would have seen instead of summing shard-local ones: per-trace-key
//! synthesis happens once, every further lookup hits.
//!
//! Shard directory layout (all files written atomically):
//!
//! ```text
//! <dir>/
//!   cells.bin      magic+versioned binary: grid, shard coordinates,
//!                  per-cell outcomes with their grid indices
//!   metrics.bin    shard-local registry minus `cache.*` counters
//!                  (present iff the producing run collected metrics)
//!   manifest.json  small human-readable shard summary
//! ```
//!
//! `cells.bin` is written last: it is the commit point, so a shard
//! directory SIGKILLed mid-write either has a complete, loadable slice
//! or fails [`merge_shards`] loudly — never a silent partial merge.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use gaia_obs::MetricsRegistry;
use gaia_sim::fnv1a;

use crate::cache::CacheStats;
use crate::codec::{self, Reader, Writer};
use crate::store::atomic_write;
use crate::{CellOutcome, ScenarioResult, SweepGrid, SweepRun};

/// Bump when the `cells.bin` layout changes; old shard files then fail
/// to merge instead of decoding garbage.
pub const SHARD_FORMAT_VERSION: u32 = 1;

const SHARD_MAGIC: &[u8; 8] = b"GAIASHRD";

/// The shard owning `key` in an `of`-way split: FNV-1a of the key,
/// modulo `of`. Stable across runs, platforms, and worker counts, so
/// every process partitions a grid identically without coordination.
///
/// # Panics
///
/// Panics if `of` is zero.
pub fn shard_of(key: &str, of: usize) -> usize {
    assert!(of >= 1, "a sweep has at least one shard");
    (fnv1a(key.as_bytes()) % of as u64) as usize
}

/// One decoded shard directory, as read back by [`read_shard`].
#[derive(Debug)]
pub struct ShardSlice {
    /// The full grid the shard was cut from.
    pub grid: SweepGrid,
    /// This shard's index.
    pub index: usize,
    /// Total shard count of the split.
    pub of: usize,
    /// Worker threads the shard process used.
    pub workers: usize,
    /// Wall-clock of the shard process.
    pub wall: Duration,
    /// Whether the shard ran the invariant audit.
    pub audited: bool,
    /// Whether `metrics.bin` accompanies this slice.
    pub has_metrics: bool,
    /// The shard's own trace-cache counters (each process pays its own
    /// synthesis misses; [`merge_shards`] recomputes global counters).
    pub cache_stats: CacheStats,
    /// `(grid index, result)` for every cell the shard owns, in grid
    /// order.
    pub cells: Vec<(usize, ScenarioResult)>,
}

/// Why a set of shard directories could not be merged.
#[derive(Debug)]
pub enum MergeError {
    /// A shard file could not be read or written.
    Io(PathBuf, io::Error),
    /// A shard file decoded to something structurally invalid
    /// (bad magic, wrong version, truncated, unknown tags).
    Format(PathBuf, String),
    /// The shards are individually valid but mutually inconsistent
    /// (different grids, duplicate or missing cells, mixed audit or
    /// metrics settings).
    Inconsistent(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io(path, error) => write!(f, "{}: {error}", path.display()),
            MergeError::Format(path, reason) => write!(f, "{}: {reason}", path.display()),
            MergeError::Inconsistent(reason) => write!(f, "inconsistent shards: {reason}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A successful [`merge_shards`]: the reassembled run plus, when every
/// shard collected metrics, the merged registry (shard registries
/// summed, `cache.*` counters recomputed to single-process values).
pub struct MergedSweep {
    /// The reassembled single-process-equivalent run.
    pub run: SweepRun,
    /// Merged metrics, present iff every shard wrote `metrics.bin`.
    pub metrics: Option<MetricsRegistry>,
}

/// Persists a shard run into `dir` (created if missing): `metrics.bin`
/// (when `metrics` is given), `manifest.json`, then `cells.bin` as the
/// commit point. All writes are atomic, so an interrupted persist
/// leaves either a mergeable directory or an obviously incomplete one.
///
/// The run's cells are mapped back to their grid indices by key; a run
/// whose results are not a subset of its own grid (impossible through
/// [`crate::SweepRunner`]) returns `InvalidInput`.
pub fn write_shard(
    dir: &Path,
    run: &SweepRun,
    metrics: Option<&MetricsRegistry>,
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let (index, of) = run.shard.unwrap_or((0, 1));
    let expansion = run.grid.scenarios();
    let mut key_to_index = std::collections::HashMap::with_capacity(expansion.len());
    for (i, scenario) in expansion.iter().enumerate() {
        key_to_index.insert(scenario.key(), i);
    }
    let mut cells: Vec<(usize, &ScenarioResult)> = Vec::with_capacity(run.results.len());
    for result in &run.results {
        let grid_index = *key_to_index.get(&result.key).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cell {} is not in the run's own grid", result.key),
            )
        })?;
        cells.push((grid_index, result));
    }

    if let Some(registry) = metrics {
        atomic_write(&dir.join("metrics.bin"), &metrics_without_cache(registry))?;
    }
    let failed = run.failed_cells().len();
    let manifest = format!(
        "{{\n  \"shard\": {index},\n  \"of\": {of},\n  \"cells\": {},\n  \
         \"completed\": {},\n  \"failed\": {failed},\n  \"workers\": {},\n  \
         \"wall_clock_secs\": {},\n  \"audited\": {},\n  \"has_metrics\": {}\n}}\n",
        run.results.len(),
        run.results.len() - failed,
        run.workers,
        run.wall.as_secs_f64(),
        run.audited,
        metrics.is_some(),
    );
    atomic_write(&dir.join("manifest.json"), manifest.as_bytes())?;

    let mut w = Writer::new();
    w.bytes(SHARD_MAGIC);
    w.u32(SHARD_FORMAT_VERSION);
    codec::write_grid(&mut w, &run.grid);
    w.u64(index as u64);
    w.u64(of as u64);
    w.u64(run.workers as u64);
    w.f64(run.wall.as_secs_f64());
    w.bool(run.audited);
    w.bool(metrics.is_some());
    w.u64(run.cache_stats.hits as u64);
    w.u64(run.cache_stats.misses as u64);
    w.u64(run.cache_stats.entries as u64);
    w.u64(cells.len() as u64);
    for (grid_index, result) in cells {
        w.u64(grid_index as u64);
        codec::write_scenario(&mut w, &result.scenario);
        codec::write_outcome(&mut w, &result.outcome);
    }
    atomic_write(&dir.join("cells.bin"), &w.into_bytes())
}

/// Reads one shard directory back. Fails on I/O errors and on any
/// structural invalidity of `cells.bin` (the per-shard consistency
/// checks; cross-shard checks live in [`merge_shards`]).
pub fn read_shard(dir: &Path) -> Result<ShardSlice, MergeError> {
    let path = dir.join("cells.bin");
    let bytes = std::fs::read(&path).map_err(|e| MergeError::Io(path.clone(), e))?;
    decode_slice(&bytes).map_err(|reason| MergeError::Format(path, reason))
}

fn decode_slice(bytes: &[u8]) -> Result<ShardSlice, String> {
    let mut r = Reader::new(bytes);
    if r.take(SHARD_MAGIC.len())? != SHARD_MAGIC {
        return Err("not a gaia shard file (bad magic)".to_owned());
    }
    let version = r.u32()?;
    if version != SHARD_FORMAT_VERSION {
        return Err(format!(
            "shard format v{version} is not the supported v{SHARD_FORMAT_VERSION}"
        ));
    }
    let grid = codec::read_grid(&mut r)?;
    let index = r.u64()? as usize;
    let of = r.u64()? as usize;
    if of == 0 || index >= of {
        return Err(format!("shard index {index} out of range (of {of})"));
    }
    let workers = r.u64()? as usize;
    let wall = Duration::from_secs_f64(r.f64()?.clamp(0.0, 1e9));
    let audited = r.bool()?;
    let has_metrics = r.bool()?;
    let cache_stats = CacheStats {
        hits: r.u64()? as usize,
        misses: r.u64()? as usize,
        entries: r.u64()? as usize,
    };
    let count = r.count(16)?;
    let mut cells = Vec::with_capacity(count);
    for _ in 0..count {
        let grid_index = r.u64()? as usize;
        let scenario = codec::read_scenario(&mut r)?;
        let outcome = codec::read_outcome(&mut r)?;
        let key = scenario.key();
        cells.push((
            grid_index,
            ScenarioResult {
                scenario,
                key,
                outcome,
            },
        ));
    }
    r.done()?;
    Ok(ShardSlice {
        grid,
        index,
        of,
        workers,
        wall,
        audited,
        has_metrics,
        cache_stats,
        cells,
    })
}

/// Merges a complete set of shard directories back into one
/// [`SweepRun`] (plus merged metrics when every shard collected them).
///
/// Validation is strict: all shards must agree on the grid, the shard
/// count, and the audit setting; shard indices must be distinct and the
/// set complete; every grid cell must appear exactly once, in the shard
/// [`shard_of`] assigns it to, with a scenario matching the grid
/// expansion. Anything else is a [`MergeError`], never a quiet
/// partial result.
///
/// The merged run reports `workers` as the sum over shards and `wall`
/// as the slowest shard (the critical path of a parallel shard fleet).
/// Trace-cache counters are recomputed to single-process values: misses
/// = distinct trace keys in the grid (each synthesized exactly once in
/// one process), hits = total lookups − misses. Total lookups are
/// summed from the shards, which is exact because a cell performs the
/// same lookups wherever it runs.
pub fn merge_shards(dirs: &[PathBuf]) -> Result<MergedSweep, MergeError> {
    if dirs.is_empty() {
        return Err(MergeError::Inconsistent("no shard directories".to_owned()));
    }
    let mut slices = Vec::with_capacity(dirs.len());
    for dir in dirs {
        slices.push((dir, read_shard(dir)?));
    }
    let first = &slices[0].1;
    let (grid, of, audited, has_metrics) = (
        first.grid.clone(),
        first.of,
        first.audited,
        first.has_metrics,
    );
    if dirs.len() != of {
        return Err(MergeError::Inconsistent(format!(
            "{} directories given for an {of}-way split",
            dirs.len()
        )));
    }
    let mut seen_shard = vec![false; of];
    for (dir, slice) in &slices {
        if slice.grid != grid {
            return Err(MergeError::Inconsistent(format!(
                "{} was cut from a different grid",
                dir.display()
            )));
        }
        if slice.of != of || slice.audited != audited || slice.has_metrics != has_metrics {
            return Err(MergeError::Inconsistent(format!(
                "{} disagrees on split/audit/metrics settings",
                dir.display()
            )));
        }
        if std::mem::replace(&mut seen_shard[slice.index], true) {
            return Err(MergeError::Inconsistent(format!(
                "shard {} appears more than once",
                slice.index
            )));
        }
    }

    let expansion = grid.scenarios();
    let mut results: Vec<Option<ScenarioResult>> = vec![None; expansion.len()];
    let mut workers = 0usize;
    let mut wall = Duration::ZERO;
    let mut lookups = 0usize;
    for (dir, slice) in &slices {
        workers += slice.workers;
        wall = wall.max(slice.wall);
        lookups += slice.cache_stats.hits + slice.cache_stats.misses;
        for (grid_index, result) in &slice.cells {
            let expected = expansion.get(*grid_index).ok_or_else(|| {
                MergeError::Inconsistent(format!(
                    "{}: cell index {grid_index} exceeds the grid",
                    dir.display()
                ))
            })?;
            if *expected != result.scenario {
                return Err(MergeError::Inconsistent(format!(
                    "{}: cell {grid_index} does not match the grid expansion",
                    dir.display()
                )));
            }
            if shard_of(&result.key, of) != slice.index {
                return Err(MergeError::Inconsistent(format!(
                    "cell {} does not belong to shard {}",
                    result.key, slice.index
                )));
            }
            if results[*grid_index].replace(result.clone()).is_some() {
                return Err(MergeError::Inconsistent(format!(
                    "cell {} appears in more than one shard",
                    result.key
                )));
            }
        }
    }
    let mut merged = Vec::with_capacity(expansion.len());
    for (i, slot) in results.into_iter().enumerate() {
        merged.push(slot.ok_or_else(|| {
            MergeError::Inconsistent(format!(
                "cell {} is missing from every shard (interrupted run? \
                 re-run the owning shard to completion first)",
                expansion[i].key()
            ))
        })?);
    }

    let cache_stats = single_process_cache_stats(&grid, lookups);
    let metrics = if has_metrics {
        let registry = MetricsRegistry::new();
        for (dir, _) in &slices {
            let path = dir.join("metrics.bin");
            let bytes = std::fs::read(&path).map_err(|e| MergeError::Io(path.clone(), e))?;
            codec::read_metrics_into(&mut Reader::new(&bytes), &registry)
                .map_err(|reason| MergeError::Format(path, reason))?;
        }
        // Shard files exclude `cache.*`; restore the recomputed
        // single-process values the engine would have recorded.
        registry.counter("cache.hits").add(cache_stats.hits as u64);
        registry
            .counter("cache.misses")
            .add(cache_stats.misses as u64);
        registry
            .counter("cache.entries")
            .add(cache_stats.entries as u64);
        Some(registry)
    } else {
        None
    };

    Ok(MergedSweep {
        run: SweepRun {
            grid,
            workers,
            results: merged,
            wall,
            cache_stats,
            audited,
            shard: None,
            disk_cache: None,
        },
        metrics,
    })
}

/// The trace-cache counters a single process sweeping `grid` would
/// report: every distinct (region, seed) carbon trace and (family,
/// scale, seed) workload trace is synthesized exactly once (a miss and
/// an entry); all further lookups hit.
///
/// Exact for every unfaulted sweep and for chaos-faulted sweeps whose
/// cells eventually run (the recovery attempt performs the cell's
/// lookups). The one approximation: a cell chaos-failed on *every*
/// attempt never looks its traces up, so a trace key referenced only by
/// such cells would be counted as a miss here but never synthesized in
/// a real single-process run.
fn single_process_cache_stats(grid: &SweepGrid, lookups: usize) -> CacheStats {
    let mut carbon = std::collections::HashSet::new();
    let mut workload = std::collections::HashSet::new();
    for scenario in grid.scenarios() {
        carbon.insert((scenario.region.code().to_owned(), scenario.seed));
        workload.insert((
            scenario.family.name().to_owned(),
            scenario.scale.token(),
            scenario.seed,
        ));
    }
    let misses = carbon.len() + workload.len();
    CacheStats {
        hits: lookups.saturating_sub(misses),
        misses,
        entries: misses,
    }
}

/// Serializes `registry` minus its `cache.*` counters (shard-local
/// trace/result-cache counters are recomputed at merge time, not
/// summed).
fn metrics_without_cache(registry: &MetricsRegistry) -> Vec<u8> {
    let filtered = MetricsRegistry::new();
    for (name, value) in registry.counter_values() {
        if name.starts_with("cache.") {
            continue;
        }
        let counter = filtered.counter(&name);
        counter.add(value);
    }
    for (name, histogram) in registry.histogram_values() {
        filtered.histogram(&name).merge_raw(
            &histogram.bucket_counts(),
            histogram.count(),
            histogram.sum_micros(),
        );
    }
    let mut w = Writer::new();
    codec::write_metrics(&mut w, &filtered);
    w.into_bytes()
}

/// Count of merge-relevant outcomes for progress reporting: `(completed,
/// failed)` cells in `outcomes`.
pub fn outcome_counts<'a>(outcomes: impl IntoIterator<Item = &'a CellOutcome>) -> (usize, usize) {
    let mut completed = 0;
    let mut failed = 0;
    for outcome in outcomes {
        match outcome {
            CellOutcome::Completed { .. } | CellOutcome::Retried { .. } => completed += 1,
            CellOutcome::Failed { .. } => failed += 1,
        }
    }
    (completed, failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use gaia_core::catalog::{BasePolicyKind, PolicySpec};

    fn grid() -> SweepGrid {
        SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec::plain(BasePolicyKind::CarbonTime),
            ])
            .seeds(vec![1, 2, 3])
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gaia-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_of_partitions_all_cells() {
        let grid = grid();
        for of in [1usize, 2, 3, 5] {
            let mut counts = vec![0usize; of];
            for scenario in grid.scenarios() {
                counts[shard_of(&scenario.key(), of)] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), grid.len());
        }
        // Stability: the assignment is a pure function of the key.
        assert_eq!(shard_of("a/b/c", 4), shard_of("a/b/c", 4));
    }

    #[test]
    fn shards_merge_back_to_the_single_process_run() {
        let grid = grid();
        let executor = Executor::new(1).with_progress(false);
        let single = grid
            .runner()
            .executor(&executor)
            .audit(true)
            .execute()
            .unwrap();

        let dir = tempdir("merge");
        let of = 3;
        let mut dirs = Vec::new();
        for index in 0..of {
            let run = grid
                .runner()
                .executor(&executor)
                .audit(true)
                .shard(index, of)
                .execute()
                .unwrap();
            let shard_dir = dir.join(format!("shard-{index}"));
            write_shard(&shard_dir, &run, None).unwrap();
            dirs.push(shard_dir);
        }
        let merged = merge_shards(&dirs).unwrap();
        assert_eq!(merged.run.results, single.results);
        assert_eq!(merged.run.audited, single.audited);
        assert_eq!(merged.run.cache_stats.misses, single.cache_stats.misses);
        assert_eq!(merged.run.cache_stats.hits, single.cache_stats.hits);
        assert_eq!(merged.run.cache_stats.entries, single.cache_stats.entries);
        assert!(merged.metrics.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_rejects_incomplete_and_duplicated_shards() {
        let grid = grid();
        let executor = Executor::new(1).with_progress(false);
        let dir = tempdir("reject");
        let mut dirs = Vec::new();
        for index in 0..2 {
            let run = grid
                .runner()
                .executor(&executor)
                .shard(index, 2)
                .execute()
                .unwrap();
            let shard_dir = dir.join(format!("shard-{index}"));
            write_shard(&shard_dir, &run, None).unwrap();
            dirs.push(shard_dir);
        }
        // Missing shard: wrong directory count.
        assert!(matches!(
            merge_shards(&dirs[..1]),
            Err(MergeError::Inconsistent(_))
        ));
        // Duplicate shard.
        let doubled = vec![dirs[0].clone(), dirs[0].clone()];
        assert!(matches!(
            merge_shards(&doubled),
            Err(MergeError::Inconsistent(_))
        ));
        // Corrupt commit file.
        std::fs::write(dirs[1].join("cells.bin"), b"GAIASHRDgarbage").unwrap();
        assert!(matches!(merge_shards(&dirs), Err(MergeError::Format(..))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_slice_round_trips_metrics_and_stats() {
        let grid = grid();
        let registry = MetricsRegistry::new();
        let hooks = crate::ObsHooks {
            metrics: Some(&registry),
            ..Default::default()
        };
        let run = grid
            .runner()
            .executor(&Executor::new(1).with_progress(false))
            .obs(&hooks)
            .shard(0, 2)
            .execute()
            .unwrap();
        let dir = tempdir("slice");
        write_shard(&dir, &run, Some(&registry)).unwrap();
        let slice = read_shard(&dir).unwrap();
        assert_eq!(slice.index, 0);
        assert_eq!(slice.of, 2);
        assert!(slice.has_metrics);
        assert_eq!(slice.cells.len(), run.results.len());
        assert_eq!(slice.cache_stats, run.cache_stats);

        // The persisted registry drops `cache.*` but keeps the rest.
        let replay = MetricsRegistry::new();
        let bytes = std::fs::read(dir.join("metrics.bin")).unwrap();
        codec::read_metrics_into(&mut Reader::new(&bytes), &replay).unwrap();
        assert_eq!(
            replay.counter("sweep.cells").get(),
            run.results.len() as u64
        );
        assert_eq!(replay.counter("cache.hits").get(), 0);
        assert_eq!(
            replay.counter("sim.jobs").get(),
            registry.counter("sim.jobs").get()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
