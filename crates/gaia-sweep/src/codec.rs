//! Hand-rolled little-endian binary codec for sweep persistence.
//!
//! The vendored serde derives are no-ops, so everything the sweep layer
//! persists — content-addressed result-cache entries and shard cell
//! manifests — is encoded here by hand, mirroring the discipline of
//! `gaia-sim/src/snapshot.rs`: integers little-endian, floats as raw
//! `f64::to_bits`, strings length-prefixed UTF-8, options as a 0/1 tag.
//! Readers bounds-check every take, validate enum tags, and reject
//! trailing bytes, so a truncated or bit-flipped file decodes to an
//! error instead of a wrong result.
//!
//! Determinism matters more than compactness: the same value always
//! encodes to the same bytes (f64 via `to_bits`, no varints, no maps
//! with unstable order), which is what lets cell fingerprints and shard
//! manifests participate in the byte-identity contract.

use gaia_carbon::Region;
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_core::SpotConfig;
use gaia_metrics::Summary;
use gaia_obs::{MetricsRegistry, HISTOGRAM_BUCKETS};
use gaia_sim::{AuditInvariant, AuditReport, AuditViolation};
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;
use gaia_workload::JobId;

use crate::grid::{ClusterSpec, QueueSpec, ScaleSpec, Scenario, SweepGrid};
use crate::CellOutcome;

/// Decode failures are strings; callers wrap them into their own error
/// types (cache: treat as miss; merge: report as corrupt shard).
pub(crate) type Result<T> = std::result::Result<T, String>;

// ---------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Raw IEEE-754 bits: NaN payloads and signed zeros round-trip.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    pub(crate) fn opt<T: ?Sized>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                f(self, inner);
            }
        }
    }
}

/// Bounds-checked little-endian byte source.
pub(crate) struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    pub(crate) fn new(bytes: &'b [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'b [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.bytes.len().saturating_sub(self.pos)
                )
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Rejects trailing bytes so appended garbage is detected.
    pub(crate) fn done(&self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after decoded value",
                self.bytes.len() - self.pos
            ))
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid bool tag {other}")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Element count, guarded so a corrupt length cannot trigger a huge
    /// allocation: the remaining input must plausibly hold `count`
    /// elements of at least `min_elem_bytes` each.
    pub(crate) fn count(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let count = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        let need = count.checked_mul(min_elem_bytes.max(1) as u64);
        match need {
            Some(need) if need <= remaining => Ok(count as usize),
            _ => Err(format!(
                "implausible element count {count} ({} bytes remain)",
                remaining
            )),
        }
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let len = self.count(1)?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }

    pub(crate) fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T>,
    ) -> Result<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            other => Err(format!("invalid option tag {other}")),
        }
    }
}

// ---------------------------------------------------------------------
// Domain encodings
// ---------------------------------------------------------------------

fn base_policy_tag(base: BasePolicyKind) -> u8 {
    match base {
        BasePolicyKind::NoWait => 0,
        BasePolicyKind::AllWaitThreshold => 1,
        BasePolicyKind::WaitAwhile => 2,
        BasePolicyKind::Ecovisor => 3,
        BasePolicyKind::LowestSlot => 4,
        BasePolicyKind::LowestWindow => 5,
        BasePolicyKind::CarbonTime => 6,
        BasePolicyKind::BadPlan => 7,
        BasePolicyKind::CarbonScale => 8,
    }
}

fn base_policy_from_tag(tag: u8) -> Result<BasePolicyKind> {
    Ok(match tag {
        0 => BasePolicyKind::NoWait,
        1 => BasePolicyKind::AllWaitThreshold,
        2 => BasePolicyKind::WaitAwhile,
        3 => BasePolicyKind::Ecovisor,
        4 => BasePolicyKind::LowestSlot,
        5 => BasePolicyKind::LowestWindow,
        6 => BasePolicyKind::CarbonTime,
        7 => BasePolicyKind::BadPlan,
        8 => BasePolicyKind::CarbonScale,
        other => return Err(format!("invalid base policy tag {other}")),
    })
}

fn region_tag(region: Region) -> u8 {
    match region {
        Region::Sweden => 0,
        Region::Ontario => 1,
        Region::SouthAustralia => 2,
        Region::California => 3,
        Region::Netherlands => 4,
        Region::Kentucky => 5,
    }
}

fn region_from_tag(tag: u8) -> Result<Region> {
    Ok(match tag {
        0 => Region::Sweden,
        1 => Region::Ontario,
        2 => Region::SouthAustralia,
        3 => Region::California,
        4 => Region::Netherlands,
        5 => Region::Kentucky,
        other => return Err(format!("invalid region tag {other}")),
    })
}

fn family_tag(family: TraceFamily) -> u8 {
    match family {
        TraceFamily::AlibabaPai => 0,
        TraceFamily::AzureVm => 1,
        TraceFamily::MustangHpc => 2,
    }
}

fn family_from_tag(tag: u8) -> Result<TraceFamily> {
    Ok(match tag {
        0 => TraceFamily::AlibabaPai,
        1 => TraceFamily::AzureVm,
        2 => TraceFamily::MustangHpc,
        other => return Err(format!("invalid trace family tag {other}")),
    })
}

fn invariant_tag(invariant: AuditInvariant) -> u8 {
    match invariant {
        AuditInvariant::SegmentCoverage => 0,
        AuditInvariant::Occupancy => 1,
        AuditInvariant::Accounting => 2,
        AuditInvariant::WorkConservation => 3,
        AuditInvariant::Timing => 4,
        AuditInvariant::Degradation => 5,
    }
}

fn invariant_from_tag(tag: u8) -> Result<AuditInvariant> {
    Ok(match tag {
        0 => AuditInvariant::SegmentCoverage,
        1 => AuditInvariant::Occupancy,
        2 => AuditInvariant::Accounting,
        3 => AuditInvariant::WorkConservation,
        4 => AuditInvariant::Timing,
        5 => AuditInvariant::Degradation,
        other => return Err(format!("invalid audit invariant tag {other}")),
    })
}

pub(crate) fn write_policy(w: &mut Writer, policy: &PolicySpec) {
    w.u8(base_policy_tag(policy.base));
    w.bool(policy.res_first);
    w.opt(policy.spot.as_ref(), |w, spot: &SpotConfig| {
        w.u64(spot.j_max.as_minutes());
    });
}

pub(crate) fn read_policy(r: &mut Reader<'_>) -> Result<PolicySpec> {
    let base = base_policy_from_tag(r.u8()?)?;
    let res_first = r.bool()?;
    let spot = r.opt(|r| {
        Ok(SpotConfig {
            j_max: Minutes::new(r.u64()?),
        })
    })?;
    Ok(PolicySpec {
        base,
        res_first,
        spot,
    })
}

pub(crate) fn write_scale(w: &mut Writer, scale: ScaleSpec) {
    match scale {
        ScaleSpec::Week => w.u8(0),
        ScaleSpec::Year { jobs } => {
            w.u8(1);
            w.u64(jobs as u64);
        }
    }
}

pub(crate) fn read_scale(r: &mut Reader<'_>) -> Result<ScaleSpec> {
    Ok(match r.u8()? {
        0 => ScaleSpec::Week,
        1 => ScaleSpec::Year {
            jobs: r.u64()? as usize,
        },
        other => return Err(format!("invalid scale tag {other}")),
    })
}

pub(crate) fn write_cluster(w: &mut Writer, cluster: &ClusterSpec) {
    w.u32(cluster.reserved);
    w.f64(cluster.eviction);
    w.u64(cluster.billing_days);
}

pub(crate) fn read_cluster(r: &mut Reader<'_>) -> Result<ClusterSpec> {
    Ok(ClusterSpec {
        reserved: r.u32()?,
        eviction: r.f64()?,
        billing_days: r.u64()?,
    })
}

pub(crate) fn write_queues(w: &mut Writer, queues: &QueueSpec) {
    w.u64(queues.short_hours);
    w.u64(queues.long_hours);
}

pub(crate) fn read_queues(r: &mut Reader<'_>) -> Result<QueueSpec> {
    Ok(QueueSpec {
        short_hours: r.u64()?,
        long_hours: r.u64()?,
    })
}

pub(crate) fn write_scenario(w: &mut Writer, scenario: &Scenario) {
    write_policy(w, &scenario.policy);
    w.u8(region_tag(scenario.region));
    w.u8(family_tag(scenario.family));
    write_scale(w, scenario.scale);
    w.u64(scenario.seed);
    write_cluster(w, &scenario.cluster);
    write_queues(w, &scenario.queues);
}

pub(crate) fn read_scenario(r: &mut Reader<'_>) -> Result<Scenario> {
    Ok(Scenario {
        policy: read_policy(r)?,
        region: region_from_tag(r.u8()?)?,
        family: family_from_tag(r.u8()?)?,
        scale: read_scale(r)?,
        seed: r.u64()?,
        cluster: read_cluster(r)?,
        queues: read_queues(r)?,
    })
}

pub(crate) fn write_grid(w: &mut Writer, grid: &SweepGrid) {
    w.u64(grid.policies.len() as u64);
    for policy in &grid.policies {
        write_policy(w, policy);
    }
    w.u64(grid.regions.len() as u64);
    for &region in &grid.regions {
        w.u8(region_tag(region));
    }
    w.u64(grid.families.len() as u64);
    for &family in &grid.families {
        w.u8(family_tag(family));
    }
    write_scale(w, grid.scale);
    w.u64(grid.seeds.len() as u64);
    for &seed in &grid.seeds {
        w.u64(seed);
    }
    w.u64(grid.clusters.len() as u64);
    for cluster in &grid.clusters {
        write_cluster(w, cluster);
    }
    w.u64(grid.queues.len() as u64);
    for queues in &grid.queues {
        write_queues(w, queues);
    }
}

pub(crate) fn read_grid(r: &mut Reader<'_>) -> Result<SweepGrid> {
    let n = r.count(3)?;
    let mut policies = Vec::with_capacity(n);
    for _ in 0..n {
        policies.push(read_policy(r)?);
    }
    let n = r.count(1)?;
    let mut regions = Vec::with_capacity(n);
    for _ in 0..n {
        regions.push(region_from_tag(r.u8()?)?);
    }
    let n = r.count(1)?;
    let mut families = Vec::with_capacity(n);
    for _ in 0..n {
        families.push(family_from_tag(r.u8()?)?);
    }
    let scale = read_scale(r)?;
    let n = r.count(8)?;
    let mut seeds = Vec::with_capacity(n);
    for _ in 0..n {
        seeds.push(r.u64()?);
    }
    let n = r.count(20)?;
    let mut clusters = Vec::with_capacity(n);
    for _ in 0..n {
        clusters.push(read_cluster(r)?);
    }
    let n = r.count(16)?;
    let mut queues = Vec::with_capacity(n);
    for _ in 0..n {
        queues.push(read_queues(r)?);
    }
    if policies.is_empty()
        || regions.is_empty()
        || families.is_empty()
        || seeds.is_empty()
        || clusters.is_empty()
        || queues.is_empty()
    {
        return Err("grid with an empty axis".to_owned());
    }
    Ok(SweepGrid {
        policies,
        regions,
        families,
        scale,
        seeds,
        clusters,
        queues,
    })
}

pub(crate) fn write_summary(w: &mut Writer, summary: &Summary) {
    w.str(&summary.name);
    w.f64(summary.carbon_g);
    w.f64(summary.total_cost);
    w.f64(summary.mean_wait_hours);
    w.f64(summary.mean_completion_hours);
    w.f64(summary.reserved_utilization);
    w.u64(summary.evictions);
    w.u64(summary.jobs as u64);
}

pub(crate) fn read_summary(r: &mut Reader<'_>) -> Result<Summary> {
    Ok(Summary {
        name: r.str()?,
        carbon_g: r.f64()?,
        total_cost: r.f64()?,
        mean_wait_hours: r.f64()?,
        mean_completion_hours: r.f64()?,
        reserved_utilization: r.f64()?,
        evictions: r.u64()?,
        jobs: r.u64()? as usize,
    })
}

pub(crate) fn write_audit(w: &mut Writer, audit: &AuditReport) {
    w.u64(audit.checks_run as u64);
    w.u64(audit.violations.len() as u64);
    for violation in &audit.violations {
        w.u8(invariant_tag(violation.invariant));
        w.opt(violation.job.as_ref(), |w, job: &JobId| w.u64(job.0));
        w.str(&violation.detail);
    }
}

pub(crate) fn read_audit(r: &mut Reader<'_>) -> Result<AuditReport> {
    let checks_run = r.u64()? as usize;
    let n = r.count(10)?;
    let mut violations = Vec::with_capacity(n);
    for _ in 0..n {
        violations.push(AuditViolation {
            invariant: invariant_from_tag(r.u8()?)?,
            job: r.opt(|r| Ok(JobId(r.u64()?)))?,
            detail: r.str()?,
        });
    }
    Ok(AuditReport {
        violations,
        checks_run,
    })
}

pub(crate) fn write_outcome(w: &mut Writer, outcome: &CellOutcome) {
    match outcome {
        CellOutcome::Completed { summary, audit } => {
            w.u8(0);
            write_summary(w, summary);
            w.opt(audit.as_ref(), write_audit);
        }
        CellOutcome::Retried {
            summary,
            audit,
            attempts,
            timed_out,
            recovered_error,
        } => {
            w.u8(1);
            write_summary(w, summary);
            w.opt(audit.as_ref(), write_audit);
            w.u32(*attempts);
            w.bool(*timed_out);
            w.str(recovered_error);
        }
        CellOutcome::Failed { error } => {
            w.u8(2);
            w.str(error);
        }
    }
}

pub(crate) fn read_outcome(r: &mut Reader<'_>) -> Result<CellOutcome> {
    Ok(match r.u8()? {
        0 => CellOutcome::Completed {
            summary: read_summary(r)?,
            audit: r.opt(read_audit)?,
        },
        1 => CellOutcome::Retried {
            summary: read_summary(r)?,
            audit: r.opt(read_audit)?,
            attempts: r.u32()?,
            timed_out: r.bool()?,
            recovered_error: r.str()?,
        },
        2 => CellOutcome::Failed { error: r.str()? },
        other => return Err(format!("invalid cell outcome tag {other}")),
    })
}

/// Serialize a registry's full state (counters and histograms) so a
/// cached or shard-local registry can be replayed into another registry
/// with [`read_metrics_into`]. Iteration order is the registry's own
/// sorted order, so equal states encode to equal bytes.
pub(crate) fn write_metrics(w: &mut Writer, registry: &MetricsRegistry) {
    let counters = registry.counter_values();
    w.u64(counters.len() as u64);
    for (name, value) in counters {
        w.str(&name);
        w.u64(value);
    }
    let histograms = registry.histogram_values();
    w.u64(histograms.len() as u64);
    for (name, hist) in histograms {
        w.str(&name);
        let buckets = hist.bucket_counts();
        debug_assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
        for count in &buckets {
            w.u64(*count);
        }
        w.u64(hist.count());
        w.u64(hist.sum_micros());
    }
}

/// Replay a [`write_metrics`] payload into `target` (additive merge).
pub(crate) fn read_metrics_into(r: &mut Reader<'_>, target: &MetricsRegistry) -> Result<()> {
    let n = r.count(16)?;
    for _ in 0..n {
        let name = r.str()?;
        let value = r.u64()?;
        if value > 0 {
            target.counter(&name).add(value);
        } else {
            target.counter(&name);
        }
    }
    let n = r.count(8 * (HISTOGRAM_BUCKETS + 2))?;
    for _ in 0..n {
        let name = r.str()?;
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for bucket in buckets.iter_mut() {
            *bucket = r.u64()?;
        }
        let count = r.u64()?;
        let sum_micro = r.u64()?;
        target
            .histogram(&name)
            .merge_raw(&buckets, count, sum_micro);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenarios() -> Vec<Scenario> {
        let mut grid = SweepGrid::week(9)
            .policies(vec![
                PolicySpec::plain(BasePolicyKind::NoWait),
                PolicySpec {
                    base: BasePolicyKind::CarbonTime,
                    res_first: true,
                    spot: Some(SpotConfig {
                        j_max: Minutes::from_hours(2),
                    }),
                },
            ])
            .regions(vec![Region::SouthAustralia, Region::Kentucky])
            .seeds(vec![42, 43]);
        grid.scale = ScaleSpec::Year { jobs: 1234 };
        grid.scenarios()
    }

    #[test]
    fn scenario_round_trips() {
        for scenario in sample_scenarios() {
            let mut w = Writer::new();
            write_scenario(&mut w, &scenario);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = read_scenario(&mut r).expect("decode");
            r.done().expect("no trailing bytes");
            assert_eq!(back.key(), scenario.key());
            // Re-encoding is byte-stable (the fingerprint contract).
            let mut w2 = Writer::new();
            write_scenario(&mut w2, &back);
            assert_eq!(w2.into_bytes(), bytes);
        }
    }

    #[test]
    fn grid_round_trips() {
        let grid = SweepGrid::week(9)
            .regions(vec![Region::California, Region::Ontario])
            .seeds(vec![1, 2, 3]);
        let mut w = Writer::new();
        write_grid(&mut w, &grid);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_grid(&mut r).expect("decode");
        r.done().expect("no trailing bytes");
        assert_eq!(back.describe(), grid.describe());
        assert_eq!(back.len(), grid.len());
    }

    #[test]
    fn outcome_round_trips() {
        let summary = Summary {
            name: "Carbon-Time".to_owned(),
            carbon_g: 1234.5,
            total_cost: 67.89,
            mean_wait_hours: 0.5,
            mean_completion_hours: 3.25,
            reserved_utilization: 0.91,
            evictions: 3,
            jobs: 1000,
        };
        let audit = AuditReport {
            violations: vec![AuditViolation {
                invariant: AuditInvariant::Timing,
                job: Some(JobId(7)),
                detail: "late by 3 min".to_owned(),
            }],
            checks_run: 512,
        };
        let outcomes = vec![
            CellOutcome::Completed {
                summary: summary.clone(),
                audit: Some(audit.clone()),
            },
            CellOutcome::Completed {
                summary: summary.clone(),
                audit: None,
            },
            CellOutcome::Retried {
                summary,
                audit: Some(audit),
                attempts: 3,
                timed_out: false,
                recovered_error: "injected fault (attempt 2)".to_owned(),
            },
            CellOutcome::Failed {
                error: "invalid policy decision".to_owned(),
            },
        ];
        for outcome in outcomes {
            let mut w = Writer::new();
            write_outcome(&mut w, &outcome);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = read_outcome(&mut r).expect("decode");
            r.done().expect("no trailing bytes");
            assert_eq!(back, outcome);
        }
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let mut w = Writer::new();
        write_scenario(&mut w, &sample_scenarios()[0]);
        let bytes = w.into_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            let err = read_scenario(&mut r)
                .err()
                .unwrap_or_else(|| "decoded from truncated input".to_owned());
            assert!(!err.is_empty());
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0xFF);
        let mut r = Reader::new(&extended);
        read_scenario(&mut r).expect("prefix decodes");
        assert!(r.done().is_err());
    }

    #[test]
    fn metrics_round_trip_merges_additively() {
        let src = MetricsRegistry::new();
        src.counter("sweep.cells").add(7);
        src.counter("zeroed");
        src.histogram("sweep.cell_wait_hours").observe(1.5);
        src.histogram("sweep.cell_wait_hours").observe(0.01);
        let mut w = Writer::new();
        write_metrics(&mut w, &src);
        let bytes = w.into_bytes();

        let dst = MetricsRegistry::new();
        dst.counter("sweep.cells").add(1);
        let mut r = Reader::new(&bytes);
        read_metrics_into(&mut r, &dst).expect("decode");
        r.done().expect("no trailing bytes");

        let expect = MetricsRegistry::new();
        expect.counter("sweep.cells").add(8);
        expect.counter("zeroed");
        expect.histogram("sweep.cell_wait_hours").observe(1.5);
        expect.histogram("sweep.cell_wait_hours").observe(0.01);
        assert_eq!(dst.snapshot_json(), expect.snapshot_json());
    }
}
