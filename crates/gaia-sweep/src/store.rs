//! Result store: run manifests and CSV/JSON artifacts under `results/`.
//!
//! Each sweep run lands in its own directory:
//!
//! ```text
//! results/<run-name>/
//!   manifest.json    run metadata: grid spec, seeds, git describe,
//!                    wall-clock, worker count, cache stats, timing
//!                    bench (NOT byte-stable: contains timings)
//!   scenarios.csv    one row per scenario cell, in grid order
//!   aggregate.csv    across-seed mean ± std per scenario group
//!   aggregate.json   the same aggregation as JSON
//!   metrics.json     gaia-obs registry snapshot (observed runs only)
//! ```
//!
//! `scenarios.csv`, `aggregate.csv`, `aggregate.json`, and
//! `metrics.json` are pure functions of the grid and the seeds —
//! byte-identical for any worker count (verified by the determinism
//! property tests). `manifest.json` records wall-clock facts about one
//! particular execution (including the optional `"profile"` phase
//! table) and is the only artifact allowed to differ between reruns.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use gaia_obs::{MetricsRegistry, Profiler};

use crate::agg::GroupSummary;
use crate::SweepRun;

/// Serial-vs-parallel wall-clock comparison on the same grid, recorded
/// in the run manifest by [`crate::time_runner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBench {
    /// Wall-clock of the 1-worker run, seconds.
    pub serial_secs: f64,
    /// Wall-clock of the N-worker run, seconds.
    pub parallel_secs: f64,
    /// Worker count of the parallel run.
    pub workers: usize,
    /// `serial_secs / parallel_secs`.
    pub speedup: f64,
}

/// Writes sweep runs to a per-run directory under a results root.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Creates (or reuses) `<root>/<run_name>/`.
    pub fn create(root: impl AsRef<Path>, run_name: &str) -> io::Result<ResultStore> {
        let dir = root.as_ref().join(run_name);
        fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes all artifacts for `run`; `timing` lands in the manifest
    /// when present.
    pub fn write(&self, run: &SweepRun, timing: Option<TimingBench>) -> io::Result<()> {
        self.write_observed(run, timing, None, None)
    }

    /// [`ResultStore::write`] plus observability artifacts: a
    /// `metrics.json` registry snapshot (when `metrics` is given) and a
    /// `"profile"` phase-timing block in the manifest (when `profile`
    /// is given).
    ///
    /// `metrics.json` is deterministic — counters and histograms are
    /// commutative, so it is byte-identical for any worker count. The
    /// manifest (wall-clock, profile timings) is not.
    pub fn write_observed(
        &self,
        run: &SweepRun,
        timing: Option<TimingBench>,
        metrics: Option<&MetricsRegistry>,
        profile: Option<&Profiler>,
    ) -> io::Result<()> {
        atomic_write(
            &self.dir.join("scenarios.csv"),
            scenarios_csv(run).as_bytes(),
        )?;
        let groups = crate::agg::across_seed_groups(run);
        atomic_write(
            &self.dir.join("aggregate.csv"),
            aggregate_csv(&groups).as_bytes(),
        )?;
        atomic_write(
            &self.dir.join("aggregate.json"),
            aggregate_json(&groups).as_bytes(),
        )?;
        atomic_write(
            &self.dir.join("manifest.json"),
            manifest_json_observed(run, timing, profile).as_bytes(),
        )?;
        if let Some(registry) = metrics {
            self.write_metrics(registry)?;
        }
        Ok(())
    }

    /// Writes `metrics.json`: the registry snapshot, trailing newline.
    pub fn write_metrics(&self, registry: &MetricsRegistry) -> io::Result<()> {
        let mut json = registry.snapshot_json();
        json.push('\n');
        atomic_write(&self.dir.join("metrics.json"), json.as_bytes())
    }
}

/// Durable atomic file replacement: write to a `.tmp` sibling, fsync
/// it, rename over the target, then fsync the parent directory — the
/// same discipline as the serving layer's snapshot writes. On any
/// failure the tmp file is removed and the previous target contents (if
/// any) survive untouched, so a reader racing a writer — or a process
/// SIGKILLed mid-write — observes either the old complete bytes or the
/// new complete bytes, never a truncated file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let written = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // fsync before rename: an unflushed rename can survive a crash
        // while its contents do not, which is exactly the truncated-file
        // corruption this function exists to rule out.
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if let Err(e) = written {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // fsync the directory so the rename itself is durable.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    fs::File::open(parent)?.sync_all()
}

/// Quotes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in double quotes with
/// embedded quotes doubled; everything else passes through unchanged
/// (keeping the existing artifacts byte-stable).
pub fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

/// One row per scenario, in grid order. Deterministic.
///
/// Failed cells keep their identity columns, leave the metric columns
/// empty, and carry the error in the `status` column; completed cells
/// have `status` = `ok` (or `retried:<attempts>` when the cell
/// recovered through the retry policy) and, when the sweep was audited,
/// their violation count in `audit_violations`.
pub fn scenarios_csv(run: &SweepRun) -> String {
    let mut out = String::from(
        "key,policy,region,family,scale,seed,reserved,eviction,billing_days,\
         wait_short_h,wait_long_h,carbon_g,total_cost,mean_wait_hours,\
         mean_completion_hours,reserved_utilization,evictions,jobs,\
         status,audit_violations\n",
    );
    for result in &run.results {
        let s = &result.scenario;
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},",
            csv_field(&result.key),
            csv_field(&s.policy.name()),
            csv_field(s.region.code()),
            csv_field(s.family.name()),
            csv_field(&s.scale.token()),
            s.seed,
            s.cluster.reserved,
            s.cluster.eviction,
            s.cluster.billing_days,
            s.queues.short_hours,
            s.queues.long_hours,
        );
        match result.summary() {
            Some(m) => {
                let audit = match result.audit() {
                    Some(report) => report.violations.len().to_string(),
                    None => String::new(),
                };
                let status = match result.retry_provenance() {
                    Some((attempts, true, _)) => format!("timed_out;retried:{attempts}"),
                    Some((attempts, false, _)) => format!("retried:{attempts}"),
                    None => "ok".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{}",
                    m.carbon_g,
                    m.total_cost,
                    m.mean_wait_hours,
                    m.mean_completion_hours,
                    m.reserved_utilization,
                    m.evictions,
                    m.jobs,
                    status,
                    audit,
                );
            }
            None => {
                let error = result.error().unwrap_or("failed");
                let _ = writeln!(out, ",,,,,,,{},", csv_field(&format!("failed: {error}")));
            }
        }
    }
    out
}

/// Across-seed aggregation, one row per scenario group. Deterministic.
pub fn aggregate_csv(groups: &[GroupSummary]) -> String {
    let mut out = String::from(
        "group,policy,region,family,scale,reserved,eviction,billing_days,seeds,\
         carbon_g_mean,carbon_g_std,carbon_g_cov,total_cost_mean,total_cost_std,\
         mean_wait_hours_mean,mean_wait_hours_std\n",
    );
    for group in groups {
        let s = &group.exemplar;
        let a = &group.stats;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(&group.key),
            csv_field(&a.name),
            csv_field(s.region.code()),
            csv_field(s.family.name()),
            csv_field(&s.scale.token()),
            s.cluster.reserved,
            s.cluster.eviction,
            s.cluster.billing_days,
            a.carbon_g.n,
            a.carbon_g.mean,
            a.carbon_g.std_dev,
            a.carbon_g.cov(),
            a.total_cost.mean,
            a.total_cost.std_dev,
            a.mean_wait_hours.mean,
            a.mean_wait_hours.std_dev,
        );
    }
    out
}

/// Across-seed aggregation as JSON. Deterministic.
pub fn aggregate_json(groups: &[GroupSummary]) -> String {
    let mut out = String::from("{\n  \"groups\": [\n");
    for (i, group) in groups.iter().enumerate() {
        let a = &group.stats;
        let _ = write!(
            out,
            "    {{\"group\": {}, \"policy\": {}, \"seeds\": {}, \
             \"carbon_g\": {}, \"total_cost\": {}, \"mean_wait_hours\": {}}}",
            json_string(&group.key),
            json_string(&a.name),
            a.carbon_g.n,
            stats_json(&a.carbon_g),
            stats_json(&a.total_cost),
            stats_json(&a.mean_wait_hours),
        );
        out.push_str(if i + 1 < groups.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn stats_json(stats: &gaia_metrics::SeedStats) -> String {
    format!(
        "{{\"mean\": {}, \"std\": {}, \"min\": {}, \"max\": {}}}",
        json_f64(stats.mean),
        json_f64(stats.std_dev),
        json_f64(stats.min),
        json_f64(stats.max),
    )
}

/// Run metadata. NOT byte-stable across reruns (contains wall-clock).
pub fn manifest_json(run: &SweepRun, timing: Option<TimingBench>) -> String {
    manifest_json_observed(run, timing, None)
}

/// [`manifest_json`] with an optional `"profile"` phase-timing block
/// (from a [`Profiler`] that observed the run).
pub fn manifest_json_observed(
    run: &SweepRun,
    timing: Option<TimingBench>,
    profile: Option<&Profiler>,
) -> String {
    let grid = &run.grid;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"grid\": {},", json_string(&grid.describe()));
    let _ = writeln!(
        out,
        "  \"policies\": [{}],",
        grid.policies
            .iter()
            .map(|p| json_string(&p.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"regions\": [{}],",
        grid.regions
            .iter()
            .map(|r| json_string(r.code()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"families\": [{}],",
        grid.families
            .iter()
            .map(|f| json_string(f.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"scale\": {},", json_string(&grid.scale.token()));
    let _ = writeln!(
        out,
        "  \"seeds\": [{}],",
        grid.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"scenario_count\": {},", run.results.len());
    let _ = writeln!(out, "  \"workers\": {},", run.workers);
    let _ = writeln!(
        out,
        "  \"wall_clock_secs\": {},",
        json_f64(run.wall.as_secs_f64())
    );
    let _ = writeln!(
        out,
        "  \"trace_cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},",
        run.cache_stats.hits, run.cache_stats.misses, run.cache_stats.entries
    );
    let failures = run.failed_cells();
    let _ = writeln!(
        out,
        "  \"audit\": {{\"enabled\": {}, \"violations\": {}, \"failed_cells\": {}, \
         \"failures\": [{}]}},",
        run.audited,
        run.audit_violations(),
        failures.len(),
        failures
            .iter()
            .map(|cell| {
                format!(
                    "{{\"key\": {}, \"error\": {}}}",
                    json_string(&cell.key),
                    json_string(cell.error().unwrap_or("failed")),
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    // Failed cells are excluded from aggregate.csv/aggregate.json; the
    // manifest records how many replicates the aggregation lost so an
    // unaudited sweep can't silently publish thinner statistics.
    let dropped = run
        .results
        .iter()
        .filter(|cell| cell.summary().is_none())
        .count();
    let _ = writeln!(out, "  \"aggregation\": {{\"dropped_cells\": {dropped}}},");
    let retried = run.retried_cells();
    let _ = writeln!(
        out,
        "  \"retries\": {{\"retried_cells\": {}, \"cells\": [{}]}},",
        retried.len(),
        retried
            .iter()
            .map(|cell| {
                let (attempts, timed_out, error) = cell
                    .retry_provenance()
                    .expect("retried_cells only returns retried cells");
                format!(
                    "{{\"key\": {}, \"attempts\": {attempts}, \
                     \"timed_out\": {timed_out}, \"recovered_error\": {}}}",
                    json_string(&cell.key),
                    json_string(error),
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    match timing {
        Some(bench) => {
            let _ = writeln!(
                out,
                "  \"timing_bench\": {{\"serial_secs\": {}, \"parallel_secs\": {}, \
                 \"workers\": {}, \"speedup\": {}}},",
                json_f64(bench.serial_secs),
                json_f64(bench.parallel_secs),
                bench.workers,
                json_f64(bench.speedup),
            );
        }
        None => {
            let _ = writeln!(out, "  \"timing_bench\": null,");
        }
    }
    match profile {
        Some(profiler) => {
            let _ = writeln!(out, "  \"profile\": {},", profiler.to_json());
        }
        None => {
            let _ = writeln!(out, "  \"profile\": null,");
        }
    }
    let _ = writeln!(out, "  \"git_describe\": {}", json_string(&git_describe()));
    out.push_str("}\n");
    out
}

/// `git describe --always --dirty`, or `"unknown"` outside a checkout.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // JSON has no Infinity/NaN literals.
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal RFC-4180 line parser for the round-trip test: splits one
    /// CSV record into fields, honoring quoting and doubled quotes.
    fn parse_csv_record(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' if field.is_empty() => quoted = true,
                ',' if !quoted => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
        fields.push(field);
        fields
    }

    #[test]
    fn csv_field_round_trips_through_rfc4180_parsing() {
        let tricky = [
            "plain",
            "with,comma",
            "with \"quotes\"",
            "both, \"at\" once",
            "trailing\nnewline",
            "",
        ];
        let line = tricky
            .iter()
            .map(|f| csv_field(f))
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(parse_csv_record(&line), tricky.to_vec());
    }

    #[test]
    fn csv_field_leaves_plain_fields_untouched() {
        assert_eq!(csv_field("NoWait/US-CA/Alibaba"), "NoWait/US-CA/Alibaba");
        assert_eq!(csv_field("123.5"), "123.5");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_maps_non_finite_to_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn git_describe_returns_something() {
        assert!(!git_describe().is_empty());
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gaia-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_failure_preserves_old_contents_and_removes_tmp() {
        let dir = tempdir("atomic-fail");
        let target = dir.join("manifest.json");
        atomic_write(&target, b"old complete bytes").unwrap();

        // Failure before the tmp file exists: the target's `.tmp`
        // sibling path is occupied by a directory, so `File::create`
        // fails and the old contents survive.
        fs::create_dir(dir.join("manifest.tmp")).unwrap();
        assert!(atomic_write(&target, b"new bytes").is_err());
        assert_eq!(fs::read(&target).unwrap(), b"old complete bytes");
        fs::remove_dir(dir.join("manifest.tmp")).unwrap();

        // Failure at rename time: the target path is a non-empty
        // directory, so the rename fails — and the tmp file must have
        // been cleaned up.
        let dir_target = dir.join("occupied");
        fs::create_dir(&dir_target).unwrap();
        fs::write(dir_target.join("x"), b"x").unwrap();
        assert!(atomic_write(&dir_target, b"bytes").is_err());
        assert!(!dir.join("occupied.tmp").exists(), "tmp not removed");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readers_never_observe_partial_bytes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = tempdir("atomic-race");
        let target = dir.join("scenarios.csv");
        // Two full payloads with distinct lengths and bytes; any mix or
        // truncation is detectable.
        let a: Vec<u8> = std::iter::repeat_n(b'a', 64 * 1024).collect();
        let b: Vec<u8> = std::iter::repeat_n(b'b', 96 * 1024).collect();
        atomic_write(&target, &a).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let stop = Arc::clone(&stop);
            let target = target.clone();
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let bytes = fs::read(&target).expect("target always present");
                    assert!(
                        bytes == a || bytes == b,
                        "reader observed partial write: {} bytes",
                        bytes.len()
                    );
                    reads += 1;
                }
                reads
            })
        };
        for i in 0..200 {
            atomic_write(&target, if i % 2 == 0 { &b } else { &a }).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let reads = reader.join().expect("reader thread");
        assert!(reads > 0, "reader never ran");
        fs::remove_dir_all(&dir).unwrap();
    }
}
