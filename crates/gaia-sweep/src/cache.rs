//! Memoizing trace cache shared read-only across sweep workers.
//!
//! Year-scale carbon and workload synthesis dominates sweep setup cost:
//! a 100k-job trace takes orders of magnitude longer to generate than
//! to hand out. Sweeps over policies × regions × seeds reuse the same
//! (region, seed) carbon trace and (family, scale, seed) workload trace
//! in many cells, so the cache generates each once — under a
//! `parking_lot::RwLock`-guarded map — and shares it as an
//! `Arc<CarbonTrace>` / `Arc<WorkloadTrace>` across worker threads.
//!
//! Generation happens inside the write lock, which serializes two
//! workers racing to materialize the *same* trace (the second blocks
//! and then reads the first's result instead of recomputing it).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gaia_carbon::synth::synthesize_region;
use gaia_carbon::{CarbonTrace, Region};
use gaia_obs::{CacheKind, Event, Profiler, SharedSink, Sink};
use gaia_workload::synth::TraceFamily;
use gaia_workload::WorkloadTrace;
use parking_lot::RwLock;

use crate::grid::ScaleSpec;

/// Cache hit/miss/size counters, reported in the run manifest and the
/// sweep metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that generated a new trace.
    pub misses: usize,
    /// Traces currently resident (carbon + workload maps).
    pub entries: usize,
}

/// Shared, thread-safe memoization of carbon and workload traces.
#[derive(Default)]
pub struct TraceCache {
    carbon: RwLock<HashMap<(Region, u64), Arc<CarbonTrace>>>,
    workload: RwLock<HashMap<(TraceFamily, ScaleSpec, u64), Arc<WorkloadTrace>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Optional observability taps: lookup events and generation-phase
    /// timings. Both are telemetry only — cache behaviour (and thus
    /// every simulation result) is identical with or without them.
    sink: Option<SharedSink>,
    profiler: Option<Arc<Profiler>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// Emits a [`Event::CacheHit`]/[`Event::CacheMiss`] per lookup into
    /// `sink`. Lookup *order* across worker threads is scheduling-
    /// dependent, so this stream is not part of the determinism
    /// contract (the counters in [`TraceCache::stats`] are).
    pub fn with_sink(mut self, sink: SharedSink) -> TraceCache {
        self.sink = Some(sink);
        self
    }

    /// Records trace-generation time under the `trace_gen` phase.
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> TraceCache {
        self.profiler = Some(profiler);
        self
    }

    fn observe(&self, hit: bool, kind: CacheKind, key: impl FnOnce() -> String) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(sink) = &self.sink {
            let key = key();
            let event = if hit {
                Event::CacheHit { kind, key }
            } else {
                Event::CacheMiss { kind, key }
            };
            sink.clone().emit(&event);
        }
    }

    /// The year-long carbon trace for `(region, seed)`, synthesized on
    /// first use.
    pub fn carbon(&self, region: Region, seed: u64) -> Arc<CarbonTrace> {
        let key = || format!("{}/s{seed}", region.code());
        if let Some(trace) = self.carbon.read().get(&(region, seed)) {
            self.observe(true, CacheKind::Carbon, key);
            return Arc::clone(trace);
        }
        let mut map = self.carbon.write();
        // Re-check: another worker may have filled the slot while we
        // waited for the write lock.
        if let Some(trace) = map.get(&(region, seed)) {
            self.observe(true, CacheKind::Carbon, key);
            return Arc::clone(trace);
        }
        self.observe(false, CacheKind::Carbon, key);
        let trace = {
            let _gen = self.profiler.as_deref().map(|p| p.phase("trace_gen"));
            Arc::new(synthesize_region(region, seed))
        };
        map.insert((region, seed), Arc::clone(&trace));
        trace
    }

    /// The workload trace for `(family, scale, seed)`, synthesized on
    /// first use.
    pub fn workload(&self, family: TraceFamily, scale: ScaleSpec, seed: u64) -> Arc<WorkloadTrace> {
        let key = || format!("{}/{}/s{seed}", family.name(), scale.token());
        if let Some(trace) = self.workload.read().get(&(family, scale, seed)) {
            self.observe(true, CacheKind::Workload, key);
            return Arc::clone(trace);
        }
        let mut map = self.workload.write();
        if let Some(trace) = map.get(&(family, scale, seed)) {
            self.observe(true, CacheKind::Workload, key);
            return Arc::clone(trace);
        }
        self.observe(false, CacheKind::Workload, key);
        let trace = {
            let _gen = self.profiler.as_deref().map(|p| p.phase("trace_gen"));
            Arc::new(match scale {
                ScaleSpec::Week => family.week_long_1k(seed),
                ScaleSpec::Year { jobs } => family.year_long(jobs, seed),
            })
        };
        map.insert((family, scale, seed), Arc::clone(&trace));
        trace
    }

    /// Hit/miss/entry counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries(),
        }
    }

    /// Traces currently resident (carbon + workload).
    pub fn entries(&self) -> usize {
        self.carbon.read().len() + self.workload.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carbon_is_generated_once_and_shared() {
        let cache = TraceCache::new();
        let a = cache.carbon(Region::SouthAustralia, 1);
        let b = cache.carbon(Region::SouthAustralia, 1);
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the first trace");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn distinct_keys_generate_distinct_traces() {
        let cache = TraceCache::new();
        let a = cache.carbon(Region::SouthAustralia, 1);
        let b = cache.carbon(Region::SouthAustralia, 2);
        let c = cache.carbon(Region::California, 1);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn workload_cache_keys_on_family_scale_seed() {
        let cache = TraceCache::new();
        let week = cache.workload(TraceFamily::AlibabaPai, ScaleSpec::Week, 42);
        let again = cache.workload(TraceFamily::AlibabaPai, ScaleSpec::Week, 42);
        let other_seed = cache.workload(TraceFamily::AlibabaPai, ScaleSpec::Week, 43);
        assert!(Arc::ptr_eq(&week, &again));
        assert!(!Arc::ptr_eq(&week, &other_seed));
        assert_eq!(week.len(), 1000);
    }

    #[test]
    fn sink_observes_lookups_and_entries_track_residency() {
        use gaia_obs::VecSink;
        let store = Arc::new(std::sync::Mutex::new(VecSink::new()));
        struct Probe(Arc<std::sync::Mutex<VecSink>>);
        impl Sink for Probe {
            fn emit(&mut self, event: &Event) {
                self.0.lock().unwrap().emit(event);
            }
        }
        let cache = TraceCache::new().with_sink(SharedSink::new(Probe(Arc::clone(&store))));
        cache.carbon(Region::SouthAustralia, 1);
        cache.carbon(Region::SouthAustralia, 1);
        cache.workload(TraceFamily::AlibabaPai, ScaleSpec::Week, 42);
        assert_eq!(cache.entries(), 2, "one carbon + one workload trace");
        let events = store.lock().unwrap().events().to_vec();
        assert_eq!(
            events,
            vec![
                Event::CacheMiss {
                    kind: CacheKind::Carbon,
                    key: "SA-AU/s1".to_owned(),
                },
                Event::CacheHit {
                    kind: CacheKind::Carbon,
                    key: "SA-AU/s1".to_owned(),
                },
                Event::CacheMiss {
                    kind: CacheKind::Workload,
                    key: "Alibaba/week/s42".to_owned(),
                },
            ]
        );
    }

    #[test]
    fn concurrent_lookups_share_one_generation() {
        let cache = TraceCache::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| cache.carbon(Region::Ontario, 7)))
                .collect();
            let traces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for t in &traces[1..] {
                assert!(Arc::ptr_eq(&traces[0], t));
            }
        });
        assert_eq!(cache.stats().misses, 1, "exactly one generation");
    }
}
