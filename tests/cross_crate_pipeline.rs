//! Cross-crate integration: CSV round trips feeding simulations, custom
//! forecasters plugged into the engine, and determinism across the whole
//! pipeline.

use gaia_carbon::{synth::synthesize_region, NoisyForecaster, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_metrics::runner;
use gaia_sim::{ClusterConfig, Simulation};
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;

#[test]
fn csv_round_trip_preserves_simulation_results() {
    let carbon = synthesize_region(Region::California, 1);
    let trace = TraceFamily::AlibabaPai.week_long_1k(1);
    let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(9));

    // Serialize both traces to CSV and back.
    let mut carbon_csv = Vec::new();
    gaia_carbon::io::write_trace_csv(&mut carbon_csv, &carbon).expect("write carbon");
    let carbon2 = gaia_carbon::io::read_trace_csv(&carbon_csv[..]).expect("read carbon");
    let mut trace_csv = Vec::new();
    gaia_workload::io::write_trace_csv(&mut trace_csv, &trace).expect("write workload");
    let trace2 = gaia_workload::io::read_trace_csv(&trace_csv[..]).expect("read workload");

    let spec = PolicySpec::plain(BasePolicyKind::CarbonTime);
    let original = runner::run_spec_report(spec, &trace, &carbon, config);
    let round_tripped = runner::run_spec_report(spec, &trace2, &carbon2, config);
    assert_eq!(original, round_tripped);
}

#[test]
fn noisy_forecasts_degrade_but_do_not_break_savings() {
    let carbon = synthesize_region(Region::SouthAustralia, 1);
    let trace = TraceFamily::AlibabaPai.week_long_1k(1);
    let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(9));
    let queues = runner::default_queues(&trace);

    let nowait = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &trace,
        &carbon,
        config,
    );

    let run_with_noise = |sd: f64| {
        let forecaster = NoisyForecaster::new(&carbon, sd, 7);
        let mut scheduler = PolicySpec::plain(BasePolicyKind::CarbonTime).build(queues);
        let report = Simulation::new(config, &carbon)
            .with_forecaster(&forecaster)
            .runner(&trace, &mut scheduler)
            .execute()
            .expect("valid policy decisions")
            .into_report();
        report.totals.carbon_g
    };

    let perfect = run_with_noise(0.0);
    let noisy = run_with_noise(0.4);
    // Perfect forecasts match the default path exactly.
    let default_run = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        &trace,
        &carbon,
        config,
    );
    assert!((perfect - default_run.carbon_g).abs() < 1e-6);
    // Noise hurts (or at best matches) the savings but keeps them real.
    assert!(
        noisy >= perfect * 0.99,
        "noise should not magically help much"
    );
    assert!(
        noisy < nowait.carbon_g,
        "even heavily noisy forecasts retain some savings"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run_once = || {
        let carbon = synthesize_region(Region::Netherlands, 9);
        let trace = TraceFamily::MustangHpc.year_long(2_000, 9);
        let config = ClusterConfig::default()
            .with_reserved(40)
            .with_billing_horizon(Minutes::from_days(368));
        runner::run_spec_report(
            PolicySpec::res_first(BasePolicyKind::CarbonTime),
            &trace,
            &carbon,
            config,
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn summaries_match_reports() {
    let carbon = synthesize_region(Region::Ontario, 3);
    let trace = TraceFamily::AzureVm.year_long(1_000, 3);
    let config = ClusterConfig::default()
        .with_reserved(10)
        .with_billing_horizon(Minutes::from_days(368));
    let spec = PolicySpec::plain(BasePolicyKind::LowestWindow);
    let report = runner::run_spec_report(spec, &trace, &carbon, config);
    let summary = runner::run_spec(spec, &trace, &carbon, config);
    assert_eq!(summary.carbon_g, report.totals.carbon_g);
    assert_eq!(summary.total_cost, report.totals.total_cost());
    assert_eq!(summary.jobs, trace.len());
    // Totals equal the per-job sums.
    let job_carbon: f64 = report.jobs.iter().map(|j| j.carbon_g).sum();
    assert!((job_carbon - report.totals.carbon_g).abs() < 1e-6);
}
