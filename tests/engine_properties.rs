//! Property-based tests (proptest) over the whole scheduling stack:
//! random workloads, random carbon traces, random cluster shapes — the
//! invariants must hold for every combination.

use gaia_carbon::CarbonTrace;
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_metrics::runner;
use gaia_sim::{ClusterConfig, EvictionModel, PurchaseOption};
use gaia_time::{Minutes, SimTime};
use gaia_workload::{Job, JobId, QueueSet, WorkloadTrace};
use proptest::prelude::*;

/// Random hourly carbon trace: 4-10 days, intensities 10..1000.
fn carbon_strategy() -> impl Strategy<Value = CarbonTrace> {
    proptest::collection::vec(10.0f64..1000.0, 96..240)
        .prop_map(|values| CarbonTrace::from_hourly(values).expect("positive values"))
}

/// Random workload: up to 60 jobs over up to 3 days.
fn workload_strategy() -> impl Strategy<Value = WorkloadTrace> {
    proptest::collection::vec((0u64..4320, 5u64..2880, 1u32..6), 1..60).prop_map(|jobs| {
        WorkloadTrace::from_jobs(
            jobs.into_iter()
                .map(|(arrival, length, cpus)| {
                    Job::new(
                        JobId(0),
                        SimTime::from_minutes(arrival),
                        Minutes::new(length),
                        cpus,
                    )
                })
                .collect(),
        )
    })
}

fn policy_strategy() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::plain(BasePolicyKind::NoWait)),
        Just(PolicySpec::plain(BasePolicyKind::AllWaitThreshold)),
        Just(PolicySpec::plain(BasePolicyKind::LowestSlot)),
        Just(PolicySpec::plain(BasePolicyKind::LowestWindow)),
        Just(PolicySpec::plain(BasePolicyKind::CarbonTime)),
        Just(PolicySpec::plain(BasePolicyKind::WaitAwhile)),
        Just(PolicySpec::plain(BasePolicyKind::Ecovisor)),
        Just(PolicySpec::res_first(BasePolicyKind::CarbonTime)),
        Just(PolicySpec::spot_first(BasePolicyKind::LowestWindow)),
        Just(PolicySpec::spot_res(BasePolicyKind::CarbonTime)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every job finishes, executes at least its length (more only after
    /// evictions), and waiting/completion satisfy the paper's identity
    /// completion = waiting + length.
    #[test]
    fn jobs_complete_and_identities_hold(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        spec in policy_strategy(),
        reserved in 0u32..8,
        eviction in prop_oneof![Just(0.0f64), Just(0.1), Just(0.5)],
    ) {
        let config = ClusterConfig::default()
            .with_reserved(reserved)
            .with_eviction(EvictionModel::hourly(eviction))
            .with_seed(1)
            .with_billing_horizon(Minutes::from_days(10));
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        prop_assert_eq!(report.jobs.len(), trace.len());
        for outcome in &report.jobs {
            prop_assert!(outcome.finish > outcome.job.arrival);
            prop_assert!(outcome.executed() >= outcome.job.length);
            if outcome.evictions == 0 {
                prop_assert_eq!(outcome.executed(), outcome.job.length);
            }
            prop_assert_eq!(
                outcome.completion,
                outcome.waiting + outcome.job.length
            );
            prop_assert!(outcome.first_start >= outcome.job.arrival);
            prop_assert!(outcome.carbon_g >= 0.0);
            prop_assert!(outcome.cost >= 0.0);
            // Exactly the final segment chain is useful work.
            let useful: Minutes = outcome
                .segments
                .iter()
                .filter(|s| s.useful)
                .map(|s| s.len())
                .sum();
            prop_assert_eq!(useful, outcome.job.length);
        }
    }

    /// Reserved capacity is never oversubscribed: the timeline's hourly
    /// average reserved occupancy never exceeds the capacity.
    #[test]
    fn reserved_capacity_never_oversubscribed(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        spec in policy_strategy(),
        reserved in 0u32..8,
    ) {
        let config = ClusterConfig::default()
            .with_reserved(reserved)
            .with_billing_horizon(Minutes::from_days(10));
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        for (hour, &occupancy) in report.timeline.reserved.iter().enumerate() {
            prop_assert!(
                occupancy <= reserved as f64 + 1e-9,
                "hour {} reserved occupancy {} exceeds capacity {}",
                hour, occupancy, reserved
            );
        }
    }

    /// Cluster totals are exactly the sum of per-job outcomes plus the
    /// reserved prepayment.
    #[test]
    fn totals_equal_sum_of_jobs(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        spec in policy_strategy(),
        reserved in 0u32..8,
    ) {
        let config = ClusterConfig::default()
            .with_reserved(reserved)
            .with_billing_horizon(Minutes::from_days(10));
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        let carbon_sum: f64 = report.jobs.iter().map(|j| j.carbon_g).sum();
        prop_assert!((report.totals.carbon_g - carbon_sum).abs() < 1e-6);
        let usage_cost: f64 = report.jobs.iter().map(|j| j.cost).sum();
        let total = report.totals.total_cost();
        prop_assert!(
            (total - report.totals.cost_reserved_prepaid - usage_cost).abs() < 1e-6,
            "total {} != prepaid {} + usage {}",
            total, report.totals.cost_reserved_prepaid, usage_cost
        );
    }

    /// Per-job carbon equals the CI integral over its executed segments:
    /// recomputing it from the trace gives the same number.
    #[test]
    fn job_carbon_matches_trace_integral(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        spec in policy_strategy(),
    ) {
        let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(10));
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        for outcome in &report.jobs {
            let expected: f64 = outcome
                .segments
                .iter()
                .map(|s| carbon.window_integral(s.start, s.len()) * outcome.job.cpus as f64)
                .sum();
            prop_assert!(
                (outcome.carbon_g - expected).abs() < 1e-6,
                "{:?}: {} vs {}", outcome.job.id, outcome.carbon_g, expected
            );
        }
    }

    /// Uninterruptible policies respect the queue waiting bound on start
    /// times for every random workload and trace.
    #[test]
    fn start_delay_bounded_by_queue_wait(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        kind in prop_oneof![
            Just(BasePolicyKind::LowestSlot),
            Just(BasePolicyKind::LowestWindow),
            Just(BasePolicyKind::CarbonTime),
        ],
    ) {
        let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(10));
        let report = runner::run_spec_report(PolicySpec::plain(kind), &trace, &carbon, config);
        let queues = QueueSet::paper_defaults();
        for outcome in &report.jobs {
            let bound = queues.max_wait_for(&outcome.job);
            prop_assert!(
                outcome.first_start.saturating_since(outcome.job.arrival) <= bound
            );
        }
    }

    /// With checkpointing and instance overheads enabled, every job still
    /// completes, executes at least its length, and keeps the
    /// completion = waiting + length identity.
    #[test]
    fn extensions_preserve_core_invariants(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        eviction in prop_oneof![Just(0.0f64), Just(0.2), Just(0.6)],
        interval_h in 1u64..6,
        overhead_min in 0u64..20,
        boot_min in 0u64..15,
    ) {
        use gaia_sim::{CheckpointConfig, InstanceOverheads};
        let config = ClusterConfig::default()
            .with_eviction(EvictionModel::hourly(eviction))
            .with_checkpointing(CheckpointConfig::every_hours(interval_h, overhead_min))
            .with_overheads(InstanceOverheads {
                startup: Minutes::new(boot_min),
                teardown: Minutes::new(boot_min / 2),
            })
            .with_seed(5)
            .with_billing_horizon(Minutes::from_days(30));
        let spec = PolicySpec::spot_first(BasePolicyKind::CarbonTime);
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        prop_assert_eq!(report.jobs.len(), trace.len());
        for outcome in &report.jobs {
            prop_assert!(outcome.finish > outcome.job.arrival);
            prop_assert!(outcome.executed() >= outcome.job.length);
            prop_assert_eq!(outcome.completion, outcome.waiting + outcome.job.length);
            prop_assert!(outcome.carbon_g >= 0.0 && outcome.cost >= 0.0);
        }
    }

    /// A zero eviction rate is byte-identical to the eviction-free model,
    /// and raising reserved capacity never increases NoWait's cost.
    #[test]
    fn zero_eviction_equals_never(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
    ) {
        let spec = PolicySpec::spot_first(BasePolicyKind::CarbonTime);
        let base = ClusterConfig::default().with_billing_horizon(Minutes::from_days(10));
        let a = runner::run_spec_report(
            spec, &trace, &carbon, base.with_eviction(EvictionModel::hourly(0.0)));
        let b = runner::run_spec_report(
            spec, &trace, &carbon, base.with_eviction(EvictionModel::never()));
        prop_assert_eq!(a, b);
    }

    /// Spot-First uses spot only for jobs within the cap, and those jobs'
    /// initial segments really are spot.
    #[test]
    fn spot_first_routes_by_length(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
    ) {
        let spec = PolicySpec::spot_first(BasePolicyKind::LowestWindow);
        let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(10));
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        for outcome in &report.jobs {
            let first = outcome.segments.first().expect("job executed");
            if outcome.job.length <= Minutes::from_hours(2) {
                prop_assert_eq!(first.option, PurchaseOption::Spot);
            } else {
                prop_assert!(first.option != PurchaseOption::Spot);
            }
        }
    }

    /// The invariant audit reports zero violations on every random
    /// (carbon, workload, policy, cluster) combination — the audit layer
    /// must never flag a healthy run.
    #[test]
    fn audit_is_clean_on_random_grids(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        spec in policy_strategy(),
        reserved in 0u32..8,
        eviction in prop_oneof![Just(0.0f64), Just(0.1), Just(0.5)],
    ) {
        let config = ClusterConfig::default()
            .with_reserved(reserved)
            .with_eviction(EvictionModel::hourly(eviction))
            .with_seed(3)
            .with_billing_horizon(Minutes::from_days(10));
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        let audit = gaia_sim::audit_report(&report, &config, &carbon);
        prop_assert!(audit.checks_run > 0);
        prop_assert!(
            audit.is_clean(),
            "audit violations on a healthy run: {:?}",
            audit.violations
        );
    }

    /// The audit's relaxed mode (checkpointing + instance overheads
    /// enabled) also never flags a healthy run.
    #[test]
    fn audit_is_clean_under_extension_configs(
        carbon in carbon_strategy(),
        trace in workload_strategy(),
        eviction in prop_oneof![Just(0.0f64), Just(0.2), Just(0.6)],
        interval_h in 1u64..6,
        overhead_min in 0u64..20,
        boot_min in 0u64..15,
    ) {
        use gaia_sim::{CheckpointConfig, InstanceOverheads};
        let config = ClusterConfig::default()
            .with_eviction(EvictionModel::hourly(eviction))
            .with_checkpointing(CheckpointConfig::every_hours(interval_h, overhead_min))
            .with_overheads(InstanceOverheads {
                startup: Minutes::new(boot_min),
                teardown: Minutes::new(boot_min / 2),
            })
            .with_seed(5)
            .with_billing_horizon(Minutes::from_days(30));
        let spec = PolicySpec::spot_first(BasePolicyKind::CarbonTime);
        let report = runner::run_spec_report(spec, &trace, &carbon, config);
        let audit = gaia_sim::audit_report(&report, &config, &carbon);
        prop_assert!(
            audit.is_clean(),
            "audit violations under extensions: {:?}",
            audit.violations
        );
    }
}
