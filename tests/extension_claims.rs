//! Integration tests pinning the qualitative findings of the extension
//! experiments (EXPERIMENTS.md §Extensions), at CI-friendly scale.

use gaia_carbon::price::PriceModel;
use gaia_carbon::{synth::synthesize_region, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_core::{
    CarbonTax, CarbonTimeSuspend, GaiaScheduler, PriceAware, SpotConfig, TieredCarbonTime,
};
use gaia_metrics::{runner, savings_per_wait_hour, Summary};
use gaia_sim::{CapacityCap, CheckpointConfig, ClusterConfig, EvictionModel, Simulation};
use gaia_time::{HourlySlots, Minutes};
use gaia_workload::ladder::QueueLadder;
use gaia_workload::synth::TraceFamily;
use gaia_workload::WorkloadTrace;

fn setup() -> (WorkloadTrace, gaia_carbon::CarbonTrace, ClusterConfig) {
    (
        TraceFamily::AlibabaPai.week_long_1k(42),
        synthesize_region(Region::SouthAustralia, 42),
        ClusterConfig::default().with_billing_horizon(Minutes::from_days(9)),
    )
}

/// Suspend-resume Carbon-Time sits between Carbon-Time and Wait Awhile
/// on carbon, without waiting longer than the carbon-only baselines —
/// the §4.1 future-work prediction.
#[test]
fn suspend_resume_carbon_time_dominates_ecovisor() {
    let (trace, ci, config) = setup();
    let queues = runner::default_queues(&trace);
    let mut sr = GaiaScheduler::new(CarbonTimeSuspend::new(queues));
    let sr_report = Simulation::new(config, &ci)
        .runner(&trace, &mut sr)
        .execute()
        .expect("valid policy decisions")
        .into_report();
    let sr_summary = Summary::of("Carbon-Time-SR", &sr_report);
    let ct = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        &trace,
        &ci,
        config,
    );
    let wa = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::WaitAwhile),
        &trace,
        &ci,
        config,
    );
    let eco = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::Ecovisor),
        &trace,
        &ci,
        config,
    );

    assert!(
        sr_summary.carbon_g <= ct.carbon_g,
        "interruption can only help carbon"
    );
    assert!(
        sr_summary.carbon_g >= wa.carbon_g * 0.98,
        "Wait Awhile is the carbon floor"
    );
    // The headline: strictly better than Ecovisor on both axes.
    assert!(sr_summary.carbon_g < eco.carbon_g);
    assert!(sr_summary.mean_wait_hours < eco.mean_wait_hours);
}

/// The carbon tax interpolates monotonically: more tax, less carbon,
/// more waiting (within small tolerances for scan-grid ties).
#[test]
fn carbon_tax_interpolates_monotonically() {
    let (trace, ci, config) = setup();
    let queues = runner::default_queues(&trace);
    let mut prev_carbon = f64::INFINITY;
    for tax in [0.0, 0.05, 0.2, 1.0, 10.0] {
        let mut scheduler = GaiaScheduler::new(CarbonTax::new(queues, tax, 0.05));
        let report = Simulation::new(config, &ci)
            .runner(&trace, &mut scheduler)
            .execute()
            .expect("valid policy decisions")
            .into_report();
        let carbon = report.totals.carbon_g;
        assert!(
            carbon <= prev_carbon * 1.005,
            "carbon must not rise with the tax (tax {tax}: {carbon} vs {prev_carbon})"
        );
        prev_carbon = carbon;
    }
    // Zero tax is NoWait; high tax approaches Lowest-Window.
    let nowait = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &trace,
        &ci,
        config,
    );
    let lw = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::LowestWindow),
        &trace,
        &ci,
        config,
    );
    let mut zero_tax = GaiaScheduler::new(CarbonTax::new(queues, 0.0, 0.05));
    let zero = Simulation::new(config, &ci)
        .runner(&trace, &mut zero_tax)
        .execute()
        .expect("valid policy decisions")
        .into_report();
    assert!((zero.totals.carbon_g - nowait.carbon_g).abs() < 1e-6 * nowait.carbon_g);
    assert!(
        prev_carbon < lw.carbon_g * 1.05,
        "high tax approaches Lowest-Window"
    );
}

/// Checkpointing rescues long spot jobs from eviction losses: cheaper
/// and no dirtier than the paper's lose-everything model.
#[test]
fn checkpointing_beats_lose_everything_under_evictions() {
    let trace = TraceFamily::AzureVm.year_long(2_000, 42);
    let ci = synthesize_region(Region::SouthAustralia, 42);
    let spec = PolicySpec {
        base: BasePolicyKind::CarbonTime,
        res_first: false,
        spot: Some(SpotConfig {
            j_max: Minutes::from_hours(24),
        }),
    };
    let base = ClusterConfig::default()
        .with_billing_horizon(Minutes::from_days(368))
        .with_eviction(EvictionModel::hourly(0.10))
        .with_seed(7);
    let without = runner::run_spec(spec, &trace, &ci, base);
    let with = runner::run_spec(
        spec,
        &trace,
        &ci,
        base.with_checkpointing(CheckpointConfig::every_hours(1, 3)),
    );
    assert!(
        with.total_cost < without.total_cost,
        "checkpointing recovers the spot discount"
    );
    assert!(
        with.carbon_g < without.carbon_g * 1.02,
        "and does not burn more carbon"
    );
    assert!(
        with.evictions > 0,
        "evictions still happen; they just hurt less"
    );
}

/// Carbon-responsive caps trade carbon for waiting, but GAIA's per-job
/// scheduling dominates them at comparable waiting.
#[test]
fn capacity_caps_trade_but_gaia_dominates() {
    let (trace, ci, config) = setup();
    let nowait = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &trace,
        &ci,
        config,
    );
    let capped_config = config.with_capacity_cap(CapacityCap::CarbonResponsive {
        normal_cap: 1000,
        high_carbon_cap: 5,
        ci_threshold: 250.0,
    });
    let capped = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &trace,
        &ci,
        capped_config,
    );
    let gaia = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        &trace,
        &ci,
        config,
    );

    assert!(capped.carbon_g < nowait.carbon_g, "caps save carbon");
    assert!(capped.mean_wait_hours > 0.5, "caps cost waiting");
    // GAIA saves more carbon without waiting much longer.
    assert!(gaia.carbon_g < capped.carbon_g);
    assert!(gaia.mean_wait_hours < capped.mean_wait_hours * 2.0);
}

/// The three-tier ladder is at least as wait-efficient as the two-queue
/// configuration (§7's knee, encoded as queue policy).
#[test]
fn tiered_ladder_improves_wait_efficiency() {
    let (trace, ci, config) = setup();
    let nowait = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &trace,
        &ci,
        config,
    );
    let two_queue = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::CarbonTime),
        &trace,
        &ci,
        config,
    );
    let ladder = QueueLadder::paper_three_tier().with_averages_from(&trace);
    let mut scheduler = GaiaScheduler::new(TieredCarbonTime::new(ladder));
    let tiered = Summary::of(
        "tiered",
        &Simulation::new(config, &ci)
            .runner(&trace, &mut scheduler)
            .execute()
            .expect("valid policy decisions")
            .into_report(),
    );
    assert!(
        savings_per_wait_hour(&nowait, &tiered)
            >= savings_per_wait_hour(&nowait, &two_queue) * 0.98,
        "tiered {} vs two-queue {}",
        savings_per_wait_hour(&nowait, &tiered),
        savings_per_wait_hour(&nowait, &two_queue)
    );
    assert!(tiered.mean_wait_hours < two_queue.mean_wait_hours);
}

/// Price-aware scheduling: the λ extremes optimize their own objective
/// at the expense of the other (Figure 20's conflict).
#[test]
fn price_aware_extremes_conflict() {
    let trace = TraceFamily::AlibabaPai.week_long_1k(42);
    let ci = synthesize_region(Region::California, 42);
    let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(9));
    let price = PriceModel::default().synthesize(&ci, 42);
    let queues = runner::default_queues(&trace);
    let run = |weight: f64| {
        let mut scheduler =
            GaiaScheduler::new(PriceAware::new(queues, price.clone(), weight, ci.mean()));
        Simulation::new(config, &ci)
            .runner(&trace, &mut scheduler)
            .execute()
            .expect("valid policy decisions")
            .into_report()
    };
    let bill = |report: &gaia_sim::SimReport| -> f64 {
        let price = &price;
        report
            .jobs
            .iter()
            .flat_map(|o| {
                let cpus = o.job.cpus as f64;
                o.segments.iter().map(move |s| {
                    HourlySlots::new(s.start, s.end)
                        .map(|span| price.price_at_hour(span.hour) * span.fraction())
                        .sum::<f64>()
                        * cpus
                })
            })
            .sum()
    };
    let cost_optimal = run(0.0);
    let carbon_optimal = run(1.0);
    assert!(
        bill(&cost_optimal) < bill(&carbon_optimal),
        "λ=0 minimizes the bill"
    );
    assert!(
        carbon_optimal.totals.carbon_g < cost_optimal.totals.carbon_g,
        "λ=1 minimizes carbon"
    );
}
