//! Integration tests asserting the paper's *qualitative* claims end to
//! end, at a scale small enough for CI (a few thousand jobs).
//!
//! These are the invariants the evaluation figures rest on; the figure
//! binaries reproduce the quantitative versions.

use gaia_carbon::{synth::synthesize_region, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_core::SpotConfig;
use gaia_metrics::{runner, savings_per_cost_point, Summary};
use gaia_sim::{ClusterConfig, EvictionModel};
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;
use gaia_workload::WorkloadTrace;

fn week_setup() -> (WorkloadTrace, gaia_carbon::CarbonTrace, ClusterConfig) {
    let trace = TraceFamily::AlibabaPai.week_long_1k(42);
    let carbon = synthesize_region(Region::SouthAustralia, 42);
    let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(9));
    (trace, carbon, config)
}

fn run(
    spec: PolicySpec,
    setup: &(WorkloadTrace, gaia_carbon::CarbonTrace, ClusterConfig),
) -> Summary {
    runner::run_spec(spec, &setup.0, &setup.1, setup.2)
}

/// Figure 8: carbon ordering — suspend-resume (WaitAwhile) < Lowest-Window
/// <= Carbon-Time-ish < Lowest-Slot < NoWait; waiting ordering inverted.
#[test]
fn figure8_carbon_and_waiting_ordering() {
    let setup = week_setup();
    let nowait = run(PolicySpec::plain(BasePolicyKind::NoWait), &setup);
    let slot = run(PolicySpec::plain(BasePolicyKind::LowestSlot), &setup);
    let window = run(PolicySpec::plain(BasePolicyKind::LowestWindow), &setup);
    let ct = run(PolicySpec::plain(BasePolicyKind::CarbonTime), &setup);
    let wa = run(PolicySpec::plain(BasePolicyKind::WaitAwhile), &setup);
    let eco = run(PolicySpec::plain(BasePolicyKind::Ecovisor), &setup);

    assert!(
        wa.carbon_g < eco.carbon_g,
        "WaitAwhile beats Ecovisor on carbon"
    );
    assert!(
        eco.carbon_g < slot.carbon_g,
        "Ecovisor beats Lowest-Slot on carbon"
    );
    assert!(window.carbon_g < slot.carbon_g, "window beats single slot");
    assert!(
        slot.carbon_g < nowait.carbon_g,
        "every carbon-aware policy beats NoWait"
    );
    assert!(ct.carbon_g < nowait.carbon_g);

    assert_eq!(nowait.mean_wait_hours, 0.0);
    assert!(
        ct.mean_wait_hours < wa.mean_wait_hours,
        "Carbon-Time waits less than Wait Awhile ({} vs {})",
        ct.mean_wait_hours,
        wa.mean_wait_hours
    );
    // Carbon-Time gives up only a bounded fraction of Lowest-Window's
    // savings while waiting strictly less.
    assert!(ct.mean_wait_hours < window.mean_wait_hours);
    let window_saving = nowait.carbon_g - window.carbon_g;
    let ct_saving = nowait.carbon_g - ct.carbon_g;
    assert!(
        ct_saving > 0.6 * window_saving,
        "Carbon-Time keeps most of Lowest-Window's savings"
    );
}

/// Figure 10: with reserved capacity, AllWait-Threshold is the cheapest
/// and RES-First-Carbon-Time sits between AllWait's cost and Carbon-Time's
/// carbon.
#[test]
fn figure10_hybrid_cluster_tension() {
    let (trace, carbon, config) = week_setup();
    let config = config.with_reserved(9);
    let setup = (trace, carbon, config);
    let nowait = run(PolicySpec::plain(BasePolicyKind::NoWait), &setup);
    let allwait = run(PolicySpec::plain(BasePolicyKind::AllWaitThreshold), &setup);
    let ct = run(PolicySpec::plain(BasePolicyKind::CarbonTime), &setup);
    let res_ct = run(PolicySpec::res_first(BasePolicyKind::CarbonTime), &setup);
    let wa = run(PolicySpec::plain(BasePolicyKind::WaitAwhile), &setup);

    // Cost ordering: AllWait cheapest; carbon-aware suspend-resume most
    // expensive; RES-First in between.
    assert!(allwait.total_cost < nowait.total_cost);
    assert!(allwait.total_cost < res_ct.total_cost);
    assert!(
        res_ct.total_cost < ct.total_cost,
        "work conservation saves money"
    );
    assert!(
        wa.total_cost > allwait.total_cost,
        "fragmented demand is expensive"
    );
    // Carbon ordering: AllWait saves little carbon; RES-First retains a
    // meaningful share of Carbon-Time's savings.
    let ct_saving = nowait.carbon_g - ct.carbon_g;
    let res_saving = nowait.carbon_g - res_ct.carbon_g;
    assert!(res_saving > 0.25 * ct_saving);
    assert!(res_ct.carbon_g < allwait.carbon_g);
    // Work conservation also slashes waiting.
    assert!(res_ct.mean_wait_hours < ct.mean_wait_hours);
    // And keeps reserved instances busier.
    assert!(res_ct.reserved_utilization > ct.reserved_utilization);
}

/// Figure 11: as reserved capacity grows under RES-First, waiting falls
/// monotonically and carbon savings shrink.
#[test]
fn figure11_reserved_sweep_monotonicity() {
    let (trace, carbon, base_config) = week_setup();
    let mut prev_wait = f64::INFINITY;
    let mut prev_carbon = 0.0;
    for reserved in [0u32, 6, 12, 18, 24] {
        let setup = (
            trace.clone(),
            carbon.clone(),
            base_config.with_reserved(reserved),
        );
        let run = run(PolicySpec::res_first(BasePolicyKind::CarbonTime), &setup);
        assert!(
            run.mean_wait_hours <= prev_wait + 0.02,
            "waiting must fall with reserved capacity (R={reserved})"
        );
        assert!(
            run.carbon_g >= prev_carbon - 1.0,
            "carbon savings must shrink with reserved capacity (R={reserved})"
        );
        prev_wait = run.mean_wait_hours;
        prev_carbon = run.carbon_g;
    }
}

/// Figure 12 / headline: spot execution keeps the carbon-aware schedule
/// at lower cost, and GAIA's composed policies dominate the prior
/// carbon-aware baselines on savings-per-cost.
#[test]
fn figure12_spot_keeps_carbon_cuts_cost() {
    let setup = week_setup();
    let ct = run(PolicySpec::plain(BasePolicyKind::CarbonTime), &setup);
    let spot_ct = run(PolicySpec::spot_first(BasePolicyKind::CarbonTime), &setup);
    assert!(
        (spot_ct.carbon_g - ct.carbon_g).abs() < 0.01 * ct.carbon_g,
        "without evictions, spot does not change the schedule's carbon"
    );
    assert!(
        spot_ct.total_cost < 0.9 * ct.total_cost,
        "spot discount shows up in cost"
    );
}

/// Headline claim: GAIA (Spot-RES/RES-First around Carbon-Time) at least
/// doubles the carbon savings per percentage of cost increase relative to
/// the prior carbon-aware policies (Wait Awhile, Ecovisor) on a hybrid
/// cluster.
#[test]
fn headline_savings_per_cost_doubles() {
    let (trace, carbon, config) = week_setup();
    let config = config.with_reserved(9);
    let setup = (trace, carbon, config);
    let nowait = run(PolicySpec::plain(BasePolicyKind::NoWait), &setup);
    let gaia = run(PolicySpec::spot_res(BasePolicyKind::CarbonTime), &setup);
    let wa = run(PolicySpec::plain(BasePolicyKind::WaitAwhile), &setup);
    let eco = run(PolicySpec::plain(BasePolicyKind::Ecovisor), &setup);

    let gaia_ratio = savings_per_cost_point(&nowait, &gaia);
    let wa_ratio = savings_per_cost_point(&nowait, &wa);
    let eco_ratio = savings_per_cost_point(&nowait, &eco);
    assert!(
        gaia_ratio >= 2.0 * wa_ratio.max(eco_ratio),
        "GAIA {gaia_ratio} vs WaitAwhile {wa_ratio} / Ecovisor {eco_ratio}"
    );
}

/// Figure 15/16: regional variability governs savings — South Australia
/// saves a large fraction, Kentucky almost nothing, and waiting time is
/// essentially region-invariant.
#[test]
fn regional_variability_governs_savings() {
    let trace = TraceFamily::AlibabaPai.year_long(3_000, 42);
    let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(368));
    let mut savings = Vec::new();
    let mut waits = Vec::new();
    for region in [Region::SouthAustralia, Region::Kentucky] {
        let carbon = synthesize_region(region, 42);
        let nowait = runner::run_spec(
            PolicySpec::plain(BasePolicyKind::NoWait),
            &trace,
            &carbon,
            config,
        );
        let ct = runner::run_spec(
            PolicySpec::plain(BasePolicyKind::CarbonTime),
            &trace,
            &carbon,
            config,
        );
        savings.push(1.0 - ct.carbon_g / nowait.carbon_g);
        waits.push(ct.mean_wait_hours);
    }
    let (sa, ky) = (savings[0], savings[1]);
    assert!(sa > 0.15, "South Australia saves a lot ({sa})");
    assert!(ky < 0.05, "Kentucky saves almost nothing ({ky})");
    // Waiting similar across regions (within an hour).
    assert!((waits[0] - waits[1]).abs() < 1.0, "waits {waits:?}");
}

/// Figure 18: with evictions, extending the spot cap to long jobs raises
/// carbon (recomputation) relative to the eviction-free run.
#[test]
fn figure18_evictions_penalize_long_spot_jobs() {
    let trace = TraceFamily::AzureVm.year_long(3_000, 42);
    let carbon = synthesize_region(Region::SouthAustralia, 42);
    let spec = PolicySpec {
        base: BasePolicyKind::CarbonTime,
        res_first: false,
        spot: Some(SpotConfig {
            j_max: Minutes::from_hours(24),
        }),
    };
    let billing = ClusterConfig::default().with_billing_horizon(Minutes::from_days(368));
    let clean = runner::run_spec(spec, &trace, &carbon, billing);
    let evicted = runner::run_spec(
        spec,
        &trace,
        &carbon,
        billing
            .with_eviction(EvictionModel::hourly(0.15))
            .with_seed(7),
    );
    assert_eq!(clean.evictions, 0);
    assert!(
        evicted.evictions > 100,
        "15%/h must evict many 24h-capped jobs"
    );
    assert!(
        evicted.carbon_g > 1.02 * clean.carbon_g,
        "lost progress burns extra carbon ({} vs {})",
        evicted.carbon_g,
        clean.carbon_g
    );
    assert!(
        evicted.total_cost > clean.total_cost,
        "recomputation costs money"
    );
}

/// §6.1's sanity: every policy respects its queue's maximum waiting time
/// for the *start* of execution (uninterruptible policies).
#[test]
fn waiting_limits_are_respected() {
    let (trace, carbon, config) = week_setup();
    for kind in [
        BasePolicyKind::NoWait,
        BasePolicyKind::LowestSlot,
        BasePolicyKind::LowestWindow,
        BasePolicyKind::CarbonTime,
    ] {
        let report = runner::run_spec_report(PolicySpec::plain(kind), &trace, &carbon, config);
        for outcome in &report.jobs {
            let max_wait = if outcome.job.length <= Minutes::from_hours(2) {
                Minutes::from_hours(6)
            } else {
                Minutes::from_hours(24)
            };
            let delay = outcome.first_start.saturating_since(outcome.job.arrival);
            assert!(
                delay <= max_wait,
                "{}: {} delayed {delay} beyond {max_wait}",
                kind.name(),
                outcome.job.id
            );
        }
    }
}
