//! Forecast quality: does GAIA need the paper's perfect-forecast
//! assumption?
//!
//! The paper assumes perfect carbon-intensity forecasts, citing their
//! real-world accuracy (§6.1). This example plugs three forecasters of
//! decreasing quality into the same Carbon-Time scheduler — perfect,
//! a noisy model forecast, and the forecast-free persistence baseline —
//! and reports both the forecast error (MAPE at 12/24 h leads) and the
//! carbon savings actually realized.
//!
//! ```sh
//! cargo run --release --example forecast_quality
//! ```

use gaia_carbon::{
    forecast_mape, synth::synthesize_region, CarbonForecaster, NoisyForecaster, PerfectForecaster,
    PersistenceForecaster, Region,
};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_core::{CarbonTime, GaiaScheduler};
use gaia_metrics::runner;
use gaia_sim::{ClusterConfig, Simulation};
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;

fn main() {
    let carbon = synthesize_region(Region::SouthAustralia, 42);
    let workload = TraceFamily::AlibabaPai.week_long_1k(42);
    let queues = runner::default_queues(&workload);
    let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(9));
    let nowait = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &workload,
        &carbon,
        config,
    );

    let perfect = PerfectForecaster::new(&carbon);
    let model = NoisyForecaster::new(&carbon, 0.15, 7);
    let persistence = PersistenceForecaster::new(&carbon);
    let forecasters: [(&str, &dyn CarbonForecaster); 3] = [
        ("perfect (paper assumption)", &perfect),
        ("noisy model (sd 0.15/day)", &model),
        ("persistence (yesterday)", &persistence),
    ];

    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>10}",
        "forecaster", "MAPE @12h", "MAPE @24h", "carbon/NoWait", "wait (h)"
    );
    for (name, forecaster) in forecasters {
        let mape12 = forecast_mape(forecaster, &carbon, Minutes::from_hours(12));
        let mape24 = forecast_mape(forecaster, &carbon, Minutes::from_hours(24));
        let mut scheduler = GaiaScheduler::new(CarbonTime::new(queues));
        let report = Simulation::new(config, &carbon)
            .with_forecaster(forecaster)
            .runner(&workload, &mut scheduler)
            .execute()
            .expect("valid policy decisions")
            .into_report();
        println!(
            "{:<28} {:>11.1}% {:>11.1}% {:>14.3} {:>10.2}",
            name,
            mape12 * 100.0,
            mape24 * 100.0,
            report.totals.carbon_g / nowait.carbon_g,
            report.totals.mean_waiting().as_hours_f64(),
        );
    }
    println!(
        "\nEven the forecast-free persistence baseline retains most of the\n\
         savings: the diurnal CI structure does the heavy lifting, which is\n\
         why the paper's perfect-forecast assumption is benign."
    );
}
