//! Region picker: where does carbon-aware scheduling actually pay off?
//!
//! The paper's §6.4.3 shows that *normalized* savings track a region's
//! carbon variability while *absolute* savings also depend on its average
//! intensity — and that users should weigh total reductions, not
//! percentages. This example replays the same ML workload in all six
//! studied regions and prints both views plus the per-region
//! savings-per-waiting-hour efficiency.
//!
//! ```sh
//! cargo run --release --example region_picker
//! ```

use gaia_carbon::{stats::TraceStats, synth::synthesize_region, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_metrics::{runner, savings_per_wait_hour};
use gaia_sim::ClusterConfig;
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;

fn main() {
    let workload = TraceFamily::AlibabaPai.year_long(10_000, 42);
    let config = ClusterConfig::default().with_billing_horizon(Minutes::from_days(368));
    println!(
        "workload: {} jobs over one year, mean demand {:.1} CPUs\n",
        workload.len(),
        workload.mean_demand()
    );
    println!(
        "{:<7} {:>10} {:>6} {:>14} {:>12} {:>10} {:>12}",
        "region", "mean CI", "CoV", "carbon saved", "saved (kg)", "wait (h)", "save%/wait-h"
    );

    let mut best_absolute: Option<(Region, f64)> = None;
    for region in Region::ALL {
        let carbon = synthesize_region(region, 42);
        let stats = TraceStats::of(&carbon);
        let baseline = runner::run_spec(
            PolicySpec::plain(BasePolicyKind::NoWait),
            &workload,
            &carbon,
            config,
        );
        let run = runner::run_spec(
            PolicySpec::plain(BasePolicyKind::CarbonTime),
            &workload,
            &carbon,
            config,
        );
        let saved_kg = (baseline.carbon_g - run.carbon_g) / 1000.0;
        println!(
            "{:<7} {:>10.0} {:>6.2} {:>13.1}% {:>12.0} {:>10.2} {:>12.2}",
            region.code(),
            stats.mean,
            stats.cov,
            (1.0 - run.carbon_g / baseline.carbon_g) * 100.0,
            saved_kg,
            run.mean_wait_hours,
            savings_per_wait_hour(&baseline, &run),
        );
        if best_absolute.is_none_or(|(_, s)| saved_kg > s) {
            best_absolute = Some((region, saved_kg));
        }
    }
    let (region, saved) = best_absolute.expect("six regions");
    println!(
        "\nLargest absolute reduction: {} ({saved:.0} kg CO2eq avoided).\n\
         Note how stable regions (SE, KY-US) barely reward shifting, while the\n\
         waiting time you pay is nearly identical everywhere — exactly the\n\
         paper's argument for judging regions by total, not normalized, savings.",
        region.name()
    );
}
