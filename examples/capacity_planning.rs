//! Capacity planning: how many reserved instances should a cost-conscious
//! but carbon-aware team buy?
//!
//! The paper's answer (§7, finding 4): reserve between the *base* and the
//! *mean* demand. Below the base, carbon stays near-optimal while cost
//! falls; between base and mean you trade carbon for cost; beyond the
//! mean, cost stops improving and flexibility is gone. This example
//! sweeps reserved capacity for an HPC-like workload, prints the
//! frontier, and marks the paper's recommended operating band.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use gaia_carbon::{synth::synthesize_region, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_metrics::runner;
use gaia_sim::ClusterConfig;
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;

fn main() {
    let carbon = synthesize_region(Region::California, 42);
    let workload = TraceFamily::MustangHpc.year_long(10_000, 42);
    let curve = workload.demand_curve();
    let base = curve.quantile(0.10);
    let mean = workload.mean_demand();
    println!(
        "Mustang-like HPC workload: {} jobs, base (p10) demand {:.0} CPUs, \
         mean demand {:.0} CPUs, peak {:.0} CPUs\n",
        workload.len(),
        base,
        mean,
        curve.peak()
    );

    let billing = Minutes::from_days(368);
    let baseline = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &workload,
        &carbon,
        ClusterConfig::default().with_billing_horizon(billing),
    );

    println!(
        "{:>9} {:>12} {:>14} {:>10} {:>8}",
        "reserved", "cost/NoWait", "carbon/NoWait", "wait (h)", "band"
    );
    let mut best: Option<(u32, f64)> = None;
    let steps: Vec<u32> = (0..=12)
        .map(|i| (mean * i as f64 / 8.0).round() as u32)
        .collect();
    for reserved in steps {
        let run = runner::run_spec(
            PolicySpec::res_first(BasePolicyKind::CarbonTime),
            &workload,
            &carbon,
            ClusterConfig::default()
                .with_reserved(reserved)
                .with_billing_horizon(billing),
        );
        let cost = run.total_cost / baseline.total_cost;
        let band = if (reserved as f64) < base {
            "<- regime 1: free cost savings"
        } else if (reserved as f64) <= mean {
            "<- regime 2: carbon-cost trade-off"
        } else {
            "<- regime 3: avoid"
        };
        println!(
            "{:>9} {:>12.3} {:>14.3} {:>10.2} {band}",
            reserved,
            cost,
            run.carbon_g / baseline.carbon_g,
            run.mean_wait_hours,
        );
        if best.is_none_or(|(_, c)| cost < c) {
            best = Some((reserved, cost));
        }
    }
    let (best_reserved, best_cost) = best.expect("non-empty sweep");
    println!(
        "\nCheapest point: {best_reserved} reserved CPUs at {:.0}% of the NoWait cost.",
        best_cost * 100.0
    );
    println!(
        "Recommendation per the paper: reserve between {:.0} (base) and {:.0} (mean) CPUs\n\
         and pick the point whose carbon/cost balance matches your priorities.",
        base, mean
    );
}
