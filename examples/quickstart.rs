//! Quickstart: schedule a week of batch jobs carbon-aware and see what it
//! saves — and what it costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gaia_carbon::{synth::synthesize_region, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_metrics::{relative_to, runner};
use gaia_sim::ClusterConfig;
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;

fn main() {
    // 1. A carbon-intensity year for South Australia (high variability —
    //    lots of room for temporal shifting) and a week-long, 1000-job
    //    workload modeled on the Alibaba-PAI ML cluster.
    let carbon = synthesize_region(Region::SouthAustralia, 42);
    let workload = TraceFamily::AlibabaPai.week_long_1k(42);
    println!(
        "workload: {} jobs, mean demand {:.1} CPUs",
        workload.len(),
        workload.mean_demand()
    );

    // 2. A cluster with 9 prepaid reserved CPUs; everything above that
    //    spills to on-demand instances. One reserved contract period for
    //    all policies so costs are comparable.
    let config = ClusterConfig::default()
        .with_reserved(9)
        .with_billing_horizon(Minutes::from_days(9));

    // 3. Run the carbon-agnostic baseline and GAIA's flagship policy.
    let baseline = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &workload,
        &carbon,
        config,
    );
    let gaia = runner::run_spec(
        PolicySpec::res_first(BasePolicyKind::CarbonTime),
        &workload,
        &carbon,
        config,
    );

    // 4. Compare.
    let rel = relative_to(&gaia, &baseline);
    println!(
        "\n{:<24} {:>12} {:>12} {:>12}",
        "policy", "carbon (kg)", "cost ($)", "wait (h)"
    );
    for s in [&baseline, &gaia] {
        println!(
            "{:<24} {:>12.1} {:>12.2} {:>12.2}",
            s.name,
            s.carbon_kg(),
            s.total_cost,
            s.mean_wait_hours
        );
    }
    println!(
        "\nRES-First-Carbon-Time: {:.1}% less carbon and {:.1}% {} cost than NoWait,",
        (1.0 - rel.carbon) * 100.0,
        (rel.cost - 1.0).abs() * 100.0,
        if rel.cost > 1.0 { "more" } else { "less" },
    );
    println!("at {:.1} h of average waiting.", gaia.mean_wait_hours);
}
