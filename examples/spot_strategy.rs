//! Spot strategy: how long a job is too long for a spot instance?
//!
//! Spot instances cost 20% of on-demand but can be evicted, losing all
//! progress. The paper's §6.4.5 shows the break-even depends on the
//! eviction rate: with no evictions, put everything on spot; at 10-15%
//! hourly eviction, anything beyond a few hours *loses* money and burns
//! extra carbon on recomputation. This example sweeps the spot length
//! cap J^max across eviction rates for a VM-like workload and prints the
//! best cap per rate.
//!
//! ```sh
//! cargo run --release --example spot_strategy
//! ```

use gaia_carbon::{synth::synthesize_region, Region};
use gaia_core::catalog::{BasePolicyKind, PolicySpec};
use gaia_core::SpotConfig;
use gaia_metrics::runner;
use gaia_sim::{ClusterConfig, EvictionModel};
use gaia_time::Minutes;
use gaia_workload::synth::TraceFamily;

fn main() {
    let carbon = synthesize_region(Region::SouthAustralia, 42);
    let workload = TraceFamily::AzureVm.year_long(10_000, 42);
    let billing = Minutes::from_days(368);
    let baseline = runner::run_spec(
        PolicySpec::plain(BasePolicyKind::NoWait),
        &workload,
        &carbon,
        ClusterConfig::default().with_billing_horizon(billing),
    );
    println!(
        "workload: {} jobs; baseline (NoWait, on-demand): ${:.0}, {:.0} kg CO2eq\n",
        workload.len(),
        baseline.total_cost,
        baseline.carbon_kg()
    );

    for rate in [0.0, 0.05, 0.10, 0.15] {
        println!("hourly eviction rate {:.0}%:", rate * 100.0);
        println!(
            "  {:>10} {:>12} {:>14} {:>10}",
            "J^max (h)", "cost/NoWait", "carbon/NoWait", "evictions"
        );
        let mut best: Option<(u64, f64)> = None;
        for j_max in [2u64, 6, 12, 18, 24] {
            let spec = PolicySpec {
                base: BasePolicyKind::CarbonTime,
                res_first: false,
                spot: Some(SpotConfig {
                    j_max: Minutes::from_hours(j_max),
                }),
            };
            let run = runner::run_spec(
                spec,
                &workload,
                &carbon,
                ClusterConfig::default()
                    .with_eviction(EvictionModel::hourly(rate))
                    .with_seed(7)
                    .with_billing_horizon(billing),
            );
            let cost = run.total_cost / baseline.total_cost;
            println!(
                "  {:>10} {:>12.3} {:>14.3} {:>10}",
                j_max,
                cost,
                run.carbon_g / baseline.carbon_g,
                run.evictions
            );
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((j_max, cost));
            }
        }
        let (best_j, _) = best.expect("non-empty sweep");
        println!("  -> best spot cap at this eviction rate: J^max = {best_j} h\n");
    }
    println!(
        "Paper's finding 5 (§7): use spot for short jobs; with real-world\n\
         eviction rates the sweet spot sits at a few hours, not a day."
    );
}
