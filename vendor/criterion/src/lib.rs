//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface GAIA's benches use
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `black_box`)
//! but replaces the statistical engine with a simple
//! warmup-then-median wall-clock measurement printed to stdout. Good
//! enough to compare orders of magnitude offline; not a replacement
//! for real criterion runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Configures the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            median: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.median);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Configures the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            median: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.0), b.median);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            median: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.median);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name and a parameter display.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Id from a parameter display alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Times closures passed to `iter`.
pub struct Bencher {
    sample_size: usize,
    median: Duration,
}

impl Bencher {
    /// Measures `routine`: one warmup call, then `sample_size` timed
    /// calls; records the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed()
            })
            .collect();
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
    }
}

fn report(name: &str, median: Duration) {
    println!("bench: {name:<50} median {median:>12.3?}");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
