//! Offline stand-in for `serde_derive`.
//!
//! The GAIA workspace derives `Serialize`/`Deserialize` on its data
//! types per the C-SERDE convention but never routes them through a
//! serde `Serializer` (artifact CSV/JSON output is hand-rolled). This
//! proc-macro accepts the same derive syntax — including `#[serde(...)]`
//! attributes — and emits nothing; the sibling `serde` stub provides
//! blanket marker impls so `T: Serialize` bounds still hold.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
