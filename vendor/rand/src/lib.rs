//! Offline stand-in for `rand` 0.9.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the narrow slice of the `rand` API that GAIA consumes:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256\*\* seeded via SplitMix64 rather than upstream's
//!   ChaCha12; streams differ from upstream but every GAIA experiment
//!   only relies on *internal* determinism per seed);
//! * [`Rng::random`] for `f64`/`f32`/`u64`/`u32`/`bool`;
//! * [`Rng::random_range`] over half-open and inclusive integer/float
//!   ranges;
//! * [`Rng::random_bool`];
//! * [`seq::index::sample`] — distinct-index sampling without
//!   replacement.
//!
//! All methods are deterministic functions of the seed, which is the
//! property the simulator, the trace synthesizers, and the sweep
//! subsystem depend on.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from raw bits (the `StandardUniform`
/// distribution in upstream rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per call, far below anything the simulator can observe.
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The user-facing random-value API, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform bits; `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: Into<UniformRange<T>>,
    {
        match range.into() {
            UniformRange::HalfOpen(lo, hi) => T::sample_half_open(self, lo, hi),
            UniformRange::Inclusive(lo, hi) => T::sample_inclusive(self, lo, hi),
        }
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Either flavour of uniform range accepted by [`Rng::random_range`].
#[derive(Debug, Clone, Copy)]
pub enum UniformRange<T> {
    /// `lo..hi`
    HalfOpen(T, T),
    /// `lo..=hi`
    Inclusive(T, T),
}

impl<T: SampleUniform> From<std::ops::Range<T>> for UniformRange<T> {
    fn from(r: std::ops::Range<T>) -> Self {
        UniformRange::HalfOpen(r.start, r.end)
    }
}

impl<T: SampleUniform> From<std::ops::RangeInclusive<T>> for UniformRange<T> {
    fn from(r: std::ops::RangeInclusive<T>) -> Self {
        UniformRange::Inclusive(*r.start(), *r.end())
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator standing in for
    /// `rand::rngs::StdRng`.
    ///
    /// Not the same stream as upstream `StdRng` (ChaCha12); GAIA's
    /// experiments are calibrated to their own seeds, not upstream's
    /// bit patterns, so only per-seed determinism matters.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    /// Index sampling, mirroring `rand::seq::index`.
    pub mod index {
        use crate::{RngCore, SampleUniform};

        /// Distinct indices sampled from `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The selected indices in draw order.
            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }

            /// Number of selected indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no index was selected.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The selected indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = usize::sample_half_open(rng, i, length);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_draws_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn index_sample_is_distinct_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let picked = super::seq::index::sample(&mut rng, 100, 30);
        let v = picked.into_vec();
        assert_eq!(v.len(), 30);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "indices are distinct");
        assert!(v.iter().all(|&i| i < 100));
    }
}
