//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API that GAIA's property tests
//! use, backed by deterministic seeded sampling rather than shrinking
//! test runners:
//!
//! * the [`proptest!`] macro over `fn name(arg in strategy, ...)`
//!   items, with an optional `#![proptest_config(...)]` header;
//! * [`strategy::Strategy`] with ranges, tuples, [`strategy::Just`],
//!   [`prop_oneof!`], `.prop_map(..)` and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Each generated test runs `Config::cases` deterministic cases seeded
//! from the test's name, so failures are reproducible run-to-run. There
//! is no shrinking: the failing inputs are printed as-is.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Runner configuration, mirroring `proptest::test_runner`.

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of deterministic cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies, mirroring `proptest::strategy`.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy for heterogeneous composition.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (the [`crate::prop_oneof!`]
    /// backing type).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Vector of values from `element`, of length within `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min_len..self.max_len);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Derives the per-test base seed from the test's name, so every
/// property has a distinct but stable stream.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the RNG for one case of a property.
pub fn case_rng(base_seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(base_seed ^ ((case as u64) << 32 | 0x5EED))
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Skips the current case when an assumption fails. Without a shrinking
/// runner this simply moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property-test entry point mirroring `proptest::proptest!`.
///
/// Supports the form used across GAIA's test suites: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $args:tt $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default());
            $(#[$meta])* fn $name $args $body $($rest)*);
    };
    (@funcs ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident(
            $($arg:ident in $strategy:expr),* $(,)?
        ) $body:block
    )*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let base_seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                #[allow(unused_variables)]
                for case in 0..config.cases {
                    let mut case_rng = $crate::case_rng(base_seed, case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut case_rng);)*
                    $body
                }
            }
        )*
    };
}
