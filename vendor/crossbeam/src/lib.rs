//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` with the multi-producer,
//! multi-consumer semantics the sweep worker pool relies on (cloneable
//! `Sender` *and* `Receiver`, disconnect on last-sender drop),
//! implemented on `std::sync::{Mutex, Condvar}` rather than
//! crossbeam's lock-free internals. The API subset matches
//! `crossbeam-channel`: `unbounded`, `send`, `recv`, `try_recv`,
//! iteration over a `Receiver`.

pub mod channel {
    //! MPMC channels, mirroring `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel drained
    /// and every sender disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and every sender disconnected.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake every blocked receiver so it can
                // observe the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn multi_consumer_partitions_items() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            std::thread::scope(|scope| {
                let a = scope.spawn(move || rx.iter().count());
                let b = scope.spawn(move || rx2.iter().count());
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                assert_eq!(a.join().unwrap() + b.join().unwrap(), 1000);
            });
        }

        #[test]
        fn cloned_sender_keeps_channel_alive() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7u32).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
