//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free API
//! (`lock()` / `read()` / `write()` return guards directly). A
//! poisoned std lock — a panic while holding the guard — propagates as
//! a panic here, matching parking_lot's behaviour of not poisoning.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Mutual exclusion lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> StdReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> StdWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard type aliases matching parking_lot's names.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;
/// Shared-read guard alias.
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Exclusive-write guard alias.
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
