//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides just enough of serde's surface for the workspace to
//! compile: the `Serialize`/`Deserialize` trait names (with blanket
//! marker impls, so bounds are always satisfiable) and the derive
//! macros (no-ops from the sibling `serde_derive` stub). Actual
//! serialization in GAIA is hand-rolled (CSV/JSON writers in
//! `gaia-sim::output` and `gaia-sweep::store`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use crate::DeserializeOwned;
}
