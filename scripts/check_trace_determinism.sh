#!/usr/bin/env bash
# Trace determinism gate for the reference scenario (the `gaia run`
# defaults: Carbon-Time / SA-AU / Alibaba week-long 1k jobs / seed 42).
#
#  1. runs the traced scenario twice and byte-compares the JSONL streams;
#  2. summarizes the trace with `gaia trace summarize` (which also
#     validates the stream: monotone timestamps, balanced segments);
#  3. diffs the summary against the committed golden file, so any drift
#     in the event schema or the simulation itself fails loudly.
#
# Regenerate the golden after an intentional change with:
#   ./scripts/check_trace_determinism.sh --bless
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=tests/golden/trace_summary.txt
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

cargo build --release -p gaia-cli

echo "== traced reference scenario, run 1"
./target/release/gaia run --trace "${WORK}/a.jsonl" > /dev/null
echo "== traced reference scenario, run 2"
./target/release/gaia run --trace "${WORK}/b.jsonl" > /dev/null
cmp "${WORK}/a.jsonl" "${WORK}/b.jsonl"
echo "trace streams are byte-identical ($(wc -l < "${WORK}/a.jsonl") events)"

echo "== gaia trace summarize"
./target/release/gaia trace summarize "${WORK}/a.jsonl" > "${WORK}/summary.txt"

if [[ "${1:-}" == "--bless" ]]; then
  mkdir -p "$(dirname "${GOLDEN}")"
  cp "${WORK}/summary.txt" "${GOLDEN}"
  echo "golden updated: ${GOLDEN}"
  exit 0
fi

diff -u "${GOLDEN}" "${WORK}/summary.txt"
echo "summary matches the golden file: ${GOLDEN}"
