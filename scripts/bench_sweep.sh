#!/usr/bin/env bash
# Sweep-orchestration benchmark: cold vs warm result cache vs 3-way
# sharded execution of a year-scale grid through SweepRunner. Every leg
# differentially checks its results against the cold run. Writes
# BENCH_sweep.json at the repo root and fails (exit 1) if the warm-cache
# speedup drops below the committed 5x floor — the cache must actually
# skip completed cells. Pass --quick (or set GAIA_BENCH_QUICK=1) for the
# CI smoke variant with a shrunken grid; quick mode writes
# target/BENCH_sweep.quick.json and keeps the same gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin sweep_bench

if [[ "${1:-}" == "--quick" || "${GAIA_BENCH_QUICK:-0}" == "1" ]]; then
  GAIA_BENCH_OUT=target/BENCH_sweep.quick.json ./target/release/sweep_bench --quick
else
  ./target/release/sweep_bench "$@"
fi
