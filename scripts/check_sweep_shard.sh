#!/usr/bin/env bash
# Shard-determinism and resume gate for the reference grid (4 policies ×
# 3 regions × 2 seeds = 24 cells). The policy axis includes the elastic
# carbon-scale family so sharding, merging, and the result cache are
# exercised over elastic plans too.
#
#  1. runs the grid single-process with --metrics and per-cell traces;
#  2. runs the same grid as three independent `gaia sweep --shard i/3`
#     processes sharing one result cache, merges the slices with
#     `gaia sweep merge`, and byte-compares every deterministic artifact
#     (scenarios.csv, aggregate.csv, aggregate.json, metrics.json, and
#     every per-cell trace) against the single-process run;
#  3. SIGKILLs a fresh single-worker sweep mid-run, re-runs it over the
#     same result cache, and byte-compares the resumed artifacts against
#     the uninterrupted reference — an interrupted sweep must recompute
#     only the cells it never persisted and still produce identical
#     bytes.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

cargo build --release -p gaia-cli
GAIA="./target/release/gaia"
GRID=(--policies nowait,lowest-window,carbon-time,carbon-scale
  --regions sa-au,ca-us,on-ca --seeds 42,43 --metrics --no-progress)
export GAIA_LOG=warn

echo "== single-process reference run"
"${GAIA}" sweep "${GRID[@]}" --out "${WORK}/single" --name ref \
  --trace-dir "${WORK}/traces-single"

echo "== three independent shard processes + merge"
for i in 0 1 2; do
  "${GAIA}" sweep "${GRID[@]}" --out "${WORK}/sharded" --name ref \
    --shard "${i}/3" --trace-dir "${WORK}/traces-sharded"
done
"${GAIA}" sweep merge --out "${WORK}/sharded" --name ref

for f in scenarios.csv aggregate.csv aggregate.json metrics.json; do
  cmp "${WORK}/single/ref/${f}" "${WORK}/sharded/ref/${f}"
  echo "   ${f} byte-identical"
done
for t in "${WORK}/traces-single"/*.jsonl; do
  cmp "${t}" "${WORK}/traces-sharded/$(basename "${t}")"
done
echo "   $(ls "${WORK}/traces-single" | wc -l) per-cell traces byte-identical"

echo "== SIGKILL mid-run, then resume over the same cache"
# One worker so cells persist one at a time; the kill lands while some
# cells are cached and some are not.
set +e
GAIA_WORKERS=1 "${GAIA}" sweep "${GRID[@]}" --out "${WORK}/resume" --name ref \
  --cache-dir "${WORK}/resume-cache" &
VICTIM=$!
# Wait for the first cache entries to land, then kill mid-flight.
for _ in $(seq 1 200); do
  count=$(find "${WORK}/resume-cache" -name '*.cell' 2>/dev/null | wc -l)
  [ "${count}" -ge 3 ] && break
  sleep 0.05
done
kill -9 "${VICTIM}" 2>/dev/null
wait "${VICTIM}" 2>/dev/null
set -e

SURVIVORS=$(find "${WORK}/resume-cache" -name '*.cell' | wc -l)
if [ "${SURVIVORS}" -ge 24 ]; then
  echo "kill landed too late (${SURVIVORS}/24 cells cached); resume still exercises the warm path"
else
  echo "   killed with ${SURVIVORS}/24 cells cached"
fi

"${GAIA}" sweep "${GRID[@]}" --out "${WORK}/resume" --name ref \
  --cache-dir "${WORK}/resume-cache"

for f in scenarios.csv aggregate.csv aggregate.json; do
  cmp "${WORK}/single/ref/${f}" "${WORK}/resume/ref/${f}"
  echo "   ${f} byte-identical after resume"
done

echo "sweep shard + resume gates passed"
