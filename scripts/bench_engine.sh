#!/usr/bin/env bash
# Engine benchmark: columnar OnlineEngine vs the pre-refactor per-event
# oracle replaying identical decision streams on the year-scale grid.
# Every timed replay doubles as a differential correctness check (the
# two engines must produce equal SimReports). Writes BENCH_engine.json
# at the repo root (release + debug sections merge across runs) and
# fails (exit 1) outside quick mode if the geometric-mean speedup drops
# below the committed regression floor. Pass --quick (or set
# GAIA_BENCH_QUICK=1) for the CI smoke variant with a shrunken trace;
# quick mode writes target/BENCH_engine.quick.json and skips the gates
# but keeps the differential checks.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin engine_bench

./target/release/engine_bench "$@"
