#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extension experiments
# into results/. Full scale (100k-job year traces) takes a few minutes in
# release mode; set GAIA_JOBS=20000 for a quick pass.
#
# Figure binaries that sweep grids (figure13, figure15, sensitivity,
# ablations) run on the gaia-sweep worker pool; WORKERS controls the
# pool size (default: machine parallelism via nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

WORKERS="${WORKERS:-$(nproc 2>/dev/null || echo 1)}"

cargo build --release -p bench -p gaia-cli

mkdir -p results
targets=(
  figure01 figure02 figure03 figure04 figure05 figure06 figure07 table1
  figure08 figure09 figure10 figure11 figure12 figure13 figure14 figure15
  figure16 figure17 figure18 figure19 figure20
  ablations sensitivity robustness policy_space
  ext_suspend_resume ext_carbon_tax ext_checkpointing ext_overheads
  ext_spatial ext_price ext_capacity_cap ext_multiqueue
)
for target in "${targets[@]}"; do
  echo "== ${target} (workers: ${WORKERS})"
  GAIA_WORKERS="${WORKERS}" ./target/release/"${target}" > "results/${target}.txt"
done

# Timing bench: the reference 24-scenario grid (4 policies x 3 regions
# x 2 seeds), serial vs parallel, at year scale so per-cell work
# dominates thread overhead. The serial/parallel wall-clocks and speedup
# land in the run manifest (results/sweep-bench/manifest.json); the
# CSV/JSON artifacts are byte-identical across worker counts by
# construction.
echo "== sweep-bench (1 vs ${WORKERS} workers)"
./target/release/gaia sweep \
  --policies nowait,lowest-slot,lowest-window,carbon-time \
  --regions sa-au,ca-us,on-ca --seeds 42,43 \
  --scale year --jobs "${GAIA_JOBS:-100000}" \
  --workers "${WORKERS}" --bench --no-progress \
  --out results --name sweep-bench > results/sweep-bench.txt

# Tracing-overhead gate: the NullSink instrumentation path must stay
# within 2% of the untraced simulation (results/obs_overhead.txt).
echo "== obs_overhead (NullSink budget 2%)"
./target/release/obs_overhead > results/obs_overhead.txt

# Forecast-query kernel bench: refreshes BENCH_plan_kernels.json and
# gates the ForecastIndex speedups (results/plan_kernels.txt).
echo "== plan_kernels (indexed forecast-query kernels, 5x target)"
./target/release/plan_kernels > results/plan_kernels.txt

echo "all outputs written to results/"
