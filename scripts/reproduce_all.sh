#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extension experiments
# into results/. Full scale (100k-job year traces) takes a few minutes in
# release mode; set GAIA_JOBS=20000 for a quick pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench

mkdir -p results
targets=(
  figure01 figure02 figure03 figure04 figure05 figure06 figure07 table1
  figure08 figure09 figure10 figure11 figure12 figure13 figure14 figure15
  figure16 figure17 figure18 figure19 figure20
  ablations sensitivity
  ext_suspend_resume ext_carbon_tax ext_checkpointing ext_overheads
  ext_spatial ext_price ext_capacity_cap ext_multiqueue
)
for target in "${targets[@]}"; do
  echo "== ${target}"
  ./target/release/"${target}" > "results/${target}.txt"
done
echo "all outputs written to results/"
