#!/usr/bin/env bash
# Documentation gate:
#
#  1. `cargo doc --no-deps` must build warnings-clean (broken intra-doc
#     links, missing docs on deny-listed crates, bad code fences);
#  2. every crate must open with crate-level `//!` documentation;
#  3. every binary / script named in EXPERIMENTS.md must exist, so the
#     figure-to-artifact map cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== crate-level rustdoc present"
for lib in crates/*/src/lib.rs; do
  head -1 "${lib}" | grep -q '^//!' \
    || { echo "missing crate-level docs: ${lib}"; exit 1; }
done

echo "== EXPERIMENTS.md references resolve"
if [[ -f EXPERIMENTS.md ]]; then
  # Backticked references like `figure08`, `robustness`, `gaia sweep`,
  # `scripts/reproduce_all.sh` must point at real targets.
  grep -oE '`(figure[0-9]+|table1|ablations|sensitivity|robustness|obs_overhead|plan_kernels|ext_[a-z_]+)`' EXPERIMENTS.md \
    | tr -d '`' | sort -u | while read -r bin; do
      [[ -f "crates/bench/src/bin/${bin}.rs" ]] \
        || { echo "EXPERIMENTS.md names missing binary: ${bin}"; exit 1; }
    done
  grep -oE 'scripts/[a-z_]+\.sh' EXPERIMENTS.md | sort -u | while read -r sh; do
    [[ -x "${sh}" ]] || { echo "EXPERIMENTS.md names missing script: ${sh}"; exit 1; }
  done
else
  echo "EXPERIMENTS.md not found" && exit 1
fi

echo "docs gate passed"
