#!/usr/bin/env bash
# Serve smoke + snapshot/restore byte-identity gate.
#
#  1. starts a `gaia serve` daemon and replays a 1000-submission
#     two-tenant log through the socket in one uninterrupted run;
#  2. replays the same log against a second daemon that snapshots at
#     submission 500, is shut down, and is restored from the snapshot
#     by a third daemon that takes submissions 501-1000;
#  3. byte-compares the stitched interrupted response stream against
#     the uninterrupted one — restore must be invisible on the wire;
#  4. kills (SIGKILL) a daemon that is snapshotting on every submission
#     mid-stream and asserts the snapshot left on disk is complete: a
#     fourth daemon must restore from it without error. Snapshots are
#     fsynced and renamed into place, so no kill instant may expose
#     partial bytes under the snapshot name.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

cargo build --release -p gaia-cli

GAIA=./target/release/gaia

# The submission log: 1000 jobs from two tenants at increasing arrival
# times, plus a stats probe per tenant at the end of each half.
for i in $(seq 0 999); do
  if (( i % 2 == 0 )); then tenant=acme; else tenant=blue; fi
  echo "{\"op\":\"submit\",\"tenant\":\"${tenant}\",\"at\":$(( i * 3 )),\"len\":$(( 30 + i % 240 )),\"cpus\":$(( 1 + i % 4 ))}"
done > "${WORK}/log.jsonl"
head -n 500 "${WORK}/log.jsonl" > "${WORK}/first.jsonl"
tail -n 500 "${WORK}/log.jsonl" > "${WORK}/second.jsonl"
PROBE='{"op":"stats"}
{"op":"stats","tenant":"acme"}
{"op":"stats","tenant":"blue"}'
echo "${PROBE}" >> "${WORK}/log.jsonl"
echo "${PROBE}" >> "${WORK}/second.jsonl"

# Starts a daemon with the given extra flags; sets DAEMON_PID and ADDR.
start_daemon() {
  rm -f "${WORK}/addr"
  "${GAIA}" serve --addr-file "${WORK}/addr" \
    --snapshot-path "${WORK}/serve.snap" "$@" &
  DAEMON_PID=$!
  for _ in $(seq 1 500); do
    [[ -s "${WORK}/addr" ]] && break
    sleep 0.01
  done
  ADDR="$(cat "${WORK}/addr")"
}

shutdown_daemon() {
  echo '{"op":"shutdown"}' | "${GAIA}" serve --connect "${ADDR}" > /dev/null
  wait "${DAEMON_PID}"
}

echo "== uninterrupted run: 1000 submissions"
start_daemon --snapshot-every 500
"${GAIA}" serve --connect "${ADDR}" < "${WORK}/log.jsonl" > "${WORK}/reference.out"
shutdown_daemon
rm -f "${WORK}/serve.snap"

echo "== interrupted run: 500 submissions, snapshot, kill"
start_daemon --snapshot-every 500
"${GAIA}" serve --connect "${ADDR}" < "${WORK}/first.jsonl" > "${WORK}/first.out"
shutdown_daemon
[[ -f "${WORK}/serve.snap" ]] || { echo "snapshot was not written" >&2; exit 1; }

echo "== restored run: submissions 501-1000"
start_daemon --snapshot-every 500 --restore "${WORK}/serve.snap"
"${GAIA}" serve --connect "${ADDR}" < "${WORK}/second.jsonl" > "${WORK}/second.out"
shutdown_daemon

cat "${WORK}/first.out" "${WORK}/second.out" > "${WORK}/stitched.out"
cmp "${WORK}/reference.out" "${WORK}/stitched.out"
echo "restored response stream is byte-identical ($(wc -l < "${WORK}/reference.out") responses)"

echo "== crash run: SIGKILL mid-snapshot-storm, snapshot must stay whole"
rm -f "${WORK}/serve.snap"
start_daemon --snapshot-every 1
# Stream submissions from a slow producer so the kill lands while the
# daemon is busy persisting one snapshot per accepted submission.
(
  while IFS= read -r line; do printf '%s\n' "${line}"; done < "${WORK}/first.jsonl"
) | "${GAIA}" serve --connect "${ADDR}" > /dev/null &
CLIENT_PID=$!
for _ in $(seq 1 500); do
  [[ -f "${WORK}/serve.snap" ]] && break
  sleep 0.01
done
[[ -f "${WORK}/serve.snap" ]] || { echo "no snapshot before the kill" >&2; exit 1; }
kill -9 "${DAEMON_PID}"
wait "${DAEMON_PID}" 2> /dev/null || true
wait "${CLIENT_PID}" 2> /dev/null || true

echo "== restore from the crash-interrupted snapshot"
start_daemon --restore "${WORK}/serve.snap"
echo '{"op":"stats"}' | "${GAIA}" serve --connect "${ADDR}" > "${WORK}/crash-stats.out"
shutdown_daemon
grep -q '"ok":true' "${WORK}/crash-stats.out" \
  || { echo "restore after SIGKILL failed:" >&2; cat "${WORK}/crash-stats.out" >&2; exit 1; }
echo "snapshot survived SIGKILL mid-storm and restored cleanly"
