#!/usr/bin/env bash
# Gates the tracing layer's zero-overhead claim: runs the NullSink-vs-
# untraced comparison in release mode and fails (exit 1) if the median
# overhead exceeds the budget (2%, or GAIA_OBS_OVERHEAD_MAX percent).
# The report lands in results/obs_overhead.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench

mkdir -p results
./target/release/obs_overhead | tee results/obs_overhead.txt
