#!/usr/bin/env bash
# Gates the observability overhead claims, in release mode:
#
#   1. obs_overhead — the tracing layer's zero-overhead claim: NullSink
#      vs untraced simulation, median overhead within the budget.
#   2. telemetry_overhead — the serving telemetry's always-on claim:
#      histograms + SLO accounting + flight recorder may consume at
#      most the budgeted share of the engine thread's per-request
#      budget at the contracted serving rate.
#
# Both budgets default to 2% and honor GAIA_OBS_OVERHEAD_MAX percent.
# Reports land in results/obs_overhead.txt and
# results/telemetry_overhead.txt; either gate failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench

mkdir -p results
./target/release/obs_overhead | tee results/obs_overhead.txt
./target/release/telemetry_overhead | tee results/telemetry_overhead.txt
