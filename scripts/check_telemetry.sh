#!/usr/bin/env bash
# Live-telemetry gate: the always-on observability of a serving daemon.
#
#  1. starts a `gaia serve` daemon with the metrics endpoint and the
#     flight recorder enabled, and drives a 300-submission three-tenant
#     load (with a drain, so completions feed the SLO metrics);
#  2. checks the `metrics` verb returns the in-process JSON body with
#     request counts, latency quantiles, engine gauges, and per-tenant
#     SLO rows;
#  3. scrapes the Prometheus text exposition over HTTP and validates
#     the required families, histogram well-formedness (`+Inf` bucket,
#     bucket/count agreement), and that the request counter saw the
#     replayed load;
#  4. renders two frames of `gaia top --plain` against the live daemon;
#  5. dumps the flight recorder via the `flight` verb and validates the
#     dump with `gaia trace flight`;
#  6. SIGTERMs the daemon and asserts it exits cleanly, leaving a fresh
#     flight dump behind (the post-mortem contract).
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

cargo build --release -p gaia-cli
GAIA=./target/release/gaia

# Load: 300 short jobs from three tenants, then a drain (forces every
# job to completion, exercising the per-tenant SLO recording), then
# stats probes.
for i in $(seq 0 299); do
  case $(( i % 3 )) in
    0) tenant=acme ;;
    1) tenant=blue ;;
    2) tenant=crux ;;
  esac
  echo "{\"op\":\"submit\",\"tenant\":\"${tenant}\",\"at\":$(( i * 2 )),\"len\":$(( 20 + i % 60 )),\"cpus\":$(( 1 + i % 3 ))}"
done > "${WORK}/log.jsonl"
{
  echo '{"op":"drain"}'
  echo '{"op":"stats"}'
} >> "${WORK}/log.jsonl"

echo "== start daemon (metrics endpoint + flight recorder)"
"${GAIA}" serve --addr-file "${WORK}/addr" \
  --metrics-addr 127.0.0.1:0 --metrics-addr-file "${WORK}/metrics-addr" \
  --flight-capacity 512 --flight-dump "${WORK}/flight.jsonl" \
  --snapshot-path "${WORK}/serve.snap" &
DAEMON_PID=$!
for _ in $(seq 1 500); do
  [[ -s "${WORK}/addr" && -s "${WORK}/metrics-addr" ]] && break
  sleep 0.01
done
ADDR="$(cat "${WORK}/addr")"
METRICS_ADDR="$(cat "${WORK}/metrics-addr")"

echo "== drive load (${ADDR})"
"${GAIA}" serve --connect "${ADDR}" < "${WORK}/log.jsonl" > "${WORK}/responses.out"
OK_COUNT=$(grep -c '"ok":true' "${WORK}/responses.out")
[[ "${OK_COUNT}" -eq 302 ]] \
  || { echo "expected 302 ok responses, got ${OK_COUNT}" >&2; exit 1; }

echo "== metrics verb"
echo '{"op":"metrics"}' | "${GAIA}" serve --connect "${ADDR}" > "${WORK}/metrics.out"
for key in '"op":"metrics"' '"requests"' '"latency_us"' '"engine"' '"tenants"' '"flight"' '"p99"'; do
  grep -q -- "${key}" "${WORK}/metrics.out" \
    || { echo "metrics body lacks ${key}:" >&2; cat "${WORK}/metrics.out" >&2; exit 1; }
done
# The daemon's own submit counter must have seen the replayed load.
grep -q '"submit":300' "${WORK}/metrics.out" \
  || { echo "metrics body did not count 300 submits:" >&2; cat "${WORK}/metrics.out" >&2; exit 1; }

echo "== prometheus exposition (${METRICS_ADDR})"
curl -sf "http://${METRICS_ADDR}/metrics" > "${WORK}/prom.txt"
for family in \
  gaia_requests_total \
  gaia_request_errors_total \
  gaia_submit_latency_seconds_bucket \
  gaia_submit_latency_seconds_count \
  gaia_request_latency_seconds_sum \
  gaia_engine_sim_minutes \
  gaia_engine_queued_jobs \
  gaia_engine_pending_events \
  gaia_engine_degraded \
  gaia_snapshot_age_seconds \
  gaia_flight_frames \
  gaia_flight_capacity \
  gaia_tenant_jobs_completed_total \
  gaia_tenant_carbon_g_total \
  gaia_tenant_baseline_cost_usd_total \
  gaia_tenant_wait_hours_total; do
  grep -q "^${family}" "${WORK}/prom.txt" \
    || { echo "exposition lacks family ${family}" >&2; exit 1; }
done
grep -q 'le="+Inf"' "${WORK}/prom.txt" \
  || { echo "histogram exposition lacks the +Inf bucket" >&2; exit 1; }
grep -q 'gaia_requests_total{op="submit"} 300' "${WORK}/prom.txt" \
  || { echo "exposition did not count 300 submits" >&2; exit 1; }
# Cumulative-histogram well-formedness: the +Inf bucket equals _count.
INF=$(grep -o 'gaia_submit_latency_seconds_bucket{le="+Inf"} [0-9]*' "${WORK}/prom.txt" | awk '{print $2}')
COUNT=$(grep -o 'gaia_submit_latency_seconds_count [0-9]*' "${WORK}/prom.txt" | awk '{print $2}')
[[ "${INF}" == "${COUNT}" && "${COUNT}" == "300" ]] \
  || { echo "+Inf bucket ${INF} != count ${COUNT} (expected 300)" >&2; exit 1; }

echo "== gaia top (two plain frames)"
"${GAIA}" top --connect "${ADDR}" --iterations 2 --interval-ms 50 --plain > "${WORK}/top.out"
for needle in TENANT p99 queued acme blue crux; do
  grep -q -- "${needle}" "${WORK}/top.out" \
    || { echo "gaia top output lacks ${needle}:" >&2; cat "${WORK}/top.out" >&2; exit 1; }
done

echo "== flight verb + dump validation"
echo '{"op":"flight"}' | "${GAIA}" serve --connect "${ADDR}" > "${WORK}/flight-resp.out"
grep -q '"ok":true,"op":"flight"' "${WORK}/flight-resp.out" \
  || { echo "flight verb failed:" >&2; cat "${WORK}/flight-resp.out" >&2; exit 1; }
[[ -s "${WORK}/flight.jsonl" ]] || { echo "flight dump missing" >&2; exit 1; }
"${GAIA}" trace flight "${WORK}/flight.jsonl"

echo "== SIGTERM: graceful exit must leave a fresh dump"
rm -f "${WORK}/flight.jsonl"
kill -TERM "${DAEMON_PID}"
wait "${DAEMON_PID}" \
  || { echo "daemon did not exit cleanly on SIGTERM" >&2; exit 1; }
[[ -s "${WORK}/flight.jsonl" ]] \
  || { echo "SIGTERM left no flight dump behind" >&2; exit 1; }
"${GAIA}" trace flight "${WORK}/flight.jsonl"

echo "telemetry gate passed: metrics verb, exposition, top, flight dumps"
