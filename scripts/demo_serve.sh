#!/usr/bin/env bash
# Scripted two-tenant `gaia serve` demo: start a daemon, submit jobs
# from two tenants, snapshot mid-stream, restore into a fresh daemon,
# and show that the restored service carries the tenants' accounting
# forward. Everything runs on a free loopback port and cleans up after
# itself.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

cargo build --release -p gaia-cli
GAIA=./target/release/gaia

start_daemon() {
  rm -f "${WORK}/addr"
  "${GAIA}" serve --addr-file "${WORK}/addr" \
    --snapshot-path "${WORK}/demo.snap" "$@" &
  DAEMON_PID=$!
  for _ in $(seq 1 500); do
    [[ -s "${WORK}/addr" ]] && break
    sleep 0.01
  done
  ADDR="$(cat "${WORK}/addr")"
}

echo "== daemon up (carbon-time policy, SA-AU trace)"
start_daemon

echo "== tenant acme and tenant blue submit interleaved jobs"
"${GAIA}" serve --connect "${ADDR}" <<'EOF'
{"op":"submit","tenant":"acme","at":0,"len":120,"cpus":2}
{"op":"submit","tenant":"blue","at":30,"len":60,"cpus":1}
{"op":"submit","tenant":"acme","at":60,"len":240,"cpus":4}
{"op":"query","job":1}
{"op":"snapshot"}
{"op":"shutdown"}
EOF

wait "${DAEMON_PID}"
echo
echo "== daemon killed; restoring from the snapshot"
start_daemon --restore "${WORK}/demo.snap"

echo "== the restored daemon continues: more jobs, then per-tenant stats"
"${GAIA}" serve --connect "${ADDR}" <<'EOF'
{"op":"submit","tenant":"blue","at":90,"len":30,"cpus":1}
{"op":"drain"}
{"op":"stats","tenant":"acme"}
{"op":"stats","tenant":"blue"}
{"op":"stats"}
{"op":"shutdown"}
EOF

wait "${DAEMON_PID}"
echo
echo "demo complete: 4 jobs across 2 tenants survived a snapshot/restore"
